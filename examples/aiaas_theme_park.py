"""AIaaS scenario: a mobile user roaming a theme park (paper §1).

The paper motivates PoE with a user who "enters a restaurant in an animal
theme park and returns to see animals having lunch": each location needs a
different lightweight classifier, *right now*, on a resource-limited
device.  This example simulates that day trip:

* the server preprocesses one oracle into a pool (done once, offline),
* the client requests a task-specific model at each location,
* every request is served in milliseconds with a model orders of
  magnitude smaller than the oracle.

Run:  python examples/aiaas_theme_park.py
"""

import time

import numpy as np

from repro.core import ModelQueryEngine, PoEConfig, PoolOfExperts
from repro.data import ClassHierarchy
from repro.data.synthetic import (
    HierarchicalImageDataset,
    SyntheticConfig,
    SyntheticImageGenerator,
)
from repro.distill import TrainConfig, train_scratch
from repro.eval.metrics import accuracy, specialized_accuracy
from repro.models import WideResNet, count_params

ITINERARY = [
    ("zoo entrance", ["savanna_animals"]),
    ("aquarium", ["sea_life"]),
    ("restaurant", ["dishes", "drinks"]),
    ("back to the zoo", ["savanna_animals", "forest_animals"]),
    ("souvenir shop", ["souvenirs", "dishes"]),
]


def main() -> None:
    hierarchy = ClassHierarchy(
        {
            "savanna_animals": ["lion", "zebra", "giraffe"],
            "forest_animals": ["deer", "boar", "squirrel"],
            "sea_life": ["shark", "ray", "turtle"],
            "dishes": ["pasta", "burger", "salad"],
            "drinks": ["coffee", "juice", "soda"],
            "souvenirs": ["plush", "mug", "keyring"],
        }
    )
    generator = SyntheticImageGenerator(
        hierarchy, SyntheticConfig(image_size=8, noise_std=0.8), seed=7
    )
    data = HierarchicalImageDataset(hierarchy, generator, 80, 30, seed=8)

    # --- server side: one-time preprocessing --------------------------------
    oracle = WideResNet(10, 2, 2, hierarchy.num_classes, rng=np.random.default_rng(1))
    print(f"[server] training the park's oracle ({count_params(oracle):,} params) ...")
    train_scratch(
        oracle, data.train.images, data.train.labels,
        TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
    )
    print(f"[server] oracle accuracy: {accuracy(oracle, data.test):.3f}")
    pool = PoolOfExperts(
        oracle,
        hierarchy,
        PoEConfig(
            library_train=TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
            expert_train=TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
        ),
    )
    t0 = time.perf_counter()
    pool.preprocess(data.train)
    print(f"[server] pool preprocessed in {time.perf_counter() - t0:.1f}s "
          f"({len(pool.expert_names())} experts)\n")

    # --- client side: realtime model queries along the itinerary ------------
    engine = ModelQueryEngine(pool)
    oracle_params = count_params(oracle)
    for place, tasks in ITINERARY:
        start = time.perf_counter()
        model = engine.query(tasks)
        ms = 1000 * (time.perf_counter() - start)
        acc = specialized_accuracy(model.network, data.test, model.task)
        shrink = oracle_params / model.num_params()
        print(
            f"[client] {place:<18} tasks={'+'.join(tasks):<32} "
            f"model built in {ms:6.2f} ms | {model.num_params():>7,} params "
            f"({shrink:4.1f}x smaller) | accuracy {acc:.3f}"
        )

    fresh = [r for r in engine.records if not r.cached]
    print(
        f"\n[client] served {len(engine.records)} queries "
        f"({len(fresh)} cold) — mean cold latency "
        f"{1000 * engine.mean_latency():.2f} ms; no training happened."
    )


if __name__ == "__main__":
    main()
