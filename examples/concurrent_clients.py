"""Concurrent clients against the serving gateway (pool → gateway → client).

The paper's service phase is train-free; this demo shows it holding up
under *concurrent* traffic: many client threads issue Zipf-skewed
composite-task queries against one :class:`repro.serving.ServingGateway`,
which canonicalizes them, coalesces concurrent duplicates into one
in-flight build, and serves repeats from byte-budgeted caches.  One client
deserializes its payload and runs on-device inference, closing the loop
of Figure 1b.

Run::

    PYTHONPATH=src python examples/concurrent_clients.py
"""

import threading

from repro.core import deserialize_task_model
from repro.serving import (
    GatewayConfig,
    ServingGateway,
    ZipfianWorkload,
    build_demo_pool,
    run_closed_loop,
)


def main() -> None:
    print("=== preprocessing: building a micro pool (train once, serve forever) ===")
    pool, data = build_demo_pool(num_tasks=5, seed=13)
    print(f"pool ready with experts: {', '.join(pool.expert_names())}\n")

    workload = ZipfianWorkload(
        pool.expert_names(), max_query_size=3, skew=1.2, universe_size=16, seed=1
    )

    print("=== 8 concurrent clients, Zipf-skewed queries, caches on ===")
    with ServingGateway(pool, GatewayConfig(max_workers=8)) as gateway:
        report = run_closed_loop(gateway, workload, clients=8, requests_per_client=40)
        print(report.render())
        print()
        print(gateway.render_stats())
        print()

        print("=== coalescing: 6 clients ask for the same model at once ===")
        responses = [None] * 6
        barrier = threading.Barrier(6)

        def client(i):
            barrier.wait()
            responses[i] = gateway.serve(["task0", "task1", "task2"], "uint8")

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        fresh = sum(1 for r in responses if not r.coalesced and not r.payload_cache_hit)
        coalesced = sum(1 for r in responses if r.coalesced)
        hits = sum(1 for r in responses if r.payload_cache_hit)
        print(
            f"6 identical concurrent queries -> {fresh} build(s), "
            f"{coalesced} coalesced, {hits} cache hit(s)\n"
        )

        print("=== client side: deserialize one payload and predict locally ===")
        response = gateway.serve(["task3", "task0"])
        model = deserialize_task_model(response.payload)
        sample = data.test.images[:6]
        print(f"payload: {response.payload_bytes:,} bytes, layout {response.tasks}")
        print("predicted classes:", model.predict_names(sample))


if __name__ == "__main__":
    main()
