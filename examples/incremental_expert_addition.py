"""Growing the pool: add a new primitive task without touching the rest.

Because every expert shares the same frozen library and is extracted
independently, supporting a brand-new task later requires only (1) an
oracle that knows the new classes and (2) one expert extraction — no other
expert changes, and previously served models stay valid.  This mirrors the
paper's storage argument (Table 4): the pool grows linearly in tasks while
the set of *queryable* composite models grows exponentially.

Run:  python examples/incremental_expert_addition.py
"""

import numpy as np

from repro.core import ModelQueryEngine, PoEConfig, PoolOfExperts
from repro.data import ClassHierarchy
from repro.data.synthetic import (
    HierarchicalImageDataset,
    SyntheticConfig,
    SyntheticImageGenerator,
)
from repro.distill import TrainConfig, train_scratch
from repro.eval.metrics import accuracy, specialized_accuracy


def main() -> None:
    hierarchy = ClassHierarchy(
        {
            "fruit": ["apple", "pear", "plum"],
            "tools": ["hammer", "saw", "drill"],
            "instruments": ["violin", "flute", "drum"],
            "furniture": ["chair", "table", "shelf"],  # added later
        }
    )
    generator = SyntheticImageGenerator(
        hierarchy, SyntheticConfig(image_size=8, noise_std=0.8), seed=5
    )
    data = HierarchicalImageDataset(hierarchy, generator, 80, 30, seed=6)

    from repro.models import WideResNet

    # The oracle is trained over ALL classes, including day-2 tasks — it is
    # the "massive generic network" whose knowledge the pool queries.
    oracle_model = WideResNet(10, 2, 2, hierarchy.num_classes, rng=np.random.default_rng(3))
    print("training oracle over all classes ...")
    train_scratch(
        oracle_model, data.train.images, data.train.labels,
        TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
    )
    print(f"oracle accuracy: {accuracy(oracle_model, data.test):.3f}")

    pool = PoolOfExperts(
        oracle_model,
        hierarchy,
        PoEConfig(
            library_train=TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
            expert_train=TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
        ),
    )

    # Day 1: the service launches with three tasks.
    pool.preprocess(data.train, tasks=["fruit", "tools", "instruments"])
    engine = ModelQueryEngine(pool)
    print(f"\nday 1 pool: {engine.available_tasks()}")
    day1_model = engine.query(["fruit", "tools"])
    day1_logits = day1_model.logits(data.test.images[:16]).copy()

    # Day 2: product asks for furniture recognition.  One extraction call:
    print("\nday 2: extracting the 'furniture' expert (library untouched) ...")
    snapshot = {k: v.copy() for k, v in pool.experts["fruit"].state_dict().items()}
    pool.extract_expert("furniture", data.train.images)
    print(f"day 2 pool: {engine.available_tasks()}")

    # Existing experts and already-served models are bit-identical:
    after = pool.experts["fruit"].state_dict()
    untouched = all(np.array_equal(snapshot[k], after[k]) for k in snapshot)
    print(f"existing experts untouched: {untouched}")
    same = np.allclose(day1_logits, day1_model.logits(data.test.images[:16]), atol=1e-6)
    print(f"previously served model unchanged: {same}")

    # And the new task composes with the old ones immediately:
    model = engine.query(["furniture", "fruit"])
    acc = specialized_accuracy(model.network, data.test, model.task)
    print(f"new composite furniture+fruit: accuracy {acc:.3f}, "
          f"{model.num_params():,} params")


if __name__ == "__main__":
    main()
