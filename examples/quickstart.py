"""Quickstart: build a Pool of Experts and query task-specific models.

Walks the full PoE lifecycle on a small synthetic dataset:

1. train a generic *oracle* classifier over a class hierarchy,
2. preprocess it into a pool (library via KD + one CKD expert per
   primitive task),
3. query composite-task models in realtime — no training in the loop.

Run:  python examples/quickstart.py        (~1 minute on a laptop CPU)
"""

import time

import numpy as np

from repro.core import ModelQueryEngine, PoEConfig, PoolOfExperts
from repro.data import ClassHierarchy
from repro.data.synthetic import (
    HierarchicalImageDataset,
    SyntheticConfig,
    SyntheticImageGenerator,
)
from repro.distill import TrainConfig, train_scratch
from repro.eval.metrics import accuracy, specialized_accuracy
from repro.models import WideResNet, count_params


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A dataset with an explicit class hierarchy: superclasses are the
    #    "primitive tasks" a user can query (paper §3).
    # ------------------------------------------------------------------
    hierarchy = ClassHierarchy(
        {
            "pets": ["cat", "dog", "hamster"],
            "wild": ["fox", "wolf", "bear"],
            "birds": ["owl", "eagle", "crow"],
            "fish": ["trout", "eel", "cod"],
        }
    )
    generator = SyntheticImageGenerator(
        hierarchy, SyntheticConfig(image_size=8, noise_std=0.8), seed=0
    )
    data = HierarchicalImageDataset(hierarchy, generator, train_per_class=80, test_per_class=30, seed=1)
    print(f"dataset: {hierarchy.num_classes} classes in {hierarchy.num_primitive_tasks} primitive tasks")

    # ------------------------------------------------------------------
    # 2. The oracle: a generic model covering every class.
    # ------------------------------------------------------------------
    oracle = WideResNet(10, 2, 2, hierarchy.num_classes, rng=np.random.default_rng(0))
    print(f"training oracle ({count_params(oracle):,} params) ...")
    train_scratch(
        oracle, data.train.images, data.train.labels,
        TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
    )
    print(f"oracle test accuracy: {accuracy(oracle, data.test):.3f}")

    # ------------------------------------------------------------------
    # 3. Preprocessing phase: extract the library and the experts.
    # ------------------------------------------------------------------
    pool = PoolOfExperts(
        oracle,
        hierarchy,
        PoEConfig(
            library_depth=10,
            library_k=1.0,
            expert_ks=0.25,
            library_train=TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
            expert_train=TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
        ),
    )
    print("preprocessing: extracting library + experts ...")
    pool.preprocess(data.train)
    print(f"pool ready with experts: {', '.join(pool.expert_names())}")

    # ------------------------------------------------------------------
    # 4. Service phase: realtime model queries.
    # ------------------------------------------------------------------
    engine = ModelQueryEngine(pool)
    for query in (["pets"], ["pets", "birds"], ["wild", "fish", "birds"]):
        start = time.perf_counter()
        model = engine.query(query)
        built_ms = 1000 * (time.perf_counter() - start)
        composite = model.task
        acc = specialized_accuracy(model.network, data.test, composite)
        print(
            f"query {'+'.join(query):<18} -> {model.network.arch_name():<28} "
            f"{count_params(model.network):>7,} params, built in {built_ms:6.2f} ms, "
            f"accuracy {acc:.3f}"
        )

    # A model predicts global class names directly:
    sample = data.test.images[:5]
    model = engine.query(["pets", "birds"])
    print("sample predictions:", model.predict_names(sample))


if __name__ == "__main__":
    main()
