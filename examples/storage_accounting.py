"""Storage economics of a model-querying service (paper Table 4).

Compares three ways to serve specialized models for n primitive tasks:

1. ship the oracle to everyone (too big for edge devices),
2. pre-train every one of the 2^n - 1 composite specialists (exponential
   storage blow-up),
3. PoE: one shared library + n tiny experts, assembled on demand.

Run:  python examples/storage_accounting.py
"""

import os
import tempfile

import numpy as np

from repro.core import ExpertStore, PoEConfig, PoolOfExperts, estimate_all_specialists_volume
from repro.data import ClassHierarchy
from repro.data.synthetic import (
    HierarchicalImageDataset,
    SyntheticConfig,
    SyntheticImageGenerator,
)
from repro.distill import TrainConfig, train_scratch
from repro.models import WideResNet


def human(n_bytes: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if n_bytes < 1024:
            return f"{n_bytes:.1f}{unit}"
        n_bytes /= 1024
    return f"{n_bytes:.1f}EB"


def main() -> None:
    hierarchy = ClassHierarchy.uniform(8, 3, prefix="task")
    generator = SyntheticImageGenerator(
        hierarchy, SyntheticConfig(image_size=8, noise_std=0.8), seed=11
    )
    data = HierarchicalImageDataset(hierarchy, generator, 60, 20, seed=12)

    oracle = WideResNet(10, 4, 4, hierarchy.num_classes, rng=np.random.default_rng(0))
    print("training oracle ...")
    train_scratch(
        oracle, data.train.images, data.train.labels,
        TrainConfig(epochs=6, batch_size=128, lr=0.05, seed=0),
    )

    pool = PoolOfExperts(
        oracle,
        hierarchy,
        PoEConfig(
            library_train=TrainConfig(epochs=6, batch_size=128, lr=0.05, seed=0),
            expert_train=TrainConfig(epochs=6, batch_size=128, lr=0.05, seed=0),
        ),
    )
    print("preprocessing pool ...")
    pool.preprocess(data.train)

    with tempfile.TemporaryDirectory() as tmp:
        store = ExpertStore(os.path.join(tmp, "pool"))
        store.save(pool)
        report = store.volume_report(pool, oracle)
        on_disk = store.on_disk_bytes()

    n = hierarchy.num_primitive_tasks
    print(f"\nstorage accounting for n = {n} primitive tasks")
    print(f"  oracle:                {human(report.oracle_bytes)}")
    print(f"  PoE library:           {human(report.library_bytes)}")
    print(f"  PoE expert (avg):      {human(report.mean_expert_bytes)}")
    print(f"  PoE total (lib + {n}):  {human(report.pool_bytes)}   "
          f"({report.oracle_to_pool_ratio:.1f}x smaller than oracle)")
    print(f"  PoE on disk (npz):     {human(on_disk)}")
    print(f"  all 2^{n}-1 specialists: >= {human(report.all_specialists_bytes)}")

    print("\nextrapolating the all-specialists estimate (the paper's TB blow-up):")
    per_specialist = int(report.mean_expert_bytes) + report.library_bytes
    for big_n in (10, 20, 34):
        total = estimate_all_specialists_volume(big_n, per_specialist)
        print(f"  n = {big_n:>2}: >= {human(total)}")


if __name__ == "__main__":
    main()
