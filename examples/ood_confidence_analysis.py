"""Why CKD experts are composable: an out-of-distribution confidence study.

Reproduces the Figure 5 analysis interactively: train one specialist per
method (Scratch / Transfer / CKD) for the same primitive task and compare
how confident each is on images of classes it has *never seen*.  Scratch
and Transfer saturate their softmax (overconfident), CKD inherits the
oracle's low out-of-task confidence — which is exactly what lets PoE
concatenate expert logits without arbitration.

Run:  python examples/ood_confidence_analysis.py
"""

import numpy as np

from repro.core import PoEConfig, PoolOfExperts, ood_confidence_profile
from repro.data import ClassHierarchy, task_subset
from repro.data.synthetic import (
    HierarchicalImageDataset,
    SyntheticConfig,
    SyntheticImageGenerator,
)
from repro.distill import TrainConfig, train_scratch, train_transfer
from repro.eval.metrics import accuracy, specialized_accuracy
from repro.eval.tables import render_histogram
from repro.models import BranchedSpecialistNet, WideResNet, WRNHead


def main() -> None:
    hierarchy = ClassHierarchy.uniform(6, 3, prefix="group")
    generator = SyntheticImageGenerator(
        hierarchy, SyntheticConfig(image_size=8, noise_std=0.9), seed=3
    )
    data = HierarchicalImageDataset(hierarchy, generator, 80, 40, seed=4)
    task = hierarchy.task("group0")

    oracle = WideResNet(10, 2, 2, hierarchy.num_classes, rng=np.random.default_rng(0))
    print("training oracle ...")
    train_scratch(
        oracle, data.train.images, data.train.labels,
        TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
    )
    print(f"oracle accuracy: {accuracy(oracle, data.test):.3f}\n")

    pool = PoolOfExperts(
        oracle,
        hierarchy,
        PoEConfig(
            library_train=TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
            expert_train=TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
        ),
    )
    pool.extract_library(data.train.images)
    pool.extract_expert(task.name, data.train.images)
    ckd_model, _ = pool.consolidate([task.name])

    # Scratch specialist: same tiny architecture, task data only.
    scratch_model = WideResNet(10, 1, 0.25, len(task), rng=np.random.default_rng(5))
    subset = task_subset(data.train, task)
    train_scratch(
        scratch_model, subset.images, subset.labels,
        TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
    )

    # Transfer specialist: frozen library + fresh head on task data.
    transfer_head = WRNHead(10, 1, 0.25, len(task), rng=np.random.default_rng(6))
    train_transfer(
        pool.library, transfer_head, subset.images, subset.labels,
        TrainConfig(epochs=8, batch_size=128, lr=0.05, seed=0),
    )
    transfer_model = BranchedSpecialistNet(pool.library, [(task.name, transfer_head)])
    transfer_model.eval()

    print(f"specialists for task {task.name!r} ({len(task)} classes):")
    for name, model in (
        ("scratch", scratch_model),
        ("transfer", transfer_model),
        ("ckd", ckd_model),
    ):
        acc = specialized_accuracy(model, data.test, task)
        profile = ood_confidence_profile(model, data.test, task)
        print(
            f"\n--- {name}: in-task accuracy {acc:.3f} | "
            f"OOD mean confidence {profile.mean:.2f} | "
            f"P(conf > 0.9) = {profile.overconfident_rate:.2f}"
        )
        print(render_histogram(profile.histogram, profile.bin_edges, width=40))

    print(
        "\nReading: an ideal expert should NOT be confident on images outside"
        "\nits task. CKD's histogram mass sits in low-confidence bins, while"
        "\nScratch/Transfer concentrate near 1.0 — the overconfidence that"
        "\nbreaks naive expert merging (paper Fig. 2 and Fig. 5)."
    )


if __name__ == "__main__":
    main()
