"""Fused batched execution primitives for same-shaped module banks.

The service phase assembles one model per query out of *structurally
identical* expert heads (same conv/BN/FC shapes, possibly different class
counts).  Running those heads with a Python loop pays the per-op overhead
of the autograd tensor engine ``n(Q)`` times per layer; these primitives
instead fold the head index into the batch dimension and execute every
head's layer as **one** vectorized numpy call:

* convolutions become a single stacked GEMM — ``(n, N·OH·OW, KH·KW·C) @
  (n, KH·KW·C, C_out)`` via ``np.matmul`` over the leading axis — instead
  of ``n`` im2col+GEMM round trips through the graph machinery;
* eval-mode batch norm collapses to a per-channel affine ``x·scale +
  shift`` with the scale/shift folded once at stack-build time;
* the classifiers become one padded batched GEMM, sliced back to each
  head's class count afterwards.

Layout is **channels-last**: activations flow as ``(n, N, H, W, C)`` —
``n`` stacked modules, batch ``N``.  NHWC is what makes the path fast on
numpy, not just batched: a GEMM's output *is* the next layer's input
layout (no transpose copies between layers), the im2col window view
reshapes with a single contiguous copy, and 1×1 (shortcut) convolutions
are a strided slice plus matmul with no unfolding at all.  Everything
here is inference-only (no autograd, no training-mode BN) and operates on
plain ``np.ndarray``\\ s; :class:`repro.models.fused_head.FusedHeadBank`
composes these into the full WRN head fast path, and :class:`FusedTrunk`
applies the same lowering to the *shared library trunk* (a bank of one)
so cold predictions skip the autograd engine end to end.

Single-module banks (``n = 1``) **alias** the live parameters wherever
the GEMM layout is reachable by a view — 1×1 shortcut weights, conv
biases and classifier weights; k×k conv weights need a layout transform
(a copy) and folded batch norms are derived by construction.  Either way
a compiled artifact must be treated as frozen: mutate a module's weights
in place (``load_state_dict``) and you must recompile (the serving tiers
do this through the ``expert_version``/``LIBRARY_TASK`` listeners, which
install *new* module objects on re-extraction).

**Public entry points.**  Layer builders: :func:`stack_conv`,
:func:`stack_affine` (+ :func:`fold_batchnorm`), :func:`stack_linear`,
composed per residual stage by :class:`FusedBlock`.  Trunk compilation:
:class:`FusedTrunk` (one-shot compiler over a frozen eval-mode
``WRNTrunk``, ``allclose``-probed against autograd at compile time),
normally reached through :func:`fused_trunk_for` — the per-trunk-object
memo that makes a ``LIBRARY_TASK`` re-extraction recompile by
construction — with :func:`invalidate_fused_trunk` as the escape hatch
for deliberate in-place mutation.  :func:`im2col_nhwc` is the shared
window-unfold primitive.  Higher layers should not call these directly:
``repro.models.FusedHeadBank`` wraps the head bank,
``repro.core.features.fused_trunk_features`` the trunk.

**Thread-safety expectations.**  Compiled artifacts are **immutable
after construction**: any number of serving threads may run the same
``FusedTrunk``/``FusedBlock``/bank concurrently (forward passes share
only read-only weights and allocate their own activations).
*Compilation* is not internally locked — :func:`fused_trunk_for` may
compile the same trunk twice under a race, which costs a duplicate probe
but is harmless because the memo write is atomic and either artifact is
valid.  Callers that mutate module weights in place must ensure no
forward is concurrently reading the aliased views; the serving tiers
never do this (they swap module objects and recompile instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.arena import ARENA
from ..tensor.conv import conv_output_size

__all__ = [
    "fold_batchnorm",
    "im2col_nhwc",
    "stack_affine",
    "stack_conv",
    "stack_linear",
    "FusedAffine",
    "FusedBlock",
    "FusedConv",
    "FusedLinearBank",
    "FusedTrunk",
    "fused_trunk_for",
    "invalidate_fused_trunk",
]


def fold_batchnorm(bn) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse an eval-mode :class:`~repro.nn.BatchNorm2d` into ``(scale, shift)``.

    ``y = (x - mean) / sqrt(var + eps) * gamma + beta`` is affine per
    channel once the statistics are frozen:
    ``scale = gamma / sqrt(var + eps)``, ``shift = beta - mean * scale``.
    """
    inv_std = 1.0 / np.sqrt(bn.running_var.astype(np.float64) + bn.eps)
    scale = bn.weight.data.astype(np.float64) * inv_std
    shift = bn.bias.data.astype(np.float64) - bn.running_mean.astype(np.float64) * scale
    return scale.astype(np.float32), shift.astype(np.float32)


def im2col_nhwc(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold channels-last ``x`` (M, H, W, C) into (M·OH·OW, KH·KW·C) columns.

    One contiguous copy total: padding writes into a preallocated zero
    buffer (cheaper than generic ``np.pad``) and the strided window view
    materializes directly in GEMM-ready order — channels-last means no
    transpose is needed before the reshape.
    """
    m, h, w, c = x.shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        padded = np.zeros((m, h + 2 * padding, w + 2 * padding, c), dtype=x.dtype)
        padded[:, padding : padding + h, padding : padding + w, :] = x
        x = padded
    sm, sh, sw, sc = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(m, oh, ow, kh, kw, c),
        strides=(sm, sh * stride, sw * stride, sh, sw, sc),
        writeable=False,
    )
    return np.ascontiguousarray(view).reshape(m * oh * ow, kh * kw * c), oh, ow


@dataclass(frozen=True)
class FusedAffine:
    """A bank of per-channel affines: ``scale``/``shift`` of shape (n, 1, 1, 1, C)."""

    scale: np.ndarray
    shift: np.ndarray

    def __call__(self, x: np.ndarray, relu: bool = False) -> np.ndarray:
        with ARENA.op("affine"):
            out = x * self.scale + self.shift
            if relu:
                np.maximum(out, 0.0, out=out)
            return out


def stack_affine(bns: Sequence) -> FusedAffine:
    """Stack the folded affines of ``n`` same-width BatchNorm2d modules."""
    scales, shifts = zip(*(fold_batchnorm(bn) for bn in bns))
    n, c = len(scales), scales[0].shape[0]
    return FusedAffine(
        scale=np.stack(scales).reshape(n, 1, 1, 1, c),
        shift=np.stack(shifts).reshape(n, 1, 1, 1, c),
    )


@dataclass(frozen=True)
class FusedConv:
    """A bank of ``n`` same-shape convolutions executed as one stacked GEMM.

    ``weight`` is pre-reshaped to (n, KH·KW·C_in, C_out) so the hot path
    is a single ``np.matmul`` against the shared im2col columns; 1×1
    kernels additionally hold ``weight_1x1`` shaped for a slice-and-matmul
    with no unfolding.
    """

    weight: np.ndarray  # (n, KH*KW*C_in, C_out)
    bias: Optional[np.ndarray]  # (n, 1, C_out) or None
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """(n_x, N, H, W, C_in) -> (n, N, OH, OW, C_out); n_x ∈ {1, n}."""
        n_x, batch, h, w, c = x.shape
        n = self.weight.shape[0]
        k = self.kernel_size
        if k == 1 and self.padding == 0:
            # shortcut path: a 1x1 conv is a channel mix over a strided slice
            with ARENA.op("conv1x1"):
                sliced = x[:, :, :: self.stride, :: self.stride, :]
                out = np.matmul(sliced, self.weight[:, None, None, :, :])
                if self.bias is not None:
                    out += self.bias[:, None, None, :, :]
                return out
        if n_x != n:  # broadcast a shared input across the bank
            x = np.broadcast_to(x, (n, batch, h, w, c))
        oh = conv_output_size(h, k, self.stride, self.padding)
        ow = conv_output_size(w, k, self.stride, self.padding)
        with ARENA.op("im2col"):
            cols, _, _ = im2col_nhwc(
                x.reshape(n * batch, h, w, c), k, k, self.stride, self.padding
            )
        with ARENA.op("conv_gemm"):
            out = np.matmul(cols.reshape(n, batch * oh * ow, k * k * c), self.weight)
            if self.bias is not None:
                out += self.bias
            return out.reshape(n, batch, oh, ow, self.out_channels)


def stack_conv(convs: Sequence) -> FusedConv:
    """Stack ``n`` same-shape :class:`~repro.nn.Conv2d` modules into a bank."""
    first = convs[0]
    shape = first.weight.shape
    for conv in convs[1:]:
        if conv.weight.shape != shape or (conv.stride, conv.padding) != (
            first.stride,
            first.padding,
        ):
            raise ValueError(
                f"cannot stack convs of differing geometry: {conv.weight.shape} "
                f"vs {shape}"
            )
    c_out, c_in, kh, kw = shape
    if len(convs) == 1 and kh == 1 and kw == 1:
        # single 1x1 module: the GEMM operand (1, C_in, C_out) is a pure
        # view of the live parameter — aliased, not copied
        weight = first.weight.data.reshape(c_out, c_in).T[None]
    else:
        # (C_out, C_in, KH, KW) -> channels-last GEMM operand (KH*KW*C_in, C_out)
        weight = np.stack(
            [
                conv.weight.data.transpose(2, 3, 1, 0).reshape(kh * kw * c_in, c_out)
                for conv in convs
            ]
        ).astype(np.float32, copy=False)
        weight = np.ascontiguousarray(weight)
    bias = None
    if first.bias is not None:
        if len(convs) == 1:
            bias = first.bias.data.reshape(1, 1, c_out)  # aliased view
        else:
            bias = np.stack([conv.bias.data for conv in convs]).reshape(
                len(convs), 1, c_out
            )
    return FusedConv(
        weight=weight,
        bias=bias,
        in_channels=c_in,
        out_channels=c_out,
        kernel_size=kh,
        stride=first.stride,
        padding=first.padding,
    )


@dataclass(frozen=True)
class FusedLinearBank:
    """A bank of classifiers with (possibly) different output widths.

    Weights are zero-padded to the widest head so the whole bank is one
    batched GEMM; ``widths`` remembers each head's true class count so the
    caller can slice the padded logits back apart.
    """

    weight: np.ndarray  # (n, C, max_out)
    bias: np.ndarray  # (n, 1, max_out)
    widths: Tuple[int, ...]

    def __call__(self, feats: np.ndarray) -> np.ndarray:
        """(n, N, C) -> padded logits (n, N, max_out)."""
        with ARENA.op("linear_gemm"):
            return np.matmul(feats, self.weight) + self.bias

    def concatenate(self, padded: np.ndarray) -> np.ndarray:
        """Slice padded logits back to true widths and join along classes."""
        return np.concatenate(
            [padded[i, :, :width] for i, width in enumerate(self.widths)], axis=1
        )


def stack_linear(linears: Sequence) -> FusedLinearBank:
    """Stack ``n`` :class:`~repro.nn.Linear` classifiers (same in_features)."""
    in_features = linears[0].in_features
    for lin in linears[1:]:
        if lin.in_features != in_features:
            raise ValueError(
                f"cannot stack linears with differing in_features: "
                f"{lin.in_features} vs {in_features}"
            )
    widths = tuple(lin.out_features for lin in linears)
    max_out = max(widths)
    n = len(linears)
    if n == 1 and linears[0].bias is not None:
        # single classifier needs no padding: both operands are views of
        # the live parameters (aliased, not copied)
        lin = linears[0]
        return FusedLinearBank(
            weight=lin.weight.data.T[None],
            bias=lin.bias.data.reshape(1, 1, max_out),
            widths=widths,
        )
    weight = np.zeros((n, in_features, max_out), dtype=np.float32)
    bias = np.zeros((n, 1, max_out), dtype=np.float32)
    for i, lin in enumerate(linears):
        weight[i, :, : widths[i]] = lin.weight.data.T
        if lin.bias is not None:
            bias[i, 0, : widths[i]] = lin.bias.data
    return FusedLinearBank(weight=weight, bias=bias, widths=widths)


class FusedBlock:
    """One pre-activation WRN basic block across a bank of ``n`` modules.

    Duck-typed over block modules exposing ``bn1``/``conv1``/``bn2``/
    ``conv2``/``needs_projection``/``shortcut`` (the
    :class:`~repro.models.wrn.BasicBlock` contract) so both the expert
    head bank and the single-trunk compiler lower through one code path.
    """

    def __init__(self, blocks: Sequence) -> None:
        self.bn1 = stack_affine([b.bn1 for b in blocks])
        self.conv1 = stack_conv([b.conv1 for b in blocks])
        self.bn2 = stack_affine([b.bn2 for b in blocks])
        self.conv2 = stack_conv([b.conv2 for b in blocks])
        projections = {b.needs_projection for b in blocks}
        if len(projections) != 1:
            raise ValueError("cannot stack blocks with differing shortcut shapes")
        self.shortcut = (
            stack_conv([b.shortcut for b in blocks]) if projections.pop() else None
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        pre = self.bn1(x, relu=True)
        residual = self.shortcut(pre) if self.shortcut is not None else x
        out = self.conv1(pre)
        out = self.conv2(self.bn2(out, relu=True))
        return out + residual

    def nbytes(self) -> int:
        total = 0
        for conv in (self.conv1, self.conv2, self.shortcut):
            if conv is not None:
                total += conv.weight.nbytes
                if conv.bias is not None:
                    total += conv.bias.nbytes
        for affine in (self.bn1, self.bn2):
            total += affine.scale.nbytes + affine.shift.nbytes
        return total


class FusedTrunk:
    """A frozen eval-mode WRN trunk compiled to channels-last primitives.

    The one-shot compiler behind the *cold* prediction fast path: walks a
    trunk module (duck-typed — ``conv1`` plus ``groups[i].blocks[j]`` in
    the :class:`~repro.models.wrn.WRNTrunk` shape) and lowers every layer
    to the same NHWC bank primitives the expert head bank uses, with a
    bank size of one: im2col + one GEMM per conv, eval-BN folded into
    per-channel affines, 1×1 residual shortcuts as slice+matmul.  The
    compiled program runs on plain numpy with **no autograd graph**; the
    NCHW↔NHWC transposes happen once at the boundaries so cached features
    stay layout-compatible with the loop path.

    Weights are aliased from the live modules where a view reaches the
    GEMM layout (1×1 shortcuts, biases) and layout-copied otherwise, so
    the compile is cheap but the artifact goes stale if the source trunk
    is mutated *in place* — the ``LIBRARY_TASK`` version machinery never
    does that (re-extraction installs a new trunk object, and
    :func:`fused_trunk_for` memoizes per object), but after a manual
    ``load_state_dict`` call :func:`invalidate_fused_trunk`.

    ``verify=True`` (the default) runs a deterministic probe batch through
    both the compiled program and the autograd trunk at compile time and
    raises if they diverge beyond float32 round-off — the fast path can
    never silently serve wrong features.
    """

    #: Spatial size of the deterministic compile-time verification probe.
    _PROBE_SIZE = 8

    def __init__(self, trunk, verify: bool = True) -> None:
        self.conv1 = stack_conv([trunk.conv1])
        self._blocks: List[FusedBlock] = [
            FusedBlock([block]) for group in trunk.groups for block in group.blocks
        ]
        self.in_channels = int(trunk.conv1.in_channels)
        self.out_channels = int(
            self._blocks[-1].conv2.out_channels if self._blocks else self.conv1.out_channels
        )
        if verify:
            self.verify(trunk)

    # ------------------------------------------------------------------
    def __call__(self, images: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Library-level features (N, C, H, W) for NCHW ``images``.

        Matches the autograd trunk's eval-mode forward to float32
        round-off (``allclose``); chunks over the batch so im2col buffers
        stay bounded for large prediction batches.
        """
        images = np.asarray(images, dtype=np.float32)
        if images.ndim != 4:
            raise ValueError(f"expected NCHW images, got shape {images.shape}")
        out: List[np.ndarray] = []
        with ARENA.scope("trunk"):
            for start in range(0, images.shape[0], batch_size):
                chunk = images[start : start + batch_size]
                # one NCHW -> NHWC transpose in, one NHWC -> NCHW out; the
                # interior flows channels-last with no layout copies
                h = np.ascontiguousarray(chunk.transpose(0, 2, 3, 1))[None]
                h = self.conv1(h)
                for block in self._blocks:
                    h = block(h)
                out.append(np.ascontiguousarray(h[0].transpose(0, 3, 1, 2)))
        return out[0] if len(out) == 1 else np.concatenate(out, axis=0)

    def verify(
        self,
        trunk,
        images: Optional[np.ndarray] = None,
        rtol: float = 1e-4,
        atol: float = 1e-5,
    ) -> float:
        """Assert the compiled program matches the autograd trunk.

        Runs ``images`` (or a deterministic random probe) through both
        paths in eval mode and raises :class:`ValueError` on divergence;
        returns the max absolute difference for reporting.
        """
        from ..tensor import Tensor, no_grad

        if images is None:
            rng = np.random.default_rng(0)
            images = rng.standard_normal(
                (2, self.in_channels, self._PROBE_SIZE, self._PROBE_SIZE)
            ).astype(np.float32)
        was_training = trunk.training
        trunk.eval()
        try:
            with no_grad():
                reference = trunk(Tensor(np.asarray(images, dtype=np.float32))).numpy()
        finally:
            if was_training:
                trunk.train()
        fused = self(images)
        max_abs_diff = float(np.abs(reference - fused).max())
        if not np.allclose(reference, fused, rtol=rtol, atol=atol):
            raise ValueError(
                "compiled trunk diverged from the autograd trunk "
                f"(max abs diff {max_abs_diff:.3e})"
            )
        return max_abs_diff

    def nbytes(self) -> int:
        """Approximate resident size of the compiled weights (views count
        their base bytes — the aliased share is not double-charged by the
        serving caches, which charge module weights separately)."""
        total = self.conv1.weight.nbytes
        if self.conv1.bias is not None:
            total += self.conv1.bias.nbytes
        return total + sum(block.nbytes() for block in self._blocks)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FusedTrunk(blocks={len(self._blocks)}, "
            f"channels={self.in_channels}->{self.out_channels})"
        )


#: Attribute used to memoize one compiled program per live trunk module.
_FUSED_TRUNK_ATTR = "_fused_eval_trunk"


def fused_trunk_for(trunk, verify: bool = True) -> FusedTrunk:
    """The compiled eval-mode program for ``trunk``, memoized per object.

    The library trunk is frozen after extraction and *replaced* (never
    mutated) on re-extraction, so caching the compiled program on the
    module object itself makes invalidation automatic: every serving tier
    that follows the ``LIBRARY_TASK`` version bump to a new trunk object
    gets a fresh compile, and the old program dies with the old trunk.
    Concurrent first calls may compile twice; the race is benign (both
    programs are equivalent, one wins the attribute write).

    A *failed* compile (unwalkable structure, or a verify-probe
    divergence) is memoized too — the original exception is re-raised on
    every subsequent call instead of re-stacking the weights and re-probing
    per prediction, so the autograd fallback stays cheap and the root
    cause stays inspectable.  :func:`invalidate_fused_trunk` clears either
    outcome.
    """
    cached = getattr(trunk, _FUSED_TRUNK_ATTR, None)
    if isinstance(cached, FusedTrunk):
        return cached
    if isinstance(cached, Exception):
        raise cached
    try:
        cached = FusedTrunk(trunk, verify=verify)
    except (AttributeError, TypeError, ValueError) as error:
        setattr(trunk, _FUSED_TRUNK_ATTR, error)
        raise
    setattr(trunk, _FUSED_TRUNK_ATTR, cached)
    return cached


def invalidate_fused_trunk(trunk) -> None:
    """Drop ``trunk``'s memoized compile (after an in-place weight mutation)."""
    if getattr(trunk, _FUSED_TRUNK_ATTR, None) is not None:
        setattr(trunk, _FUSED_TRUNK_ATTR, None)
