"""Fused batched execution primitives for same-shaped module banks.

The service phase assembles one model per query out of *structurally
identical* expert heads (same conv/BN/FC shapes, possibly different class
counts).  Running those heads with a Python loop pays the per-op overhead
of the autograd tensor engine ``n(Q)`` times per layer; these primitives
instead fold the head index into the batch dimension and execute every
head's layer as **one** vectorized numpy call:

* convolutions become a single stacked GEMM — ``(n, N·OH·OW, KH·KW·C) @
  (n, KH·KW·C, C_out)`` via ``np.matmul`` over the leading axis — instead
  of ``n`` im2col+GEMM round trips through the graph machinery;
* eval-mode batch norm collapses to a per-channel affine ``x·scale +
  shift`` with the scale/shift folded once at stack-build time;
* the classifiers become one padded batched GEMM, sliced back to each
  head's class count afterwards.

Layout is **channels-last**: activations flow as ``(n, N, H, W, C)`` —
``n`` stacked modules, batch ``N``.  NHWC is what makes the path fast on
numpy, not just batched: a GEMM's output *is* the next layer's input
layout (no transpose copies between layers), the im2col window view
reshapes with a single contiguous copy, and 1×1 (shortcut) convolutions
are a strided slice plus matmul with no unfolding at all.  Everything
here is inference-only (no autograd, no training-mode BN) and operates on
plain ``np.ndarray``\\ s; :class:`repro.models.fused_head.FusedHeadBank`
composes these into the full WRN head fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..tensor.conv import conv_output_size

__all__ = [
    "fold_batchnorm",
    "im2col_nhwc",
    "stack_affine",
    "stack_conv",
    "stack_linear",
    "FusedAffine",
    "FusedConv",
    "FusedLinearBank",
]


def fold_batchnorm(bn) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse an eval-mode :class:`~repro.nn.BatchNorm2d` into ``(scale, shift)``.

    ``y = (x - mean) / sqrt(var + eps) * gamma + beta`` is affine per
    channel once the statistics are frozen:
    ``scale = gamma / sqrt(var + eps)``, ``shift = beta - mean * scale``.
    """
    inv_std = 1.0 / np.sqrt(bn.running_var.astype(np.float64) + bn.eps)
    scale = bn.weight.data.astype(np.float64) * inv_std
    shift = bn.bias.data.astype(np.float64) - bn.running_mean.astype(np.float64) * scale
    return scale.astype(np.float32), shift.astype(np.float32)


def im2col_nhwc(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold channels-last ``x`` (M, H, W, C) into (M·OH·OW, KH·KW·C) columns.

    One contiguous copy total: padding writes into a preallocated zero
    buffer (cheaper than generic ``np.pad``) and the strided window view
    materializes directly in GEMM-ready order — channels-last means no
    transpose is needed before the reshape.
    """
    m, h, w, c = x.shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        padded = np.zeros((m, h + 2 * padding, w + 2 * padding, c), dtype=x.dtype)
        padded[:, padding : padding + h, padding : padding + w, :] = x
        x = padded
    sm, sh, sw, sc = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(m, oh, ow, kh, kw, c),
        strides=(sm, sh * stride, sw * stride, sh, sw, sc),
        writeable=False,
    )
    return np.ascontiguousarray(view).reshape(m * oh * ow, kh * kw * c), oh, ow


@dataclass(frozen=True)
class FusedAffine:
    """A bank of per-channel affines: ``scale``/``shift`` of shape (n, 1, 1, 1, C)."""

    scale: np.ndarray
    shift: np.ndarray

    def __call__(self, x: np.ndarray, relu: bool = False) -> np.ndarray:
        out = x * self.scale + self.shift
        if relu:
            np.maximum(out, 0.0, out=out)
        return out


def stack_affine(bns: Sequence) -> FusedAffine:
    """Stack the folded affines of ``n`` same-width BatchNorm2d modules."""
    scales, shifts = zip(*(fold_batchnorm(bn) for bn in bns))
    n, c = len(scales), scales[0].shape[0]
    return FusedAffine(
        scale=np.stack(scales).reshape(n, 1, 1, 1, c),
        shift=np.stack(shifts).reshape(n, 1, 1, 1, c),
    )


@dataclass(frozen=True)
class FusedConv:
    """A bank of ``n`` same-shape convolutions executed as one stacked GEMM.

    ``weight`` is pre-reshaped to (n, KH·KW·C_in, C_out) so the hot path
    is a single ``np.matmul`` against the shared im2col columns; 1×1
    kernels additionally hold ``weight_1x1`` shaped for a slice-and-matmul
    with no unfolding.
    """

    weight: np.ndarray  # (n, KH*KW*C_in, C_out)
    bias: Optional[np.ndarray]  # (n, 1, C_out) or None
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """(n_x, N, H, W, C_in) -> (n, N, OH, OW, C_out); n_x ∈ {1, n}."""
        n_x, batch, h, w, c = x.shape
        n = self.weight.shape[0]
        k = self.kernel_size
        if k == 1 and self.padding == 0:
            # shortcut path: a 1x1 conv is a channel mix over a strided slice
            sliced = x[:, :, :: self.stride, :: self.stride, :]
            out = np.matmul(sliced, self.weight[:, None, None, :, :])
            if self.bias is not None:
                out += self.bias[:, None, None, :, :]
            return out
        if n_x != n:  # broadcast a shared input across the bank
            x = np.broadcast_to(x, (n, batch, h, w, c))
        oh = conv_output_size(h, k, self.stride, self.padding)
        ow = conv_output_size(w, k, self.stride, self.padding)
        cols, _, _ = im2col_nhwc(
            x.reshape(n * batch, h, w, c), k, k, self.stride, self.padding
        )
        out = np.matmul(cols.reshape(n, batch * oh * ow, k * k * c), self.weight)
        if self.bias is not None:
            out += self.bias
        return out.reshape(n, batch, oh, ow, self.out_channels)


def stack_conv(convs: Sequence) -> FusedConv:
    """Stack ``n`` same-shape :class:`~repro.nn.Conv2d` modules into a bank."""
    first = convs[0]
    shape = first.weight.shape
    for conv in convs[1:]:
        if conv.weight.shape != shape or (conv.stride, conv.padding) != (
            first.stride,
            first.padding,
        ):
            raise ValueError(
                f"cannot stack convs of differing geometry: {conv.weight.shape} "
                f"vs {shape}"
            )
    c_out, c_in, kh, kw = shape
    # (C_out, C_in, KH, KW) -> channels-last GEMM operand (KH*KW*C_in, C_out)
    weight = np.stack(
        [
            conv.weight.data.transpose(2, 3, 1, 0).reshape(kh * kw * c_in, c_out)
            for conv in convs
        ]
    ).astype(np.float32, copy=False)
    bias = None
    if first.bias is not None:
        bias = np.stack([conv.bias.data for conv in convs]).reshape(
            len(convs), 1, c_out
        )
    return FusedConv(
        weight=np.ascontiguousarray(weight),
        bias=bias,
        in_channels=c_in,
        out_channels=c_out,
        kernel_size=kh,
        stride=first.stride,
        padding=first.padding,
    )


@dataclass(frozen=True)
class FusedLinearBank:
    """A bank of classifiers with (possibly) different output widths.

    Weights are zero-padded to the widest head so the whole bank is one
    batched GEMM; ``widths`` remembers each head's true class count so the
    caller can slice the padded logits back apart.
    """

    weight: np.ndarray  # (n, C, max_out)
    bias: np.ndarray  # (n, 1, max_out)
    widths: Tuple[int, ...]

    def __call__(self, feats: np.ndarray) -> np.ndarray:
        """(n, N, C) -> padded logits (n, N, max_out)."""
        return np.matmul(feats, self.weight) + self.bias

    def concatenate(self, padded: np.ndarray) -> np.ndarray:
        """Slice padded logits back to true widths and join along classes."""
        return np.concatenate(
            [padded[i, :, :width] for i, width in enumerate(self.widths)], axis=1
        )


def stack_linear(linears: Sequence) -> FusedLinearBank:
    """Stack ``n`` :class:`~repro.nn.Linear` classifiers (same in_features)."""
    in_features = linears[0].in_features
    for lin in linears[1:]:
        if lin.in_features != in_features:
            raise ValueError(
                f"cannot stack linears with differing in_features: "
                f"{lin.in_features} vs {in_features}"
            )
    widths = tuple(lin.out_features for lin in linears)
    max_out = max(widths)
    n = len(linears)
    weight = np.zeros((n, in_features, max_out), dtype=np.float32)
    bias = np.zeros((n, 1, max_out), dtype=np.float32)
    for i, lin in enumerate(linears):
        weight[i, :, : widths[i]] = lin.weight.data.T
        if lin.bias is not None:
            bias[i, 0, : widths[i]] = lin.bias.data
    return FusedLinearBank(weight=weight, bias=bias, widths=widths)
