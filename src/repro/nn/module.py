"""Module/Parameter abstractions, mirroring the familiar torch.nn API.

A :class:`Module` tracks parameters (trainable tensors), buffers
(non-trainable state such as batch-norm running statistics) and child
modules, and provides the train/eval switch, state-dict (de)serialization and
parameter freezing that the PoE preprocessing phase relies on (the library
component is frozen while experts are extracted, paper §4.1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is trainable by default and discoverable by Modules."""

    def __init__(self, data, requires_grad: bool = True) -> None:
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved with the state dict."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _update_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a registered buffer in-place-like fashion."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        yield from self._modules.items()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, getattr(self, name)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix + child_name + ".")

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(
            p.size
            for p in self.parameters()
            if not trainable_only or p.requires_grad
        )

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def requires_grad_(self, flag: bool = True) -> "Module":
        """Freeze (or unfreeze) every parameter in the module tree.

        PoE freezes the shared library component during expert extraction so
        that all experts remain attachable to the exact same trunk.
        """
        for param in self.parameters():
            param.requires_grad = flag
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data
        for name, buf in self.named_buffers():
            state[name] = buf
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffer_owners: Dict[str, Tuple[Module, str]] = {}
        self._collect_buffer_owners(own_buffer_owners, "")
        missing = []
        for name, param in own_params.items():
            if name in state:
                if state[name].shape != param.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: have {param.shape}, got {state[name].shape}"
                    )
                param.data = np.array(state[name], dtype=param.dtype)
            elif strict:
                missing.append(name)
        for name, (owner, local) in own_buffer_owners.items():
            if name in state:
                owner._update_buffer(local, np.array(state[name]))
            elif strict:
                missing.append(name)
        if strict:
            known = set(own_params) | set(own_buffer_owners)
            unexpected = [k for k in state if k not in known]
            if missing or unexpected:
                raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")

    def _collect_buffer_owners(
        self, out: Dict[str, Tuple["Module", str]], prefix: str
    ) -> None:
        for name in self._buffers:
            out[prefix + name] = (self, name)
        for child_name, child in self._modules.items():
            child._collect_buffer_owners(out, prefix + child_name + ".")

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lines = [self.__class__.__name__ + "("]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines)
