"""Neural-network layer substrate (replaces ``torch.nn``, see DESIGN.md)."""

from . import fused, init
from .containers import ModuleList, Sequential
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from .module import Module, Parameter
from .serialization import (
    load_into,
    load_state,
    save_module,
    save_state,
    state_dict_nbytes,
)

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "Identity",
    "Flatten",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "init",
    "fused",
    "save_state",
    "load_state",
    "save_module",
    "load_into",
    "state_dict_nbytes",
]
