"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from ..tensor import Tensor
from .module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, str(i), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index):
        items: List[Module] = list(self._modules.values())
        if isinstance(index, slice):
            return Sequential(*items[index])
        return items[index]


class ModuleList(Module):
    """A list of modules whose parameters are registered with the parent."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
