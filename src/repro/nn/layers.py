"""Neural network layers built on the autograd tensor engine."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, conv2d, avg_pool2d, max_pool2d, global_avg_pool2d
from ..tensor import functional as F
from . import init as weight_init
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "Identity",
    "Flatten",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Dropout",
]


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init.kaiming_normal((out_features, in_features), rng, gain=1.0))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2D convolution over NCHW inputs (square kernels, as in WRN)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            weight_init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), rng)
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class BatchNorm2d(Module):
    """Batch normalisation over the channel axis of NCHW tensors.

    Training mode normalises with batch statistics and maintains running
    estimates; eval mode uses the running estimates.  The library component
    of PoE is used in eval mode while frozen (its statistics were fixed by
    the library-extraction KD run).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            m = self.momentum
            self._update_buffer(
                "running_mean", (1 - m) * self.running_mean + m * mean.data.astype(np.float32)
            )
            self._update_buffer(
                "running_var", (1 - m) * self.running_var + m * var.data.astype(np.float32)
            )
        else:
            mean = Tensor(self.running_mean)
            var = Tensor(self.running_var)
        shape = (1, self.num_features, 1, 1)
        x_hat = (x - mean.reshape(shape)) / (var.reshape(shape) + self.eps).sqrt()
        return x_hat * self.weight.reshape(shape) + self.bias.reshape(shape)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:  # pragma: no cover
        return "ReLU()"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:  # pragma: no cover
        return "Identity()"


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:  # pragma: no cover
        return "Flatten()"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AvgPool2d({self.kernel_size})"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MaxPool2d({self.kernel_size})"


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)

    def __repr__(self) -> str:  # pragma: no cover
        return "GlobalAvgPool2d()"


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, rng=self._rng, training=self.training)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dropout(p={self.p})"
