"""Model persistence: save/load state dicts as compressed ``.npz`` archives.

Serialized byte size is a first-class quantity in this reproduction — the
paper's Table 4 compares the storage volume of the PoE framework (library +
all experts) against the oracle and against materialising all ``2^n``
specialized models.  :func:`state_dict_nbytes` is the measurement used there.
"""

from __future__ import annotations

import io
import os
from typing import Dict

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_module", "load_into", "state_dict_nbytes"]


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` as a compressed npz archive."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in state.items()})


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {k: archive[k] for k in archive.files}


def save_module(module: Module, path: str) -> None:
    """Persist a module's parameters and buffers."""
    save_state(module.state_dict(), path)


def load_into(module: Module, path: str, strict: bool = True) -> Module:
    """Load parameters saved with :func:`save_module` into ``module``."""
    module.load_state_dict(load_state(path), strict=strict)
    return module


def state_dict_nbytes(state: Dict[str, np.ndarray], compressed: bool = False) -> int:
    """Byte size of a state dict.

    ``compressed=False`` counts raw array bytes (the paper reports raw model
    volumes); ``compressed=True`` measures the actual npz archive size.
    """
    if not compressed:
        return int(sum(np.asarray(v).nbytes for v in state.values()))
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **{k: np.asarray(v) for k, v in state.items()})
    return buffer.getbuffer().nbytes
