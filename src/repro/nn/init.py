"""Weight initialisation schemes.

Kaiming (He) initialisation is the standard choice for the ReLU wide
residual networks used throughout the paper.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "fan_in_out"]


def fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for linear or convolutional weight shapes."""
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # Conv2d: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-normal initialisation (for ReLU nonlinearities)."""
    fan_in, _ = fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-uniform initialisation."""
    fan_in, _ = fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialisation."""
    fan_in, fan_out = fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
