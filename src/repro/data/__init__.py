"""Datasets, class hierarchies, loaders and transforms.

The synthetic generators substitute for CIFAR-100 / Tiny-ImageNet (offline
environment); see DESIGN.md §2 for the substitution argument.
"""

from .dataloader import DataLoader
from .dataset import ArrayDataset, Dataset, Subset, label_remap, task_subset
from .hierarchy import ClassHierarchy, CompositeTask, PrimitiveTask
from .synthetic import (
    HierarchicalImageDataset,
    SyntheticConfig,
    SyntheticImageGenerator,
    make_synth_cifar,
    make_synth_tiny_imagenet,
)
from .transforms import (
    Compose,
    Normalize,
    gaussian_noise,
    random_horizontal_flip,
    random_shift,
    standard_augmentation,
)

__all__ = [
    "DataLoader",
    "Dataset",
    "ArrayDataset",
    "Subset",
    "task_subset",
    "label_remap",
    "ClassHierarchy",
    "PrimitiveTask",
    "CompositeTask",
    "SyntheticConfig",
    "SyntheticImageGenerator",
    "HierarchicalImageDataset",
    "make_synth_cifar",
    "make_synth_tiny_imagenet",
    "Compose",
    "Normalize",
    "gaussian_noise",
    "random_horizontal_flip",
    "random_shift",
    "standard_augmentation",
]
