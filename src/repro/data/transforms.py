"""Batch-level image transforms (augmentation and normalisation).

All transforms operate on float32 NCHW batches and are pure functions of
``(batch, rng)`` so the DataLoader can apply them lazily per epoch.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Compose",
    "random_horizontal_flip",
    "random_shift",
    "gaussian_noise",
    "Normalize",
    "standard_augmentation",
]

BatchTransform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[BatchTransform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch, rng)
        return batch


def random_horizontal_flip(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Flip each image left-right with probability 0.5."""
    flips = rng.random(batch.shape[0]) < 0.5
    out = batch.copy()
    out[flips] = out[flips, :, :, ::-1]
    return out


def random_shift(max_shift: int = 1) -> BatchTransform:
    """Random circular translation up to ``max_shift`` pixels per axis.

    The cheap numpy analogue of pad-and-crop augmentation.
    """

    def _apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = np.empty_like(batch)
        shifts = rng.integers(-max_shift, max_shift + 1, size=(batch.shape[0], 2))
        for i, (dy, dx) in enumerate(shifts):
            out[i] = np.roll(batch[i], (int(dy), int(dx)), axis=(1, 2))
        return out

    return _apply


def gaussian_noise(std: float = 0.05) -> BatchTransform:
    """Add zero-mean Gaussian noise."""

    def _apply(batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return batch + rng.normal(0.0, std, size=batch.shape).astype(batch.dtype)

    return _apply


class Normalize:
    """Per-channel standardisation with fixed statistics."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float32).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(1, -1, 1, 1)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator = None) -> np.ndarray:
        return (batch - self.mean) / self.std

    @staticmethod
    def fit(images: np.ndarray) -> "Normalize":
        """Estimate statistics from a training set (NCHW)."""
        mean = images.mean(axis=(0, 2, 3))
        std = images.std(axis=(0, 2, 3)) + 1e-8
        return Normalize(mean, std)


def standard_augmentation(max_shift: int = 1, noise_std: float = 0.0) -> Compose:
    """The default training augmentation: flip + shift (+ optional noise)."""
    transforms: list[BatchTransform] = [random_horizontal_flip, random_shift(max_shift)]
    if noise_std > 0:
        transforms.append(gaussian_noise(noise_std))
    return Compose(transforms)
