"""Synthetic hierarchical image datasets (CIFAR-100 / Tiny-ImageNet stand-ins).

The paper evaluates on CIFAR-100 (100 classes in 20 superclasses) and
Tiny-ImageNet (200 classes grouped into 3-10-class primitive tasks via the
ImageNet semantic tree).  Neither dataset is available offline, so we
generate images procedurally while preserving exactly the structure PoE
exploits (see DESIGN.md §2):

* **hierarchical similarity** — every superclass has a smooth *prototype
  pattern*; its classes share it and differ by a finer class pattern.
  Classes inside a primitive task are therefore mutually confusable, which
  is what gives the oracle's soft targets their dark knowledge;
* **non-trivial generalisation** — per-sample noise, random gain and random
  translations mean a model trained on few task-specific samples (the
  Scratch baseline) generalises worse than one distilled from the oracle;
* **out-of-distribution structure** — samples of other superclasses are
  drawn from visibly different prototypes, so a well-calibrated expert can
  assign them low confidence (Figure 5's measurement).

Images are float32 NCHW in roughly [-2, 2]; no further normalisation is
required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from .dataset import ArrayDataset
from .hierarchy import ClassHierarchy

__all__ = [
    "SyntheticConfig",
    "SyntheticImageGenerator",
    "HierarchicalImageDataset",
    "make_synth_cifar",
    "make_synth_tiny_imagenet",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic image distribution."""

    image_size: int = 8
    channels: int = 3
    super_strength: float = 1.0  # amplitude of the shared superclass pattern
    class_strength: float = 0.9  # amplitude of the class-specific pattern
    super_smoothness: float = 2.0  # gaussian sigma: low frequency
    class_smoothness: float = 0.8  # higher frequency detail
    noise_std: float = 0.7  # per-sample pixel noise
    gain_jitter: float = 0.15  # multiplicative per-sample gain jitter
    max_shift: int = 1  # random circular translation


def _smooth_field(
    rng: np.random.Generator, channels: int, size: int, sigma: float
) -> np.ndarray:
    """A unit-variance smooth random pattern of shape (C, H, W)."""
    field_ = rng.standard_normal((channels, size, size))
    if sigma > 0:
        field_ = ndimage.gaussian_filter(field_, sigma=(0, sigma, sigma), mode="wrap")
    field_ -= field_.mean()
    std = field_.std()
    if std > 0:
        field_ /= std
    return field_.astype(np.float32)


class SyntheticImageGenerator:
    """Draws images for the classes of a :class:`ClassHierarchy`.

    Prototypes are a pure function of ``seed`` so train and test splits (and
    any number of extra samples) come from the same distribution.
    """

    def __init__(
        self,
        hierarchy: ClassHierarchy,
        config: SyntheticConfig = SyntheticConfig(),
        seed: int = 0,
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config
        self.seed = seed
        proto_rng = np.random.default_rng(seed)
        c, s = config.channels, config.image_size
        self._super_proto = {}
        self._class_proto = {}
        for task in hierarchy.primitive_tasks():
            self._super_proto[task.name] = _smooth_field(
                proto_rng, c, s, config.super_smoothness
            )
            for class_id in task.classes:
                self._class_proto[class_id] = _smooth_field(
                    proto_rng, c, s, config.class_smoothness
                )

    def class_mean(self, class_id: int) -> np.ndarray:
        """The noiseless prototype image of a class."""
        cfg = self.config
        task = self.hierarchy.task_of_class(class_id)
        return (
            cfg.super_strength * self._super_proto[task.name]
            + cfg.class_strength * self._class_proto[class_id]
        )

    def sample_batch(
        self, class_ids: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one image per entry of ``class_ids`` -> (N, C, H, W)."""
        cfg = self.config
        class_ids = np.asarray(class_ids)
        n = class_ids.shape[0]
        images = np.empty(
            (n, cfg.channels, cfg.image_size, cfg.image_size), dtype=np.float32
        )
        for i, class_id in enumerate(class_ids):
            images[i] = self.class_mean(int(class_id))
        gains = 1.0 + cfg.gain_jitter * rng.standard_normal((n, 1, 1, 1)).astype(np.float32)
        images *= gains
        images += rng.normal(0.0, cfg.noise_std, size=images.shape).astype(np.float32)
        if cfg.max_shift > 0:
            shifts = rng.integers(-cfg.max_shift, cfg.max_shift + 1, size=(n, 2))
            for i, (dy, dx) in enumerate(shifts):
                if dy or dx:
                    images[i] = np.roll(images[i], (int(dy), int(dx)), axis=(1, 2))
        return images


class HierarchicalImageDataset:
    """Train/test split of synthetic hierarchical images.

    Attributes ``train`` and ``test`` are :class:`ArrayDataset`; labels are
    global class ids consistent with ``hierarchy``.
    """

    def __init__(
        self,
        hierarchy: ClassHierarchy,
        generator: SyntheticImageGenerator,
        train_per_class: int = 100,
        test_per_class: int = 40,
        seed: int = 1,
    ) -> None:
        self.hierarchy = hierarchy
        self.generator = generator
        rng = np.random.default_rng(seed)
        self.train = self._draw(train_per_class, rng)
        self.test = self._draw(test_per_class, rng)

    def _draw(self, per_class: int, rng: np.random.Generator) -> ArrayDataset:
        labels = np.repeat(np.arange(self.hierarchy.num_classes), per_class)
        images = self.generator.sample_batch(labels, rng)
        return ArrayDataset(images, labels)

    @property
    def num_classes(self) -> int:
        return self.hierarchy.num_classes


def make_synth_cifar(
    num_superclasses: int = 20,
    classes_per_super: int = 5,
    train_per_class: int = 100,
    test_per_class: int = 40,
    image_size: int = 8,
    seed: int = 0,
    config: Optional[SyntheticConfig] = None,
) -> HierarchicalImageDataset:
    """CIFAR-100-style dataset: equal-size superclasses.

    Defaults give the paper's 20-superclass structure at reduced resolution;
    the experiment configs (``repro.eval.experiments``) scale class counts
    down so a numpy substrate trains in seconds.
    """
    hierarchy = ClassHierarchy.uniform(num_superclasses, classes_per_super, prefix="sc")
    cfg = config or SyntheticConfig(image_size=image_size)
    generator = SyntheticImageGenerator(hierarchy, cfg, seed=seed)
    return HierarchicalImageDataset(
        hierarchy, generator, train_per_class, test_per_class, seed=seed + 1
    )


def make_synth_tiny_imagenet(
    group_sizes: Optional[Sequence[int]] = None,
    num_groups: int = 12,
    train_per_class: int = 80,
    test_per_class: int = 30,
    image_size: int = 8,
    seed: int = 7,
    config: Optional[SyntheticConfig] = None,
) -> HierarchicalImageDataset:
    """Tiny-ImageNet-style dataset: variable group sizes (3-10 per paper §5.1)."""
    if group_sizes is None:
        rng = np.random.default_rng(seed)
        group_sizes = [int(rng.integers(3, 11)) for _ in range(num_groups)]
    hierarchy = ClassHierarchy.variable(group_sizes, prefix="wn")
    cfg = config or SyntheticConfig(image_size=image_size)
    generator = SyntheticImageGenerator(hierarchy, cfg, seed=seed)
    return HierarchicalImageDataset(
        hierarchy, generator, train_per_class, test_per_class, seed=seed + 1
    )
