"""Mini-batch iteration over in-memory datasets."""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from .dataset import ArrayDataset, Dataset

__all__ = ["DataLoader"]

BatchTransform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class DataLoader:
    """Iterates (images, labels) numpy batches.

    Unlike a generic item-wise loader, batches are sliced directly out of the
    underlying arrays, and optional augmentation runs on whole batches — the
    right trade-off for a numpy substrate where per-item Python overhead
    dominates.

    Parameters
    ----------
    dataset:
        An :class:`ArrayDataset` (or anything exposing ``arrays()``).
    batch_size:
        Batch size; the final short batch is kept (``drop_last=False``).
    shuffle:
        Reshuffle indices each epoch.
    transform:
        Optional batch-level augmentation ``f(images, rng) -> images``.
    seed:
        Seeds the shuffling / augmentation RNG for reproducibility.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 128,
        shuffle: bool = True,
        transform: Optional[BatchTransform] = None,
        drop_last: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if isinstance(dataset, ArrayDataset):
            self.images, self.labels = dataset.arrays()
        else:  # materialise a generic dataset once
            pairs = [dataset[i] for i in range(len(dataset))]
            self.images = np.stack([p[0] for p in pairs]).astype(np.float32)
            self.labels = np.asarray([p[1] for p in pairs], dtype=np.int64)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = self.images.shape[0]
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    @property
    def num_samples(self) -> int:
        return self.images.shape[0]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = self.images.shape[0]
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start : start + self.batch_size]
            batch = self.images[idx]
            if self.transform is not None:
                batch = self.transform(batch, self._rng)
            yield batch, self.labels[idx]
