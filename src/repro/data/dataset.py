"""Dataset abstractions.

All experiment datasets are small enough to live in memory as numpy arrays;
:class:`ArrayDataset` is the workhorse.  :func:`task_subset` produces the
*task-specific dataset* the paper's Scratch/Transfer baselines train on, with
labels remapped into the local ``[0, |H|)`` index space of a task.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Union

import numpy as np

from .hierarchy import CompositeTask, PrimitiveTask

__all__ = ["Dataset", "ArrayDataset", "Subset", "task_subset", "label_remap"]

TaskLike = Union[PrimitiveTask, CompositeTask]


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory dataset over (images, labels) arrays.

    ``images``: float32 array of shape (N, C, H, W); ``labels``: int array of
    shape (N,).
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels)
        if images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {images.shape}")
        if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
            raise ValueError(
                f"labels shape {labels.shape} incompatible with images {images.shape}"
            )
        self.images = images
        self.labels = labels.astype(np.int64)

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.images, self.labels

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self) else 0


class Subset(Dataset):
    """View over a dataset restricted to ``indices``."""

    def __init__(self, base: Dataset, indices: Sequence[int]) -> None:
        self.base = base
        self.indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.base[int(self.indices[index])]


def label_remap(task: TaskLike) -> Dict[int, int]:
    """Global-class-id -> local position mapping for a task.

    For a composite task the local order is the expert-concatenation order,
    so a consolidated model's argmax position maps straight back to a class.
    """
    return {global_id: local for local, global_id in enumerate(task.classes)}


def task_subset(
    dataset: ArrayDataset,
    task: TaskLike,
    remap: bool = True,
) -> ArrayDataset:
    """Restrict an :class:`ArrayDataset` to the classes of ``task``.

    With ``remap=True`` labels are rewritten into the task-local space —
    this is the dataset a specialized model trains and evaluates on.
    """
    classes = np.asarray(task.classes)
    mask = np.isin(dataset.labels, classes)
    images = dataset.images[mask]
    labels = dataset.labels[mask]
    if remap:
        mapping = label_remap(task)
        labels = np.asarray([mapping[int(y)] for y in labels], dtype=np.int64)
    return ArrayDataset(images, labels)
