"""Class hierarchies, primitive tasks and composite tasks (paper §3).

The paper decomposes the oracle's class set ``C`` into *primitive tasks*
``H_1 … H_n`` — fine-grained groups taken from a semantic class hierarchy
(CIFAR-100 superclasses; low-level ancestors of the ImageNet tree).  A
*composite task* ``Q`` is a union of primitive tasks, and the task-specific
model ``M(Q)`` must recognise exactly the classes of ``Q``.

:class:`ClassHierarchy` owns the global class indexing and exposes the
primitive tasks; it is backed by a :mod:`networkx` tree so that hierarchies
imported from real semantic trees (e.g. WordNet subsets) plug in unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import networkx as nx

__all__ = ["PrimitiveTask", "CompositeTask", "ClassHierarchy"]


@dataclass(frozen=True)
class PrimitiveTask:
    """A fine-grained group of classes ``H_i ⊂ C`` that is not decomposed further."""

    name: str
    classes: Tuple[int, ...]
    class_names: Tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.classes)

    def __contains__(self, class_id: int) -> bool:
        return class_id in self.classes


@dataclass(frozen=True)
class CompositeTask:
    """A query ``Q`` = union of primitive tasks, in a fixed order.

    The order of the primitive tasks defines the order in which expert
    sub-logits are concatenated in the consolidated model, and therefore the
    mapping from unified-logit positions back to global class ids.
    """

    tasks: Tuple[PrimitiveTask, ...]

    def __post_init__(self) -> None:
        seen: set = set()
        for task in self.tasks:
            overlap = seen.intersection(task.classes)
            if overlap:
                raise ValueError(f"primitive tasks overlap on classes {sorted(overlap)}")
            seen.update(task.classes)

    @property
    def classes(self) -> Tuple[int, ...]:
        """Global class ids of Q, in expert-concatenation order."""
        return tuple(itertools.chain.from_iterable(t.classes for t in self.tasks))

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tasks)

    @property
    def n_primitives(self) -> int:
        """The paper's ``n(Q)``."""
        return len(self.tasks)

    def __len__(self) -> int:
        return sum(len(t) for t in self.tasks)

    def __contains__(self, class_id: int) -> bool:
        return any(class_id in t for t in self.tasks)


class ClassHierarchy:
    """Two-level class hierarchy: superclasses (primitive tasks) over classes.

    Parameters
    ----------
    groups:
        Mapping from superclass name to the list of class names it contains.
        Global class ids are assigned in iteration order, matching how a
        dataset enumerates its labels.
    """

    def __init__(self, groups: Mapping[str, Sequence[str]]) -> None:
        if not groups:
            raise ValueError("hierarchy needs at least one superclass")
        self._tree = nx.DiGraph()
        self._tree.add_node("<root>")
        self._tasks: List[PrimitiveTask] = []
        self._task_by_name: Dict[str, PrimitiveTask] = {}
        self._task_of_class: Dict[int, PrimitiveTask] = {}
        self._class_names: List[str] = []
        next_id = 0
        for super_name, class_names in groups.items():
            if not class_names:
                raise ValueError(f"superclass {super_name!r} has no classes")
            ids = tuple(range(next_id, next_id + len(class_names)))
            next_id += len(class_names)
            task = PrimitiveTask(super_name, ids, tuple(class_names))
            self._tasks.append(task)
            self._task_by_name[super_name] = task
            self._tree.add_edge("<root>", super_name)
            for class_id, class_name in zip(ids, class_names):
                self._tree.add_edge(super_name, class_name)
                self._task_of_class[class_id] = task
                self._class_names.append(class_name)

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return len(self._class_names)

    @property
    def num_primitive_tasks(self) -> int:
        return len(self._tasks)

    @property
    def class_names(self) -> Tuple[str, ...]:
        return tuple(self._class_names)

    @property
    def tree(self) -> nx.DiGraph:
        """The underlying semantic tree (root -> superclass -> class)."""
        return self._tree

    def primitive_tasks(self) -> Tuple[PrimitiveTask, ...]:
        return tuple(self._tasks)

    def task(self, name: str) -> PrimitiveTask:
        try:
            return self._task_by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown primitive task {name!r}; known: {sorted(self._task_by_name)}"
            ) from None

    def task_of_class(self, class_id: int) -> PrimitiveTask:
        return self._task_of_class[class_id]

    def composite(self, names: Iterable[str]) -> CompositeTask:
        """Build the composite task ``Q`` from primitive-task names."""
        return CompositeTask(tuple(self.task(n) for n in names))

    def all_composites(self, n_primitives: int) -> List[CompositeTask]:
        """Every composite task with exactly ``n_primitives`` primitives."""
        combos = itertools.combinations(self._tasks, n_primitives)
        return [CompositeTask(c) for c in combos]

    @staticmethod
    def uniform(
        num_superclasses: int, classes_per_super: int, prefix: str = "task"
    ) -> "ClassHierarchy":
        """A synthetic CIFAR-100-style hierarchy with equal-size groups."""
        groups = {
            f"{prefix}{s}": [f"{prefix}{s}_class{c}" for c in range(classes_per_super)]
            for s in range(num_superclasses)
        }
        return ClassHierarchy(groups)

    @staticmethod
    def variable(
        group_sizes: Sequence[int], prefix: str = "group"
    ) -> "ClassHierarchy":
        """A Tiny-ImageNet-style hierarchy with variable group sizes (3-10)."""
        groups = {
            f"{prefix}{s}": [f"{prefix}{s}_class{c}" for c in range(size)]
            for s, size in enumerate(group_sizes)
        }
        return ClassHierarchy(groups)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ClassHierarchy(num_classes={self.num_classes}, "
            f"num_primitive_tasks={self.num_primitive_tasks})"
        )
