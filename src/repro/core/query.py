"""The service phase: realtime model querying (paper Fig. 1b).

:class:`ModelQueryEngine` is the server-side component of the AIaaS scenario
the paper motivates: clients submit a composite task (a set of primitive
task names), the engine assembles the task-specific model from the pool
without any training and returns a :class:`TaskSpecificModel` handle that
predicts *global* class ids / names directly.

The engine is a thin shim over :mod:`repro.serving`: cache keys are the
canonical (sorted) task set, so permutations of the same query share one
cache entry, and the memo itself is a byte-budgeted LRU rather than an
unbounded dict.  For concurrent serving, payload delivery and load
tooling, use :class:`repro.serving.ServingGateway` directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.hierarchy import CompositeTask
from ..distill.caches import batched_forward
from ..models import BranchedSpecialistNet, count_flops, count_params
from ..tensor import Tensor, no_grad
from ..tensor.functional import softmax
from .pool import PoolOfExperts

__all__ = ["TaskSpecificModel", "QueryRecord", "ModelQueryEngine"]

# A cache entry keeps at most this many head-order variants of one
# consolidated model; a 6-task query has 720 permutations and the byte
# budget only charges the weights once, so wrapper growth must be bounded.
_MAX_ORDER_VARIANTS = 8


class TaskSpecificModel:
    """A consolidated ``M(Q)`` bound to its composite task.

    Thin inference wrapper: maps the branched network's unified-logit
    positions back to global class ids and human-readable names.
    """

    def __init__(self, network: BranchedSpecialistNet, task: CompositeTask) -> None:
        if network.num_classes != len(task):
            raise ValueError(
                f"network outputs {network.num_classes} classes, task has {len(task)}"
            )
        self.network = network
        self.task = task
        self._classes = np.asarray(task.classes, dtype=np.int64)
        names: List[str] = []
        for prim in task.tasks:
            if prim.class_names:
                names.extend(prim.class_names)
            else:
                names.extend(str(c) for c in prim.classes)
        self._class_names = tuple(names)

    @property
    def classes(self) -> np.ndarray:
        """Global class ids, in unified-logit order."""
        return self._classes

    @property
    def class_names(self) -> Tuple[str, ...]:
        return self._class_names

    def logits(self, images: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Unified logits ``s_Q``, reference per-head loop path (bit-stable)."""
        return batched_forward(self.network, np.asarray(images, dtype=np.float32), batch_size)

    def fused_logits(self, images: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Unified logits via the fully fused fast path (no autograd).

        Numerically equal to :meth:`logits` up to float32 round-off: the
        shared trunk runs through its compiled eval-mode program
        (:func:`~repro.core.features.fused_trunk_features` — NHWC GEMMs,
        folded BN, verified against autograd at compile time) and the
        ``n(Q)`` heads execute as one batched pass
        (:meth:`~repro.models.BranchedSpecialistNet.fused_logits`) instead
        of a Python loop.  Use :meth:`logits` where bit-stable output
        matters (payload round-trip checks); predictions use this path.
        """
        from .features import fused_trunk_features

        images = np.asarray(images, dtype=np.float32)
        bank = self.network.fused_bank()
        out = []
        for start in range(0, images.shape[0], batch_size):
            chunk = images[start : start + batch_size]
            features, _ = fused_trunk_features(self.network.trunk, chunk, batch_size)
            out.append(bank(features))
        return np.concatenate(out, axis=0)

    def logits_from_features(self, features: np.ndarray) -> np.ndarray:
        """Fused logits from precomputed trunk features (serving fast path)."""
        return self.network.fused_logits(features)

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        """Softmax probabilities ``P_Q`` over the task's classes."""
        with no_grad():
            return softmax(Tensor(self.fused_logits(images))).numpy()

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted *global* class ids (fused fast path)."""
        return self._classes[self.fused_logits(images).argmax(axis=1)]

    def predict_names(self, images: np.ndarray) -> List[str]:
        """Predicted class names (fused fast path)."""
        return [self._class_names[i] for i in self.fused_logits(images).argmax(axis=1)]

    def num_params(self) -> int:
        return count_params(self.network)

    def cache_nbytes(self) -> int:
        """Byte charge for holding this model in a serving cache.

        Counts the module weights plus a second copy of every head's
        weights: the fused bank (:meth:`~repro.models.BranchedSpecialistNet
        .fused_bank`) stacks them on the first prediction, so a cached
        model's steady-state residency includes it even though it may not
        exist yet at insert time.
        """
        from ..serving.cache import BYTES_PER_PARAM

        head_params = sum(count_params(head) for head in self.network.heads)
        return (self.num_params() + head_params) * BYTES_PER_PARAM

    def num_flops(self, input_shape: Tuple[int, int, int]) -> int:
        return count_flops(self.network, input_shape)


@dataclass(frozen=True)
class QueryRecord:
    """Bookkeeping for one model query served by the engine."""

    query: Tuple[str, ...]
    seconds: float  # wall-clock consolidation latency
    params: int
    cached: bool


class ModelQueryEngine:
    """Serves task-specific models out of a :class:`PoolOfExperts`.

    Consolidation is train-free, so serving a query is dominated by pure
    Python object construction — microseconds, versus the minutes of
    training that Scratch/Transfer/SD/UHC/CKD would need (Fig. 6-7).

    The memo cache is keyed on the *canonical* task set
    (:func:`repro.serving.canonical_tasks`), so ``query(["a", "b"])`` and
    ``query(["b", "a"])`` share one consolidation; each requested head
    order is materialised at most once per entry (weights are shared by
    reference, so an order variant costs a wrapper, not a copy).  The cache
    is byte-budgeted LRU — hot queries stay, cold ones age out.
    """

    def __init__(
        self,
        pool: PoolOfExperts,
        cache_models: bool = True,
        cache_bytes: int = 64 << 20,
    ) -> None:
        from ..serving.cache import ByteBudgetLRU

        self.pool = pool
        self.cache_models = cache_models
        self._cache = ByteBudgetLRU(cache_bytes if cache_models else 0)
        self.records: List[QueryRecord] = []

    def available_tasks(self) -> Tuple[str, ...]:
        """Primitive tasks that can currently be queried."""
        return self.pool.expert_names()

    def query(self, tasks: Union[CompositeTask, Sequence[str]]) -> TaskSpecificModel:
        """Assemble (or fetch) the task-specific model for ``tasks``.

        The returned model's logit layout follows the *requested* task
        order; caching happens at canonical-key granularity underneath.
        """
        from ..serving.canonical import canonical_tasks

        order = tuple(tasks.names) if isinstance(tasks, CompositeTask) else tuple(tasks)
        key = canonical_tasks(order) if order else order  # empty -> consolidate raises
        start = time.perf_counter()
        entry: Optional[Dict[Tuple[str, ...], TaskSpecificModel]] = self._cache.get(key)
        cached = entry is not None
        if entry is None:
            network, composite = self.pool.consolidate(tasks)
            model = TaskSpecificModel(network, composite)
            self._cache.put(key, {order: model}, model.cache_nbytes())
        elif order in entry:
            model = entry[order]
        else:
            model = self._rewrap(entry, order, tasks)
            if len(entry) < _MAX_ORDER_VARIANTS:
                entry[order] = model
        elapsed = time.perf_counter() - start
        self.records.append(
            QueryRecord(query=key, seconds=elapsed, params=model.num_params(), cached=cached)
        )
        return model

    def _rewrap(
        self,
        entry: Dict[Tuple[str, ...], TaskSpecificModel],
        order: Tuple[str, ...],
        tasks: Union[CompositeTask, Sequence[str]],
    ) -> TaskSpecificModel:
        """Materialise a cached entry under a different head order.

        Reuses the cached model's trunk and heads by reference — no pool
        access, no weight movement, just a new wrapper in ``order``.
        """
        sibling = next(iter(entry.values()))
        heads = dict(zip(sibling.network.head_names, sibling.network.heads))
        composite = (
            tasks
            if isinstance(tasks, CompositeTask)
            else self.pool.hierarchy.composite(order)
        )
        network = BranchedSpecialistNet(
            sibling.network.trunk, [(name, heads[name]) for name in order]
        )
        network.eval()
        return TaskSpecificModel(network, composite)

    def mean_latency(self) -> Optional[float]:
        """Mean consolidation latency over non-cached queries, in seconds."""
        fresh = [r.seconds for r in self.records if not r.cached]
        return float(np.mean(fresh)) if fresh else None
