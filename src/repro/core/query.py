"""The service phase: realtime model querying (paper Fig. 1b).

:class:`ModelQueryEngine` is the server-side component of the AIaaS scenario
the paper motivates: clients submit a composite task (a set of primitive
task names), the engine assembles the task-specific model from the pool
without any training and returns a :class:`TaskSpecificModel` handle that
predicts *global* class ids / names directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.hierarchy import CompositeTask
from ..distill.caches import batched_forward
from ..models import BranchedSpecialistNet, count_flops, count_params
from ..tensor import Tensor, no_grad
from ..tensor.functional import softmax
from .pool import PoolOfExperts

__all__ = ["TaskSpecificModel", "QueryRecord", "ModelQueryEngine"]


class TaskSpecificModel:
    """A consolidated ``M(Q)`` bound to its composite task.

    Thin inference wrapper: maps the branched network's unified-logit
    positions back to global class ids and human-readable names.
    """

    def __init__(self, network: BranchedSpecialistNet, task: CompositeTask) -> None:
        if network.num_classes != len(task):
            raise ValueError(
                f"network outputs {network.num_classes} classes, task has {len(task)}"
            )
        self.network = network
        self.task = task
        self._classes = np.asarray(task.classes, dtype=np.int64)
        names: List[str] = []
        for prim in task.tasks:
            if prim.class_names:
                names.extend(prim.class_names)
            else:
                names.extend(str(c) for c in prim.classes)
        self._class_names = tuple(names)

    @property
    def classes(self) -> np.ndarray:
        """Global class ids, in unified-logit order."""
        return self._classes

    @property
    def class_names(self) -> Tuple[str, ...]:
        return self._class_names

    def logits(self, images: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Unified logits ``s_Q`` for a batch of images."""
        return batched_forward(self.network, np.asarray(images, dtype=np.float32), batch_size)

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        """Softmax probabilities ``P_Q`` over the task's classes."""
        with no_grad():
            return softmax(Tensor(self.logits(images))).numpy()

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted *global* class ids."""
        return self._classes[self.logits(images).argmax(axis=1)]

    def predict_names(self, images: np.ndarray) -> List[str]:
        """Predicted class names."""
        return [self._class_names[i] for i in self.logits(images).argmax(axis=1)]

    def num_params(self) -> int:
        return count_params(self.network)

    def num_flops(self, input_shape: Tuple[int, int, int]) -> int:
        return count_flops(self.network, input_shape)


@dataclass(frozen=True)
class QueryRecord:
    """Bookkeeping for one model query served by the engine."""

    query: Tuple[str, ...]
    seconds: float  # wall-clock consolidation latency
    params: int
    cached: bool


class ModelQueryEngine:
    """Serves task-specific models out of a :class:`PoolOfExperts`.

    Consolidation is train-free, so serving a query is dominated by pure
    Python object construction — microseconds, versus the minutes of
    training that Scratch/Transfer/SD/UHC/CKD would need (Fig. 6-7).

    An optional memo cache returns previously assembled models; since
    consolidation shares weights by reference anyway, the cache only avoids
    re-wrapping, but it also makes repeated-query bookkeeping explicit.
    """

    def __init__(self, pool: PoolOfExperts, cache_models: bool = True) -> None:
        self.pool = pool
        self.cache_models = cache_models
        self._cache: Dict[Tuple[str, ...], TaskSpecificModel] = {}
        self.records: List[QueryRecord] = []

    def available_tasks(self) -> Tuple[str, ...]:
        """Primitive tasks that can currently be queried."""
        return self.pool.expert_names()

    def query(self, tasks: Union[CompositeTask, Sequence[str]]) -> TaskSpecificModel:
        """Assemble (or fetch) the task-specific model for ``tasks``."""
        key = (
            tuple(tasks.names)
            if isinstance(tasks, CompositeTask)
            else tuple(tasks)
        )
        start = time.perf_counter()
        cached = self.cache_models and key in self._cache
        if cached:
            model = self._cache[key]
        else:
            network, composite = self.pool.consolidate(tasks)
            model = TaskSpecificModel(network, composite)
            if self.cache_models:
                self._cache[key] = model
        elapsed = time.perf_counter() - start
        self.records.append(
            QueryRecord(query=key, seconds=elapsed, params=model.num_params(), cached=cached)
        )
        return model

    def mean_latency(self) -> Optional[float]:
        """Mean consolidation latency over non-cached queries, in seconds."""
        fresh = [r.seconds for r in self.records if not r.cached]
        return float(np.mean(fresh)) if fresh else None
