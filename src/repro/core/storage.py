"""Persistence and storage accounting for the PoE framework (Table 4).

The paper's storage argument: pre-training all ``2^n − 1`` composite-task
specialists would need terabytes, while PoE stores one library plus ``n``
tiny experts — megabytes, 20-30× smaller than the oracle itself.

:class:`ExpertStore` persists a pool to a directory (one ``.npz`` per
component plus a JSON manifest) and measures the byte volumes reported in
the Table 4 reproduction.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict

from ..data.hierarchy import ClassHierarchy
from ..models import WRNHead, WRNTrunk
from ..nn import Module, load_state, save_state, state_dict_nbytes
from .pool import PoEConfig, PoolOfExperts

__all__ = ["VolumeReport", "ExpertStore", "estimate_all_specialists_volume"]


def estimate_all_specialists_volume(n_primitives: int, specialist_nbytes: int) -> int:
    """Lower bound on storing every composite specialist separately.

    There are ``2^n − 1`` non-empty composite tasks; each needs at least one
    specialist model of ``specialist_nbytes`` (the single-primitive expert
    size — larger composites only grow).  This mirrors the paper's ≥
    estimates in Table 4.
    """
    if n_primitives < 1:
        raise ValueError("need at least one primitive task")
    return (2**n_primitives - 1) * specialist_nbytes


@dataclass(frozen=True)
class VolumeReport:
    """Byte volumes of a pool, oracle, and the all-specialists estimate."""

    oracle_bytes: int
    library_bytes: int
    expert_bytes: Dict[str, int]
    n_primitives: int

    @property
    def experts_total_bytes(self) -> int:
        return sum(self.expert_bytes.values())

    @property
    def pool_bytes(self) -> int:
        """Library + all experts — the paper's 'All' column for PoE."""
        return self.library_bytes + self.experts_total_bytes

    @property
    def mean_expert_bytes(self) -> float:
        return self.experts_total_bytes / max(1, len(self.expert_bytes))

    @property
    def all_specialists_bytes(self) -> int:
        per_specialist = int(self.mean_expert_bytes) + self.library_bytes
        return estimate_all_specialists_volume(self.n_primitives, per_specialist)

    @property
    def oracle_to_pool_ratio(self) -> float:
        """How many times smaller the pool is than the oracle (paper: 20-30x)."""
        return self.oracle_bytes / max(1, self.pool_bytes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "oracle_bytes": self.oracle_bytes,
            "library_bytes": self.library_bytes,
            "experts_total_bytes": self.experts_total_bytes,
            "mean_expert_bytes": self.mean_expert_bytes,
            "pool_bytes": self.pool_bytes,
            "all_specialists_bytes": self.all_specialists_bytes,
            "oracle_to_pool_ratio": self.oracle_to_pool_ratio,
            "n_primitives": self.n_primitives,
        }


class ExpertStore:
    """Directory-backed persistence of a :class:`PoolOfExperts`."""

    MANIFEST = "pool.json"

    def __init__(self, root: str) -> None:
        self.root = root

    # ------------------------------------------------------------------
    def save(self, pool: PoolOfExperts) -> None:
        """Persist library + experts + manifest under ``root``."""
        if pool.library is None:
            raise RuntimeError("cannot save an empty pool")
        os.makedirs(self.root, exist_ok=True)
        save_state(pool.library.state_dict(), self._path("library"))
        for name, head in pool.experts.items():
            save_state(head.state_dict(), self._path(f"expert_{name}"))
        cfg = pool.config
        manifest = {
            "experts": {
                name: {"num_classes": head.num_classes} for name, head in pool.experts.items()
            },
            "config": {
                "library_depth": cfg.library_depth,
                "library_k": cfg.library_k,
                "expert_ks": cfg.expert_ks,
                "library_level": cfg.library_level,
                "temperature": cfg.temperature,
                "alpha": cfg.alpha,
                "scale_norm": cfg.scale_norm,
            },
        }
        with open(os.path.join(self.root, self.MANIFEST), "w") as fh:
            json.dump(manifest, fh, indent=2)

    def load(self, oracle: Module, hierarchy: ClassHierarchy) -> PoolOfExperts:
        """Rebuild a pool from disk (weights only; histories are not kept)."""
        with open(os.path.join(self.root, self.MANIFEST)) as fh:
            manifest = json.load(fh)
        cfg_raw = manifest["config"]
        config = PoEConfig(
            library_depth=int(cfg_raw["library_depth"]),
            library_k=float(cfg_raw["library_k"]),
            expert_ks=float(cfg_raw["expert_ks"]),
            library_level=int(cfg_raw["library_level"]),
            temperature=float(cfg_raw["temperature"]),
            alpha=float(cfg_raw["alpha"]),
            scale_norm=str(cfg_raw["scale_norm"]),
        )
        pool = PoolOfExperts(oracle, hierarchy, config)
        trunk = WRNTrunk(
            config.library_depth, config.library_k, config.expert_ks, config.library_level
        )
        trunk.load_state_dict(load_state(self._path("library")))
        trunk.requires_grad_(False)
        trunk.eval()
        pool.library = trunk
        for name, meta in manifest["experts"].items():
            head = WRNHead(
                config.library_depth,
                config.library_k,
                config.expert_ks,
                num_classes=int(meta["num_classes"]),
                library_level=config.library_level,
            )
            head.load_state_dict(load_state(self._path(f"expert_{name}")))
            head.eval()
            pool.experts[name] = head
        return pool

    # ------------------------------------------------------------------
    def volume_report(self, pool: PoolOfExperts, oracle: Module) -> VolumeReport:
        """Raw byte volumes (uncompressed), mirroring Table 4's columns."""
        if pool.library is None:
            raise RuntimeError("pool is empty")
        return VolumeReport(
            oracle_bytes=state_dict_nbytes(oracle.state_dict()),
            library_bytes=state_dict_nbytes(pool.library.state_dict()),
            expert_bytes={
                name: state_dict_nbytes(head.state_dict())
                for name, head in pool.experts.items()
            },
            n_primitives=pool.hierarchy.num_primitive_tasks,
        )

    def on_disk_bytes(self) -> int:
        """Actual bytes of the persisted archive directory."""
        total = 0
        for entry in os.scandir(self.root):
            if entry.is_file():
                total += entry.stat().st_size
        return total

    def _path(self, stem: str) -> str:
        return os.path.join(self.root, f"{stem}.npz")
