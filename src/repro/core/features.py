"""Content-addressed trunk-feature caching.

The library trunk is frozen the moment it is extracted, so its features
over a given image batch are a pure function of the *bytes* of that batch
— reusable across every composite model ``M(Q)``, every expert
extraction, and every repeated prediction request.  This module provides:

* :func:`array_digest` — a stable content hash for numpy arrays (shape,
  dtype and raw bytes), the one cache identity shared by the
  preprocessing memos in :class:`~repro.core.pool.PoolOfExperts` and the
  serving tier's feature cache.  Keying on content (not on ``shape[0]``,
  as an earlier memo did) is what makes "different batch, same row count"
  a miss instead of silently returning the previous batch's features.
* :class:`TrunkFeatureCache` — a byte-budgeted LRU of feature arrays
  keyed on image digests, shared by the prediction fast path
  (:meth:`~repro.serving.ServingGateway.predict`) so repeated or
  cross-composite predictions on the same images run the shared trunk
  once.
* :func:`fused_trunk_features` — the cache's **miss path**: one trunk
  forward through the compiled eval-mode program
  (:class:`repro.nn.fused.FusedTrunk` — NHWC GEMMs, folded BN, no
  autograd graph), falling back to the autograd engine only for trunks
  the compiler cannot walk.  This is what makes *cold* predictions fast,
  not just repeat traffic.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["array_digest", "fused_trunk_features", "TrunkFeatureCache"]


def array_digest(array: np.ndarray) -> str:
    """Stable content hash of an array: shape + dtype + bytes (blake2b).

    Two arrays collide only if they are byte-identical with the same shape
    and dtype — in particular, two different image batches with the same
    row count get different digests.
    """
    array = np.asarray(array)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(str(array.shape).encode())
    hasher.update(str(array.dtype).encode())
    hasher.update(np.ascontiguousarray(array).tobytes())
    return hasher.hexdigest()


def fused_trunk_features(
    trunk, images: np.ndarray, batch_size: int = 512
) -> Tuple[np.ndarray, bool]:
    """``(features, used_fused)`` — one eval-mode trunk forward.

    Runs the compiled NHWC program (:func:`repro.nn.fused.fused_trunk_for`,
    memoized per trunk object and verified ``allclose`` against autograd at
    compile time).  A trunk the compiler cannot lower — anything that does
    not walk like a :class:`~repro.models.wrn.WRNTrunk` — falls back to the
    autograd engine, so callers never lose correctness, only speed.
    """
    from ..nn.fused import fused_trunk_for

    try:
        fused = fused_trunk_for(trunk)
    except (AttributeError, TypeError, ValueError):
        from ..distill.caches import batched_forward

        return batched_forward(trunk, images, batch_size), False
    return fused(images, batch_size), True


class TrunkFeatureCache:
    """Byte-budgeted LRU of trunk feature maps, keyed on image digests.

    A thin, purpose-named wrapper over
    :class:`~repro.serving.cache.ByteBudgetLRU`: entries are the raw
    feature arrays, charged at ``features.nbytes``.  A budget of 0
    disables caching (every lookup misses), mirroring the serving tiers.
    """

    def __init__(self, budget_bytes: int, ttl_seconds: Optional[float] = None) -> None:
        from ..serving.cache import ByteBudgetLRU

        self._lru = ByteBudgetLRU(budget_bytes, ttl_seconds=ttl_seconds)
        # generation guard: clear() bumps it, and inserts computed against
        # an older generation are refused — a trunk forward in flight
        # across a library re-extraction cannot cache stale features
        self._generation = 0
        self._generation_lock = threading.Lock()

    def get(self, digest: str) -> Optional[np.ndarray]:
        return self._lru.get(digest)

    def put(self, digest: str, features: np.ndarray) -> bool:
        return self._lru.put(digest, features, int(features.nbytes))

    def generation(self) -> int:
        """Token to snapshot before computing features (see :meth:`put_guarded`)."""
        with self._generation_lock:
            return self._generation

    def put_guarded(self, digest: str, features: np.ndarray, token: int) -> bool:
        """Insert only if no :meth:`clear` ran since ``token`` was taken."""
        with self._generation_lock:
            if self._generation != token:
                return False
            return self.put(digest, features)

    def get_or_compute(
        self,
        images: np.ndarray,
        compute: Callable[[np.ndarray], np.ndarray],
        digest: Optional[str] = None,
    ) -> Tuple[np.ndarray, bool]:
        """``(features, was_hit)`` for ``images`` — the one lookup protocol.

        Misses run ``compute(images)`` and insert the result under the
        content digest; every caller (gateway, cluster, micro-batcher)
        shares this sequence so digesting and insertion can't drift apart.
        Pass ``digest`` when the caller already hashed the images (e.g.
        for a prediction-result lookup) to avoid hashing twice.
        """
        if self._lru.budget_bytes == 0:
            # disabled cache: skip the digest, it could never hit anyway
            return compute(images), False
        if digest is None:
            digest = array_digest(images)
        features = self.get(digest)
        if features is not None:
            return features, True
        token = self.generation()
        features = compute(images)
        self.put_guarded(digest, features, token)
        return features, False

    def clear(self) -> None:
        """Drop everything — the serving listeners call this when the
        backing trunk changes (``LIBRARY_TASK`` version bump).  Inserts
        whose compute started before the clear are refused afterwards."""
        with self._generation_lock:
            self._generation += 1
            self._lru.clear()

    def stats(self):
        return self._lru.stats()

    def reset_stats(self) -> None:
        self._lru.reset_stats()

    def __len__(self) -> int:
        return len(self._lru)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TrunkFeatureCache({self._lru!r})"
