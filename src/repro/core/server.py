"""Client/server model delivery (paper Figure 1b).

In the paper's AIaaS picture the server does not run inference for the
client — it *ships the task-specific model* so the client can run it
on-device.  This module implements that protocol boundary:

* :class:`PoEServer` — holds the pool; answers :class:`ModelQueryRequest`
  with a :class:`ModelQueryResponse` whose payload is a self-contained,
  serialized ``M(Q)`` (library + the queried expert heads + a manifest).
* :class:`PoEClient` — reconstructs a runnable :class:`TaskSpecificModel`
  from the payload bytes, with no access to the server's pool object.

Payloads can be shipped as float32 or as affine-uint8 (``repro.compress``)
— the quantized transport roughly quarters the bytes on the wire at a
small accuracy cost, demonstrating the paper's point that distillation
and quantization compose.  A third codec, ``raw+zlib``, skips the npz/zip
container entirely: a flat binary header plus one zlib-compressed tensor
block, which serializes faster than ``np.savez_compressed`` at comparable
size (``repro serve-bench`` prints the comparison).  A fourth, ``zstd``,
uses the same flat container with zstandard block compression when the
``zstandard`` module is installed and **falls back to zlib compression**
(recorded in the header, so payloads always decode) when it is not —
environments without the optional dependency keep working.

Besides whole-model payloads, :func:`serialize_expert_heads` /
:func:`deserialize_expert_heads` ship *head-level* payloads (no library
trunk) — the wire format :mod:`repro.cluster` uses to fetch remote experts
from other shards before cross-shard consolidation.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

try:  # optional fast codec; the zstd transport degrades to zlib without it
    import zstandard as _zstandard
except ImportError:  # pragma: no cover - exercised via _compress_block tests
    _zstandard = None

from ..compress import dequantize_tensor, quantize_tensor
from ..compress.quantize import QuantizedTensor
from ..data.hierarchy import CompositeTask, PrimitiveTask
from ..models import BranchedSpecialistNet, WRNHead, WRNTrunk
from .pool import PoolOfExperts
from .query import TaskSpecificModel

__all__ = [
    "TRANSPORTS",
    "ModelQueryRequest",
    "ModelQueryResponse",
    "PoEServer",
    "PoEClient",
    "serialize_task_model",
    "deserialize_task_model",
    "serialize_expert_heads",
    "deserialize_expert_heads",
    "serialize_library_state",
    "deserialize_library_state",
    "RemoteExpert",
]

#: Supported payload encodings; serving layers validate against this.
#: ``float32``/``uint8`` use the npz container; ``raw+zlib`` and ``zstd``
#: are a flat binary header + one compressed float32 tensor block (zstd
#: falls back to zlib when the ``zstandard`` module is absent).
TRANSPORTS = ("float32", "uint8", "raw+zlib", "zstd")

#: Transports that use the flat (non-npz) container.
_FLAT_TRANSPORTS = ("raw+zlib", "zstd")

#: Magic prefix of the raw+zlib flat container (npz payloads start "PK").
_RAW_MAGIC = b"POEZ"


@dataclass(frozen=True)
class ModelQueryRequest:
    """A client's composite-task query."""

    tasks: Tuple[str, ...]
    transport: str = "float32"

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a query needs at least one primitive task")
        if self.transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")


@dataclass(frozen=True)
class ModelQueryResponse:
    """The served model: payload bytes + service metadata.

    ``tasks`` is the *canonical* (sorted) task order — the payload's head
    and logit layout.  ``cache_hit``/``coalesced`` report whether the bytes
    came from the payload cache or from another request's in-flight build.
    """

    payload: bytes
    tasks: Tuple[str, ...]
    transport: str
    build_seconds: float
    payload_bytes: int
    cache_hit: bool = False
    coalesced: bool = False


def _collect_arrays(
    states: Sequence[Tuple[str, Dict[str, np.ndarray]]], transport: str
) -> Tuple[Dict[str, np.ndarray], Dict[str, Tuple[float, float]]]:
    """Flatten prefixed state dicts into one array namespace (+ quant meta)."""
    arrays: Dict[str, np.ndarray] = {}
    quant_meta: Dict[str, Tuple[float, float]] = {}
    for prefix, state in states:
        for key, value in state.items():
            full = f"{prefix}/{key}"
            if transport == "uint8":
                qt = quantize_tensor(np.asarray(value))
                arrays[full] = qt.values.reshape(qt.shape)
                quant_meta[full] = (qt.scale, qt.zero_point)
            else:
                arrays[full] = np.asarray(value, dtype=np.float32)
    return arrays, quant_meta


def _compress_block(raw: bytes, transport: str) -> Tuple[str, bytes]:
    """Compress a flat tensor block, returning ``(codec_used, bytes)``.

    The ``zstd`` transport degrades gracefully to zlib when the optional
    ``zstandard`` module is missing; the codec actually used travels in
    the header so decoding never has to guess.
    """
    if transport == "zstd" and _zstandard is not None:
        return "zstd", _zstandard.ZstdCompressor(level=3).compress(raw)
    return "zlib", zlib.compress(raw, level=6)


def _decompress_block(block: bytes, codec: str) -> bytes:
    if codec == "zlib":
        return zlib.decompress(block)
    if codec == "zstd":
        if _zstandard is None:
            raise RuntimeError(
                "payload was compressed with zstd but the 'zstandard' module "
                "is not installed on this side"
            )
        return _zstandard.ZstdDecompressor().decompress(block)
    raise ValueError(f"unknown payload codec {codec!r}")


def _encode_payload(manifest: Dict, arrays: Dict[str, np.ndarray], transport: str) -> bytes:
    """Pack manifest + arrays into bytes for the given transport codec."""
    if transport in _FLAT_TRANSPORTS:
        index = []
        offset = 0
        chunks: List[bytes] = []
        for name, value in arrays.items():
            raw = np.ascontiguousarray(value).tobytes()
            index.append(
                {
                    "name": name,
                    "dtype": str(value.dtype),
                    "shape": list(value.shape),
                    "offset": offset,
                    "nbytes": len(raw),
                }
            )
            offset += len(raw)
            chunks.append(raw)
        codec, block = _compress_block(b"".join(chunks), transport)
        header = json.dumps(
            {"manifest": manifest, "arrays": index, "codec": codec}
        ).encode()
        return _RAW_MAGIC + struct.pack("<I", len(header)) + header + block
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        __manifest__=np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8),
        **arrays,
    )
    return buffer.getvalue()


def _decode_payload(payload: bytes) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Sniff the codec (flat magic vs. zip) and unpack manifest + arrays."""
    if payload[: len(_RAW_MAGIC)] == _RAW_MAGIC:
        (header_len,) = struct.unpack_from("<I", payload, len(_RAW_MAGIC))
        start = len(_RAW_MAGIC) + 4
        header = json.loads(payload[start : start + header_len].decode())
        block = _decompress_block(
            payload[start + header_len :], header.get("codec", "zlib")
        )
        arrays = {}
        for entry in header["arrays"]:
            raw = block[entry["offset"] : entry["offset"] + entry["nbytes"]]
            arrays[entry["name"]] = np.frombuffer(raw, dtype=entry["dtype"]).reshape(
                entry["shape"]
            )
        return header["manifest"], arrays
    with np.load(io.BytesIO(payload)) as archive:
        manifest = json.loads(bytes(archive["__manifest__"]).decode())
        arrays = {k: archive[k] for k in archive.files if k != "__manifest__"}
    return manifest, arrays


def _state_reader(manifest: Dict, arrays: Dict[str, np.ndarray]):
    """Closure rebuilding one prefixed state dict, dequantizing if needed."""
    quant = {k: tuple(v) for k, v in manifest.get("quant", {}).items()}

    def state_for(prefix: str) -> Dict[str, np.ndarray]:
        state = {}
        for full, value in arrays.items():
            if not full.startswith(prefix + "/"):
                continue
            key = full[len(prefix) + 1 :]
            if full in quant:
                scale, zero = quant[full]
                value = dequantize_tensor(
                    QuantizedTensor(value, scale, zero, value.shape)
                )
            state[key] = value
        return state

    return state_for


def _arch_manifest(config) -> Dict[str, object]:
    return {
        "depth": config.library_depth,
        "k_c": config.library_k,
        "k_s": config.expert_ks,
        "library_level": config.library_level,
    }


def _task_manifest(prim: PrimitiveTask) -> Dict[str, object]:
    return {
        "name": prim.name,
        "classes": list(prim.classes),
        "class_names": list(prim.class_names),
    }


def serialize_task_model(
    network: BranchedSpecialistNet,
    composite: CompositeTask,
    config,
    transport: str = "float32",
) -> bytes:
    """Pack a consolidated model into self-contained payload bytes.

    The payload holds the library trunk's state, each head's state (with a
    per-task prefix), and a JSON manifest describing the architecture so
    the client can rebuild the modules without the server's objects.
    """
    arrays, quant_meta = _collect_arrays(
        [("library", network.trunk.state_dict())]
        + [
            (f"expert:{name}", head.state_dict())
            for name, head in zip(network.head_names, network.heads)
        ],
        transport,
    )
    manifest = {
        "transport": transport,
        "tasks": [_task_manifest(prim) for prim in composite.tasks],
        "arch": _arch_manifest(config),
        "quant": {k: list(v) for k, v in quant_meta.items()},
    }
    return _encode_payload(manifest, arrays, transport)


def deserialize_task_model(payload: bytes) -> TaskSpecificModel:
    """Rebuild a runnable :class:`TaskSpecificModel` from payload bytes."""
    manifest, arrays = _decode_payload(payload)
    state_for = _state_reader(manifest, arrays)
    arch = manifest["arch"]
    trunk = WRNTrunk(
        int(arch["depth"]), float(arch["k_c"]), float(arch["k_s"]), int(arch["library_level"])
    )
    trunk.load_state_dict(state_for("library"))
    trunk.requires_grad_(False)

    primitives: List[PrimitiveTask] = []
    heads: List[Tuple[str, WRNHead]] = []
    for entry in manifest["tasks"]:
        prim = PrimitiveTask(
            entry["name"], tuple(entry["classes"]), tuple(entry["class_names"])
        )
        primitives.append(prim)
        head = WRNHead(
            int(arch["depth"]),
            float(arch["k_c"]),
            float(arch["k_s"]),
            num_classes=len(prim),
            library_level=int(arch["library_level"]),
        )
        head.load_state_dict(state_for(f"expert:{entry['name']}"))
        heads.append((prim.name, head))

    network = BranchedSpecialistNet(trunk, heads)
    network.eval()
    return TaskSpecificModel(network, CompositeTask(tuple(primitives)))


@dataclass(frozen=True)
class RemoteExpert:
    """One expert head fetched from another shard, plus its identity."""

    task: PrimitiveTask
    head: WRNHead
    version: int


def serialize_expert_heads(
    pool, names: Sequence[str], transport: str = "raw+zlib"
) -> bytes:
    """Pack expert *heads only* (no library trunk) for cross-shard fetch.

    ``pool`` is anything pool-shaped: ``experts``, ``hierarchy``, ``config``
    and ``expert_version`` are read.  The cluster tier calls this on the
    owning shard and rebuilds the heads with
    :func:`deserialize_expert_heads` on the consolidating shard; with a
    float-exact transport (``float32``/``raw+zlib``) the round trip is
    bit-identical, so cross-shard consolidation matches a single pool.
    """
    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    missing = [n for n in names if n not in pool.experts]
    if missing:
        raise KeyError(
            f"no expert extracted for primitive task(s) {missing}; "
            f"available: {sorted(pool.experts)}"
        )
    arrays, quant_meta = _collect_arrays(
        [(f"expert:{name}", pool.experts[name].state_dict()) for name in names],
        transport,
    )
    manifest = {
        "kind": "expert_heads",
        "transport": transport,
        "tasks": [_task_manifest(pool.hierarchy.task(name)) for name in names],
        "versions": {name: pool.expert_version(name) for name in names},
        "arch": _arch_manifest(pool.config),
        "quant": {k: list(v) for k, v in quant_meta.items()},
    }
    return _encode_payload(manifest, arrays, transport)


def deserialize_expert_heads(payload: bytes) -> Dict[str, RemoteExpert]:
    """Rebuild fetched expert heads, keyed by primitive-task name."""
    manifest, arrays = _decode_payload(payload)
    if manifest.get("kind") != "expert_heads":
        raise ValueError("payload is not an expert-heads payload")
    state_for = _state_reader(manifest, arrays)
    arch = manifest["arch"]
    out: Dict[str, RemoteExpert] = {}
    for entry in manifest["tasks"]:
        prim = PrimitiveTask(
            entry["name"], tuple(entry["classes"]), tuple(entry["class_names"])
        )
        head = WRNHead(
            int(arch["depth"]),
            float(arch["k_c"]),
            float(arch["k_s"]),
            num_classes=len(prim),
            library_level=int(arch["library_level"]),
        )
        head.load_state_dict(state_for(f"expert:{prim.name}"))
        out[prim.name] = RemoteExpert(
            task=prim, head=head, version=int(manifest["versions"][prim.name])
        )
    return out


def serialize_library_state(pool, transport: str = "raw+zlib") -> bytes:
    """Pack the shared library trunk (no heads) for a REFRESH_LIBRARY push.

    The wire complement of :func:`serialize_expert_heads`: when the pool
    re-extracts its library, networked workers need the new trunk weights
    plus the library sentinel version so their view pools invalidate
    exactly like an in-process shard's would.  Only the trunk travels —
    serving never touches ``library_student``, so the distillation-side
    student stays behind.
    """
    from .pool import LIBRARY_TASK

    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    if pool.library is None:
        raise ValueError("pool has no library trunk to serialize")
    arrays, quant_meta = _collect_arrays(
        [("library", pool.library.state_dict())], transport
    )
    manifest = {
        "kind": "library_state",
        "transport": transport,
        "version": int(pool.expert_version(LIBRARY_TASK)),
        "arch": _arch_manifest(pool.config),
        "quant": {k: list(v) for k, v in quant_meta.items()},
    }
    return _encode_payload(manifest, arrays, transport)


def deserialize_library_state(payload: bytes) -> Tuple[WRNTrunk, int]:
    """Rebuild a pushed library trunk; returns ``(trunk, version)``."""
    manifest, arrays = _decode_payload(payload)
    if manifest.get("kind") != "library_state":
        raise ValueError("payload is not a library-state payload")
    state_for = _state_reader(manifest, arrays)
    arch = manifest["arch"]
    trunk = WRNTrunk(
        int(arch["depth"]), float(arch["k_c"]), float(arch["k_s"]), int(arch["library_level"])
    )
    trunk.load_state_dict(state_for("library"))
    trunk.requires_grad_(False)
    return trunk, int(manifest["version"])


class PoEServer:
    """Server side of the realtime model-delivery service.

    A thin shim over :class:`repro.serving.ServingGateway`: queries are
    canonicalized, repeated shipments of the same model are served from a
    byte-budgeted payload cache keyed on ``(canonical tasks, transport)``
    (skipping ``np.savez_compressed``, the dominant serving cost), and
    concurrent duplicates coalesce onto a single in-flight build.  Pass a
    preconfigured gateway to share caches/metrics across servers or to
    tune budgets; by default each server owns one.
    """

    def __init__(self, pool: PoolOfExperts, gateway=None) -> None:
        from ..serving.gateway import ServingGateway

        self.pool = pool
        self.gateway = gateway if gateway is not None else ServingGateway(pool)
        self.served: List[ModelQueryResponse] = []

    def available_tasks(self) -> Tuple[str, ...]:
        return self.gateway.available_tasks()

    def handle(self, request: ModelQueryRequest) -> ModelQueryResponse:
        """Serve the queried model (train-free, cached, coalesced)."""
        served = self.gateway.serve(request.tasks, transport=request.transport)
        response = ModelQueryResponse(
            payload=served.payload,
            tasks=served.tasks,
            transport=served.transport,
            build_seconds=served.service_seconds,
            payload_bytes=served.payload_bytes,
            cache_hit=served.payload_cache_hit,
            coalesced=served.coalesced,
        )
        self.served.append(response)
        return response


class PoEClient:
    """Client side: requests a model and materialises it locally."""

    def __init__(self, server: PoEServer) -> None:
        self.server = server

    def request_model(
        self, tasks: Sequence[str], transport: str = "float32"
    ) -> TaskSpecificModel:
        response = self.server.handle(
            ModelQueryRequest(tasks=tuple(tasks), transport=transport)
        )
        return deserialize_task_model(response.payload)
