"""Client/server model delivery (paper Figure 1b).

In the paper's AIaaS picture the server does not run inference for the
client — it *ships the task-specific model* so the client can run it
on-device.  This module implements that protocol boundary:

* :class:`PoEServer` — holds the pool; answers :class:`ModelQueryRequest`
  with a :class:`ModelQueryResponse` whose payload is a self-contained,
  serialized ``M(Q)`` (library + the queried expert heads + a manifest).
* :class:`PoEClient` — reconstructs a runnable :class:`TaskSpecificModel`
  from the payload bytes, with no access to the server's pool object.

Payloads can be shipped as float32 or as affine-uint8 (``repro.compress``)
— the quantized transport roughly quarters the bytes on the wire at a
small accuracy cost, demonstrating the paper's point that distillation
and quantization compose.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..compress import dequantize_tensor, quantize_tensor
from ..data.hierarchy import CompositeTask, PrimitiveTask
from ..models import BranchedSpecialistNet, WRNHead, WRNTrunk
from .pool import PoolOfExperts
from .query import TaskSpecificModel

__all__ = [
    "TRANSPORTS",
    "ModelQueryRequest",
    "ModelQueryResponse",
    "PoEServer",
    "PoEClient",
    "serialize_task_model",
    "deserialize_task_model",
]

#: Supported payload encodings; serving layers validate against this.
TRANSPORTS = ("float32", "uint8")


@dataclass(frozen=True)
class ModelQueryRequest:
    """A client's composite-task query."""

    tasks: Tuple[str, ...]
    transport: str = "float32"

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a query needs at least one primitive task")
        if self.transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")


@dataclass(frozen=True)
class ModelQueryResponse:
    """The served model: payload bytes + service metadata.

    ``tasks`` is the *canonical* (sorted) task order — the payload's head
    and logit layout.  ``cache_hit``/``coalesced`` report whether the bytes
    came from the payload cache or from another request's in-flight build.
    """

    payload: bytes
    tasks: Tuple[str, ...]
    transport: str
    build_seconds: float
    payload_bytes: int
    cache_hit: bool = False
    coalesced: bool = False


def serialize_task_model(
    network: BranchedSpecialistNet,
    composite: CompositeTask,
    config,
    transport: str = "float32",
) -> bytes:
    """Pack a consolidated model into self-contained npz bytes.

    The archive holds the library trunk's state, each head's state (with a
    per-task prefix), and a JSON manifest describing the architecture so
    the client can rebuild the modules without the server's objects.
    """
    arrays: Dict[str, np.ndarray] = {}
    quant_meta: Dict[str, Tuple[float, float]] = {}

    def put(prefix: str, state: Dict[str, np.ndarray]) -> None:
        for key, value in state.items():
            full = f"{prefix}/{key}"
            if transport == "uint8":
                qt = quantize_tensor(np.asarray(value))
                arrays[full] = qt.values.reshape(qt.shape)
                quant_meta[full] = (qt.scale, qt.zero_point)
            else:
                arrays[full] = np.asarray(value)

    put("library", network.trunk.state_dict())
    for name, head in zip(network.head_names, network.heads):
        put(f"expert:{name}", head.state_dict())

    manifest = {
        "transport": transport,
        "tasks": [
            {
                "name": prim.name,
                "classes": list(prim.classes),
                "class_names": list(prim.class_names),
            }
            for prim in composite.tasks
        ],
        "arch": {
            "depth": config.library_depth,
            "k_c": config.library_k,
            "k_s": config.expert_ks,
            "library_level": config.library_level,
        },
        "quant": {k: list(v) for k, v in quant_meta.items()},
    }
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        __manifest__=np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8),
        **arrays,
    )
    return buffer.getvalue()


def deserialize_task_model(payload: bytes) -> TaskSpecificModel:
    """Rebuild a runnable :class:`TaskSpecificModel` from payload bytes."""
    with np.load(io.BytesIO(payload)) as archive:
        manifest = json.loads(bytes(archive["__manifest__"]).decode())
        arrays = {k: archive[k] for k in archive.files if k != "__manifest__"}

    quant = {k: tuple(v) for k, v in manifest["quant"].items()}

    def state_for(prefix: str) -> Dict[str, np.ndarray]:
        state = {}
        for full, value in arrays.items():
            if not full.startswith(prefix + "/"):
                continue
            key = full[len(prefix) + 1 :]
            if full in quant:
                scale, zero = quant[full]
                from ..compress.quantize import QuantizedTensor

                value = dequantize_tensor(
                    QuantizedTensor(value, scale, zero, value.shape)
                )
            state[key] = value
        return state

    arch = manifest["arch"]
    trunk = WRNTrunk(
        int(arch["depth"]), float(arch["k_c"]), float(arch["k_s"]), int(arch["library_level"])
    )
    trunk.load_state_dict(state_for("library"))
    trunk.requires_grad_(False)

    primitives: List[PrimitiveTask] = []
    heads: List[Tuple[str, WRNHead]] = []
    for entry in manifest["tasks"]:
        prim = PrimitiveTask(
            entry["name"], tuple(entry["classes"]), tuple(entry["class_names"])
        )
        primitives.append(prim)
        head = WRNHead(
            int(arch["depth"]),
            float(arch["k_c"]),
            float(arch["k_s"]),
            num_classes=len(prim),
            library_level=int(arch["library_level"]),
        )
        head.load_state_dict(state_for(f"expert:{entry['name']}"))
        heads.append((prim.name, head))

    network = BranchedSpecialistNet(trunk, heads)
    network.eval()
    return TaskSpecificModel(network, CompositeTask(tuple(primitives)))


class PoEServer:
    """Server side of the realtime model-delivery service.

    A thin shim over :class:`repro.serving.ServingGateway`: queries are
    canonicalized, repeated shipments of the same model are served from a
    byte-budgeted payload cache keyed on ``(canonical tasks, transport)``
    (skipping ``np.savez_compressed``, the dominant serving cost), and
    concurrent duplicates coalesce onto a single in-flight build.  Pass a
    preconfigured gateway to share caches/metrics across servers or to
    tune budgets; by default each server owns one.
    """

    def __init__(self, pool: PoolOfExperts, gateway=None) -> None:
        from ..serving.gateway import ServingGateway

        self.pool = pool
        self.gateway = gateway if gateway is not None else ServingGateway(pool)
        self.served: List[ModelQueryResponse] = []

    def available_tasks(self) -> Tuple[str, ...]:
        return self.gateway.available_tasks()

    def handle(self, request: ModelQueryRequest) -> ModelQueryResponse:
        """Serve the queried model (train-free, cached, coalesced)."""
        served = self.gateway.serve(request.tasks, transport=request.transport)
        response = ModelQueryResponse(
            payload=served.payload,
            tasks=served.tasks,
            transport=served.transport,
            build_seconds=served.service_seconds,
            payload_bytes=served.payload_bytes,
            cache_hit=served.payload_cache_hit,
            coalesced=served.coalesced,
        )
        self.served.append(response)
        return response


class PoEClient:
    """Client side: requests a model and materialises it locally."""

    def __init__(self, server: PoEServer) -> None:
        self.server = server

    def request_model(
        self, tasks: Sequence[str], transport: str = "float32"
    ) -> TaskSpecificModel:
        response = self.server.handle(
            ModelQueryRequest(tasks=tuple(tasks), transport=transport)
        )
        return deserialize_task_model(response.payload)
