"""Confidence analysis of specialized models (paper §5.2, Figure 5).

A *properly confident* expert assigns low maximum probability to
out-of-distribution inputs — images of classes outside its primitive task.
Scratch/Transfer experts are overconfident (mode ≥ 0.9 on OOD inputs);
CKD experts are not (mode 0.3-0.4).  These tools compute the histograms and
summary statistics that reproduce that figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..data.dataset import ArrayDataset
from ..data.hierarchy import CompositeTask, PrimitiveTask
from ..distill.caches import batched_forward
from ..nn import Module
from ..tensor import Tensor, no_grad
from ..tensor.functional import softmax

__all__ = ["ConfidenceProfile", "max_confidences", "ood_confidence_profile"]

TaskLike = Union[PrimitiveTask, CompositeTask]


@dataclass(frozen=True)
class ConfidenceProfile:
    """Histogram + summary stats of maximum predicted probabilities."""

    histogram: np.ndarray  # relative frequency per bin
    bin_edges: np.ndarray
    mean: float
    median: float
    overconfident_rate: float  # fraction of samples with max prob > 0.9

    @property
    def mode_bin(self) -> Tuple[float, float]:
        """The (lo, hi) edges of the most frequent confidence bin."""
        i = int(self.histogram.argmax())
        return float(self.bin_edges[i]), float(self.bin_edges[i + 1])


def max_confidences(model: Module, images: np.ndarray, batch_size: int = 512) -> np.ndarray:
    """Highest class probability per sample (the paper's 'confidence')."""
    logits = batched_forward(model, images, batch_size)
    with no_grad():
        probs = softmax(Tensor(logits)).numpy()
    return probs.max(axis=1)


def ood_confidence_profile(
    model: Module,
    dataset: ArrayDataset,
    task: TaskLike,
    bins: int = 10,
    batch_size: int = 512,
) -> ConfidenceProfile:
    """Confidence profile of a specialist on *out-of-distribution* samples.

    OOD = samples of ``dataset`` whose (global) label lies outside ``task``.
    Any prediction on them is necessarily wrong — the model lacks the true
    class — so what matters is *how confident* the wrong answers are.
    """
    classes = np.asarray(task.classes, dtype=np.int64)
    mask = ~np.isin(dataset.labels, classes)
    if not mask.any():
        raise ValueError("dataset has no out-of-distribution samples for this task")
    confidences = max_confidences(model, dataset.images[mask], batch_size)
    hist, edges = np.histogram(confidences, bins=bins, range=(0.0, 1.0))
    hist = hist.astype(np.float64)
    hist /= hist.sum()
    return ConfidenceProfile(
        histogram=hist,
        bin_edges=edges,
        mean=float(confidences.mean()),
        median=float(np.median(confidences)),
        overconfident_rate=float((confidences > 0.9).mean()),
    )
