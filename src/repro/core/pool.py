"""Pool of Experts — the preprocessing phase (paper §4.1).

``PoolOfExperts.preprocess`` turns an oracle network into:

1. a **library**: the trunk (conv1-conv3) of a small generic student
   distilled from the oracle with standard KD (Eq. 1), then frozen; and
2. one tiny **expert head** per primitive task, extracted with conditional
   knowledge distillation (Eq. 2) on *all* training data while sharing the
   frozen library trunk.

The resulting pool is the queryable "neural database": the service phase
(:meth:`PoolOfExperts.consolidate`) assembles any composite task's model
from it in microseconds, with no training.
"""

from __future__ import annotations

import weakref
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.dataset import ArrayDataset
from ..data.hierarchy import ClassHierarchy, CompositeTask, PrimitiveTask
from ..distill import (
    CKDSettings,
    History,
    TrainConfig,
    batched_forward,
    distill_ckd_head,
    distill_kd,
)
from ..models import BranchedSpecialistNet, WideResNet, WRNHead, WRNTrunk
from ..nn import Module
from .features import array_digest

__all__ = ["LIBRARY_TASK", "PoEConfig", "PoolOfExperts", "expert_init_seed"]

TaskRef = Union[str, PrimitiveTask]

#: Sentinel "task name" used in version-listener notifications when the
#: *library trunk* is (re-)extracted.  Serving layers treat it as a
#: whole-pool invalidation: every consolidated model and every cached
#: trunk feature was computed against the old trunk.
LIBRARY_TASK = "__library__"


def expert_init_seed(config_seed: int, task_name: str) -> int:
    """Deterministic RNG seed for one expert head's initialization.

    Uses crc32, not builtin ``hash()``: the latter is salted per process
    (``PYTHONHASHSEED``), which would make expert extraction
    nondeterministic across runs.
    """
    return config_seed + 1 + zlib.crc32(task_name.encode("utf-8")) % 10_000


@dataclass(frozen=True)
class PoEConfig:
    """Hyperparameters of the preprocessing phase.

    ``library_depth``/``library_k`` define the student architecture whose
    trunk becomes the library; ``expert_ks`` is the conv4 widening factor of
    each expert (the paper's 0.25).  ``library_level`` is ℓ — how many
    convolution groups the library keeps (3 = conv1-conv3, the paper's
    choice).
    """

    library_depth: int = 10
    library_k: float = 1.0
    expert_ks: float = 0.25
    library_level: int = 3
    temperature: float = 4.0
    alpha: float = 0.3
    scale_norm: str = "l1"
    library_train: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=10))
    expert_train: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=8))
    seed: int = 0

    def ckd_settings(self) -> CKDSettings:
        return CKDSettings(
            temperature=self.temperature, alpha=self.alpha, scale_norm=self.scale_norm
        )


class PoolOfExperts:
    """The PoE framework: library + pool of experts + train-free assembly.

    Parameters
    ----------
    oracle:
        The pretrained generic model ``M(C)`` (any Module mapping images to
        ``hierarchy.num_classes`` logits).
    hierarchy:
        The class hierarchy defining the primitive tasks.
    config:
        Preprocessing hyperparameters.
    """

    def __init__(
        self,
        oracle: Module,
        hierarchy: ClassHierarchy,
        config: PoEConfig = PoEConfig(),
    ) -> None:
        self.oracle = oracle
        self.hierarchy = hierarchy
        self.config = config
        self.library: Optional[WRNTrunk] = None
        self.library_student: Optional[WideResNet] = None
        self.experts: Dict[str, WRNHead] = {}
        self.histories: Dict[str, History] = {}
        # memos key on a content digest; the weakrefs are an identity fast
        # path that skips re-hashing the (possibly huge) training array on
        # repeat calls without pinning it in memory for the pool's life
        self._oracle_logits: Optional[np.ndarray] = None
        self._oracle_digest: Optional[str] = None
        self._oracle_images: Optional["weakref.ref[np.ndarray]"] = None
        self._library_features: Optional[np.ndarray] = None
        self._features_digest: Optional[str] = None
        self._features_images: Optional["weakref.ref[np.ndarray]"] = None
        self._versions: Dict[str, int] = {}
        self._listeners: List[Callable[[str, int], None]] = []

    # ------------------------------------------------------------------
    # Expert versioning + invalidation
    # ------------------------------------------------------------------
    def expert_version(self, name: str) -> int:
        """Monotonic version of one expert; 0 before first extraction."""
        return self._versions.get(name, 0)

    def add_listener(self, callback: Callable[[str, int], None]) -> None:
        """Register ``callback(task_name, new_version)`` for expert updates.

        Serving layers use this to drop dependent cache entries the moment
        an expert is re-extracted, instead of waiting for a TTL to expire.
        """
        if callback not in self._listeners:
            self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[str, int], None]) -> None:
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def _set_version(self, name: str, version: int) -> None:
        self._versions[name] = version
        for callback in list(self._listeners):
            callback(name, version)

    def _bump_version(self, name: str) -> None:
        self._set_version(name, self._versions.get(name, 0) + 1)

    def attach_expert(
        self, task: TaskRef, head: WRNHead, version: Optional[int] = None
    ) -> None:
        """Install an already-trained expert head without training.

        Used by the cluster tier to place experts on shard views (and to
        migrate them during rebalance) and by incremental-addition flows.
        Notifies listeners, so dependent cache entries invalidate.
        """
        task = self._resolve(task)
        self.experts[task.name] = head
        self._set_version(
            task.name, version if version is not None else self.expert_version(task.name) + 1
        )

    def detach_expert(self, task: TaskRef) -> Optional[WRNHead]:
        """Remove an expert (if present), notifying listeners."""
        name = self._resolve(task).name
        head = self.experts.pop(name, None)
        if head is not None:
            self._bump_version(name)
        return head

    def subset(self, names: Iterable[str]) -> "PoolOfExperts":
        """A view pool holding the shared library plus a subset of experts.

        Everything is shared by reference (oracle, hierarchy, library,
        heads), so a view costs a few dict entries — this is how
        :mod:`repro.cluster` models one shard's slice of the pool.
        """
        if self.library is None:
            raise RuntimeError("pool is empty: run preprocess() first")
        view = PoolOfExperts(self.oracle, self.hierarchy, self.config)
        view.library = self.library
        view.library_student = self.library_student
        for name in names:
            if name not in self.experts:
                raise KeyError(
                    f"no expert extracted for primitive task {name!r}; "
                    f"available: {sorted(self.experts)}"
                )
            view.attach_expert(name, self.experts[name], self.expert_version(name))
        return view

    # ------------------------------------------------------------------
    # Preprocessing phase
    # ------------------------------------------------------------------
    def extract_library(
        self,
        images: np.ndarray,
        eval_fn=None,
        student: Optional[WideResNet] = None,
    ) -> History:
        """Distill the oracle into a small generic student; keep its trunk.

        The trunk (conv1 … conv_ℓ) becomes the frozen library component
        shared by all experts; the student's head is kept around as the
        "library model" reported in Table 1.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if student is None:
            student = WideResNet(
                cfg.library_depth,
                cfg.library_k,
                cfg.library_k,
                self.hierarchy.num_classes,
                library_level=cfg.library_level,
                rng=rng,
            )
        history = distill_kd(
            self._oracle_logits_for(images),
            student,
            images,
            config=cfg.library_train,
            temperature=cfg.temperature,
            eval_fn=eval_fn,
        )
        self.library_student = student
        self.library = student.trunk
        self.library.requires_grad_(False)
        self.library.eval()
        self.histories["library"] = history
        # invalidate any cached features: the trunk they came from is gone
        self._library_features = None
        self._features_digest = None
        self._features_images = None
        # and tell serving listeners the trunk itself changed — dependent
        # models and trunk-feature caches must drop everything
        self._bump_version(LIBRARY_TASK)
        return history

    def extract_expert(
        self,
        task: TaskRef,
        images: np.ndarray,
        eval_fn=None,
        settings: Optional[CKDSettings] = None,
        train_config: Optional[TrainConfig] = None,
    ) -> History:
        """Extract one expert head for ``task`` with CKD (library frozen)."""
        if self.library is None:
            raise RuntimeError("extract_library() must run before extract_expert()")
        task = self._resolve(task)
        cfg = self.config
        rng = np.random.default_rng(expert_init_seed(cfg.seed, task.name))
        head = WRNHead(
            cfg.library_depth,
            cfg.library_k,
            cfg.expert_ks,
            num_classes=len(task),
            library_level=cfg.library_level,
            rng=rng,
        )
        history = distill_ckd_head(
            self._oracle_logits_for(images),
            self.library,
            head,
            images,
            class_ids=task.classes,
            config=train_config or cfg.expert_train,
            settings=settings or cfg.ckd_settings(),
            eval_fn=eval_fn,
            features=self._features_for(images),
        )
        self.experts[task.name] = head
        self.histories[f"expert/{task.name}"] = history
        self._bump_version(task.name)
        return history

    def preprocess(
        self,
        dataset: ArrayDataset,
        tasks: Optional[Iterable[TaskRef]] = None,
        eval_fns: Optional[Dict[str, object]] = None,
    ) -> "PoolOfExperts":
        """Run the full preprocessing phase: library, then every expert."""
        images = dataset.images
        eval_fns = eval_fns or {}
        self.extract_library(images, eval_fn=eval_fns.get("library"))
        for task in tasks if tasks is not None else self.hierarchy.primitive_tasks():
            task = self._resolve(task)
            self.extract_expert(task, images, eval_fn=eval_fns.get(task.name))
        return self

    # ------------------------------------------------------------------
    # Service phase
    # ------------------------------------------------------------------
    def consolidate(
        self, query: Union[CompositeTask, Sequence[str]]
    ) -> Tuple[BranchedSpecialistNet, CompositeTask]:
        """Train-free knowledge consolidation (paper §4.2).

        Assembles the branched task-specific model for a composite task by
        *reference* — the library trunk and the expert heads are shared with
        the pool, no weights are copied and nothing is trained.  Returns the
        model together with the resolved :class:`CompositeTask` that defines
        its output layout.
        """
        if self.library is None:
            raise RuntimeError("pool is empty: run preprocess() first")
        composite = (
            query
            if isinstance(query, CompositeTask)
            else self.hierarchy.composite(query)
        )
        heads: List[Tuple[str, WRNHead]] = []
        for task in composite.tasks:
            try:
                heads.append((task.name, self.experts[task.name]))
            except KeyError:
                raise KeyError(
                    f"no expert extracted for primitive task {task.name!r}; "
                    f"available: {sorted(self.experts)}"
                ) from None
        model = BranchedSpecialistNet(self.library, heads)
        model.eval()
        return model, composite

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(self, task: TaskRef) -> PrimitiveTask:
        return task if isinstance(task, PrimitiveTask) else self.hierarchy.task(task)

    def _oracle_logits_for(self, images: np.ndarray) -> np.ndarray:
        """Oracle logits over the training images, memoized by content.

        The memo key is a digest of the image bytes
        (:func:`~repro.core.features.array_digest`), not the row count: a
        different batch that happens to have the same ``shape[0]`` must
        recompute, never silently reuse the previous batch's logits.  An
        identity check short-circuits the hash for the common case of the
        same training array passed once per expert extraction — which
        assumes callers never mutate that array in place between calls
        (pass a modified copy instead, as the data pipeline does).
        """
        if self._oracle_logits is not None and self._oracle_images is not None:
            if images is self._oracle_images():
                return self._oracle_logits
        digest = array_digest(images)
        if self._oracle_logits is None or self._oracle_digest != digest:
            self._oracle_logits = batched_forward(self.oracle, images)
            self._oracle_digest = digest
        self._oracle_images = weakref.ref(images)
        return self._oracle_logits

    def _features_for(self, images: np.ndarray) -> np.ndarray:
        """Frozen-library features, memoized by content digest (see above)."""
        if self.library is None:
            raise RuntimeError("library not extracted yet")
        if self._library_features is not None and self._features_images is not None:
            if images is self._features_images():
                return self._library_features
        digest = array_digest(images)
        if self._library_features is None or self._features_digest != digest:
            self._library_features = batched_forward(self.library, images)
            self._features_digest = digest
        self._features_images = weakref.ref(images)
        return self._library_features

    def expert_names(self) -> Tuple[str, ...]:
        return tuple(self.experts)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PoolOfExperts(experts={sorted(self.experts)}, "
            f"library={'ready' if self.library is not None else 'missing'})"
        )
