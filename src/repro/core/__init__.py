"""Pool of Experts — the paper's core contribution.

* :class:`~repro.core.pool.PoolOfExperts` — preprocessing phase (library
  extraction by KD, expert extraction by CKD) and train-free consolidation.
* :class:`~repro.core.query.ModelQueryEngine` — the realtime service phase.
* :class:`~repro.core.storage.ExpertStore` — persistence + Table 4 volumes.
* :mod:`~repro.core.confidence` — Figure 5 overconfidence analysis.
"""

from .confidence import ConfidenceProfile, max_confidences, ood_confidence_profile
from .features import TrunkFeatureCache, array_digest
from .pool import PoEConfig, PoolOfExperts
from .query import ModelQueryEngine, QueryRecord, TaskSpecificModel
from .server import (
    TRANSPORTS,
    ModelQueryRequest,
    ModelQueryResponse,
    PoEClient,
    PoEServer,
    RemoteExpert,
    deserialize_expert_heads,
    deserialize_task_model,
    serialize_expert_heads,
    serialize_task_model,
)
from .storage import ExpertStore, VolumeReport, estimate_all_specialists_volume

__all__ = [
    "PoolOfExperts",
    "PoEConfig",
    "TrunkFeatureCache",
    "array_digest",
    "ModelQueryEngine",
    "TaskSpecificModel",
    "QueryRecord",
    "ExpertStore",
    "VolumeReport",
    "estimate_all_specialists_volume",
    "ConfidenceProfile",
    "max_confidences",
    "ood_confidence_profile",
    "PoEServer",
    "PoEClient",
    "ModelQueryRequest",
    "ModelQueryResponse",
    "serialize_task_model",
    "deserialize_task_model",
    "serialize_expert_heads",
    "deserialize_expert_heads",
    "RemoteExpert",
    "TRANSPORTS",
]
