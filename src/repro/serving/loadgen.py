"""Workload generation and load drivers for the serving gateway.

:class:`ZipfianWorkload` samples composite-task queries with Zipf-skewed
popularity over a finite universe of distinct task combinations — real
query traffic is heavy-tailed (a handful of composite tasks dominate), and
skew is exactly what a cache tier exploits, so benchmarks that draw
uniformly would under-report both hit rates and coalescing.

Two drivers exercise a gateway:

* :func:`run_closed_loop` — N client threads, each issuing its next query
  as soon as the previous one returns.  Measures sustained throughput
  under full back-pressure.
* :func:`run_open_loop` — queries submitted on a fixed schedule
  (``rate_qps``) regardless of completion, the standard way to observe
  tail latency under a target arrival rate; latency is measured from the
  *scheduled* start, so queue build-up shows up in p99 instead of being
  hidden by coordinated omission.

Both return a :class:`LoadReport` with throughput, latency percentiles and
cache/coalescing counters.

The drivers are duck-typed over any serving front end exposing
``serve``/``submit``, ``cache_stats()`` (with ``payload``/``model`` tiers)
and ``metrics.counter`` — a single :class:`~repro.serving.ServingGateway`
or a whole :class:`~repro.cluster.ClusterGateway` interchangeably, so the
same workload measures one process and a sharded cluster.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .metrics import percentile

__all__ = ["ZipfianWorkload", "LoadReport", "run_closed_loop", "run_open_loop"]

Query = Tuple[Tuple[str, ...], str]


class ZipfianWorkload:
    """Zipf-skewed sampler over distinct composite-task queries.

    The universe holds up to ``universe_size`` distinct task combinations of
    size 1..``max_query_size``, drawn by seeded shuffle *per size* and
    interleaved round-robin across sizes, so every size is represented
    whenever ``universe_size >= max_query_size``.  Popularity rank follows
    that order, and query ``r`` is sampled with probability proportional to
    ``1 / r**skew``.  Transports are drawn uniformly from ``transports``.
    """

    def __init__(
        self,
        task_names: Sequence[str],
        max_query_size: int = 3,
        skew: float = 1.1,
        universe_size: int = 64,
        transports: Sequence[str] = ("float32",),
        seed: int = 0,
    ) -> None:
        if not task_names:
            raise ValueError("workload needs at least one primitive task")
        if not 1 <= max_query_size <= len(task_names):
            raise ValueError("max_query_size must be within [1, len(task_names)]")
        if skew < 0:
            raise ValueError("skew must be >= 0")
        if universe_size < 1:
            raise ValueError("universe_size must be >= 1")
        if not transports:
            raise ValueError("workload needs at least one transport")
        names = tuple(sorted(task_names))
        rng = np.random.default_rng(seed)
        per_size: List[List[Tuple[str, ...]]] = []
        for size in range(1, max_query_size + 1):
            combos = list(itertools.combinations(names, size))
            rng.shuffle(combos)
            per_size.append(combos)
        interleaved: List[Tuple[str, ...]] = []
        for round_combos in itertools.zip_longest(*per_size):
            interleaved.extend(c for c in round_combos if c is not None)
        self.queries: Tuple[Tuple[str, ...], ...] = tuple(interleaved[:universe_size])
        self.transports = tuple(transports)
        self.skew = skew
        self.seed = seed
        ranks = np.arange(1, len(self.queries) + 1, dtype=np.float64)
        weights = ranks ** -skew
        self._probs = weights / weights.sum()

    def popularity(self) -> List[Tuple[Tuple[str, ...], float]]:
        """Queries with their sampling probability, most popular first."""
        return list(zip(self.queries, self._probs))

    def sample(self, n: int, seed: Optional[int] = None) -> List[Query]:
        """Draw ``n`` queries deterministically for the given seed."""
        rng = np.random.default_rng(self.seed + 1 if seed is None else seed)
        picks = rng.choice(len(self.queries), size=n, p=self._probs)
        transports = rng.integers(0, len(self.transports), size=n)
        return [
            (self.queries[q], self.transports[t]) for q, t in zip(picks, transports)
        ]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ZipfianWorkload(universe={len(self.queries)}, skew={self.skew}, "
            f"transports={self.transports})"
        )


@dataclass
class LoadReport:
    """Outcome of one load-driver run against a gateway."""

    mode: str
    requests: int
    errors: int
    elapsed_seconds: float
    throughput_qps: float
    latency: Dict[str, float]
    coalesced: int
    payload_hit_rate: float
    model_hit_rate: float
    offered_qps: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"{self.mode} load: {self.requests} requests in "
            f"{self.elapsed_seconds:.2f}s -> {self.throughput_qps:,.0f} qps"
            + (f" (offered {self.offered_qps:,.0f} qps)" if self.offered_qps else ""),
            "  latency: "
            + "  ".join(
                f"{k}={1e3 * self.latency[k]:.3f}ms"
                for k in ("mean", "p50", "p95", "p99")
                if k in self.latency
            ),
            f"  cache: payload_hit_rate={self.payload_hit_rate:.1%} "
            f"model_hit_rate={self.model_hit_rate:.1%} coalesced={self.coalesced}",
        ]
        if self.errors:
            lines.append(f"  errors: {self.errors}")
        return "\n".join(lines)


def _delta_hit_rate(before, after) -> float:
    """Hit rate over the lookups made between two CacheStats snapshots."""
    hits = after.hits - before.hits
    lookups = hits + (after.misses - before.misses)
    return hits / lookups if lookups else 0.0


def _summarize(
    gateway,
    mode: str,
    latencies: List[float],
    errors: int,
    elapsed: float,
    stats_before,
    coalesced_before: int,
    offered_qps: Optional[float] = None,
) -> LoadReport:
    stats = gateway.cache_stats()
    summary = (
        {
            "mean": float(np.mean(latencies)),
            "p50": percentile(latencies, 50),
            "p95": percentile(latencies, 95),
            "p99": percentile(latencies, 99),
            "max": max(latencies),
        }
        if latencies
        else {}
    )
    return LoadReport(
        mode=mode,
        requests=len(latencies),
        errors=errors,
        elapsed_seconds=elapsed,
        throughput_qps=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency=summary,
        coalesced=gateway.metrics.counter("coalesced") - coalesced_before,
        payload_hit_rate=_delta_hit_rate(stats_before["payload"], stats["payload"]),
        model_hit_rate=_delta_hit_rate(stats_before["model"], stats["model"]),
        offered_qps=offered_qps,
    )


def run_closed_loop(
    gateway,
    workload: ZipfianWorkload,
    clients: int = 4,
    requests_per_client: int = 50,
    seed: int = 0,
    via_submit: bool = False,
) -> LoadReport:
    """Drive the gateway with ``clients`` think-time-free client threads.

    With ``via_submit`` each request goes through ``gateway.submit`` and
    blocks on the future, so concurrency is bounded by the *gateway's*
    worker budget rather than the client thread count — that is how the
    cluster scaling benchmark measures serving capacity per shard count
    instead of load-generator parallelism.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    plans = [
        workload.sample(requests_per_client, seed=seed + 7919 * i) for i in range(clients)
    ]
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)
    stats_before = gateway.cache_stats()
    coalesced_before = gateway.metrics.counter("coalesced")

    def client(idx: int) -> None:
        barrier.wait()
        for tasks, transport in plans[idx]:
            start = perf_counter()
            try:
                if via_submit:
                    gateway.submit(tasks, transport).result()
                else:
                    gateway.serve(tasks, transport)
            except Exception:
                errors[idx] += 1
            else:
                latencies[idx].append(perf_counter() - start)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = perf_counter()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - start
    return _summarize(
        gateway,
        "closed-loop",
        [lat for per_client in latencies for lat in per_client],
        sum(errors),
        elapsed,
        stats_before,
        coalesced_before,
    )


def run_open_loop(
    gateway,
    workload: ZipfianWorkload,
    rate_qps: float = 200.0,
    duration_seconds: float = 2.0,
    seed: int = 0,
) -> LoadReport:
    """Submit queries on a fixed schedule and measure scheduled-start latency."""
    if rate_qps <= 0 or duration_seconds <= 0:
        raise ValueError("rate_qps and duration_seconds must be positive")
    total = max(1, int(rate_qps * duration_seconds))
    plan = workload.sample(total, seed=seed + 104729)
    finish_times: Dict[int, float] = {}
    finished = threading.Semaphore(0)

    def on_done(index: int):
        def callback(_future) -> None:
            finish_times[index] = perf_counter()
            finished.release()

        return callback

    stats_before = gateway.cache_stats()
    coalesced_before = gateway.metrics.counter("coalesced")
    futures = []
    start = perf_counter()
    for i, (tasks, transport) in enumerate(plan):
        target = start + i / rate_qps
        delay = target - perf_counter()
        if delay > 0:
            sleep(delay)
        future = gateway.submit(tasks, transport)
        future.add_done_callback(on_done(i))
        futures.append((i, target, future))
    for _ in futures:
        finished.acquire()
    elapsed = perf_counter() - start

    latencies: List[float] = []
    errors = 0
    for i, target, future in futures:
        if future.exception() is not None:
            errors += 1
        else:
            latencies.append(max(0.0, finish_times[i] - target))
    return _summarize(
        gateway,
        "open-loop",
        latencies,
        errors,
        elapsed,
        stats_before,
        coalesced_before,
        offered_qps=rate_qps,
    )
