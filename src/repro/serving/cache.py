"""Byte-budgeted LRU caches for the serving tier.

:class:`ByteBudgetLRU` is a thread-safe LRU keyed on canonical query keys
(:mod:`repro.serving.canonical`) whose capacity is expressed in *bytes*, not
entries — consolidated models and serialized payloads vary wildly in size,
so an entry-count bound would make memory use unpredictable.  Optional TTL
expires stale entries (a pool that re-extracts an expert should not keep
serving yesterday's weights forever), and :class:`CacheStats` exposes the
hit/eviction accounting the metrics layer reports.

A budget of ``0`` disables the cache: every ``get`` misses and every ``put``
is rejected.  That is how the gateway (and the throughput benchmark's
"caches off" arm) turn a tier off without branching at every call site.

Eviction order is pluggable via :attr:`ByteBudgetLRU.evict_score`: when a
scoring hook is installed, budget pressure removes the *lowest-scoring*
entry instead of the least-recently-used one (ties and hook failures fall
back to LRU).  The self-tuning controller (:mod:`repro.control`) uses this
to keep hot, expensive-to-rebuild composites resident — a GDSF-style
``popularity x rebuild_cost / size`` policy — without this module knowing
anything about popularity or cost.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Optional, Tuple

from ..obs.journal import JOURNAL

__all__ = ["BYTES_PER_PARAM", "CacheStats", "ByteBudgetLRU", "merge_cache_stats"]

#: Cache-sizing convention for in-memory models: float32 weights.
BYTES_PER_PARAM = 4


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time accounting for one cache tier."""

    budget_bytes: int
    current_bytes: int = 0
    current_entries: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0
    rejections: int = 0
    #: Subset of ``evictions`` chosen by a score hook rather than pure LRU.
    score_evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        return self.hits / self.requests if self.requests else 0.0


def merge_cache_stats(parts: List[CacheStats]) -> CacheStats:
    """Aggregate stats across cache instances (e.g. one tier over N shards)."""
    if not parts:
        return CacheStats(budget_bytes=0)
    return CacheStats(
        budget_bytes=sum(p.budget_bytes for p in parts),
        current_bytes=sum(p.current_bytes for p in parts),
        current_entries=sum(p.current_entries for p in parts),
        hits=sum(p.hits for p in parts),
        misses=sum(p.misses for p in parts),
        insertions=sum(p.insertions for p in parts),
        evictions=sum(p.evictions for p in parts),
        expirations=sum(p.expirations for p in parts),
        rejections=sum(p.rejections for p in parts),
        score_evictions=sum(p.score_evictions for p in parts),
    )


class ByteBudgetLRU:
    """Thread-safe LRU cache bounded by total byte size, with optional TTL.

    Parameters
    ----------
    budget_bytes:
        Maximum total size of cached values.  ``0`` disables the cache.
    ttl_seconds:
        If set, entries older than this are treated as misses and dropped.
    clock:
        Monotonic time source; injectable for deterministic TTL tests.
    name:
        Optional tier label; when set, budget-pressure evictions emit a
        ``cache_evict`` event into the process journal (one aggregated
        event per inserting ``put``, not one per victim).
    evict_score:
        Optional ``key -> float`` hook consulted under budget pressure.
        When set, the entry with the strictly lowest score is evicted
        (ties broken by LRU order); when ``None`` (the default) eviction
        is plain LRU, bit-for-bit identical to the unhooked cache.  If
        the just-inserted key itself scores lowest it is removed and the
        ``put`` counts as a rejection, not an insertion — cost-aware
        admission control falls out of the same comparison.  The hook is
        called with the cache lock held: it must not call back into this
        cache and must be cheap.  A raising hook falls back to LRU for
        that eviction.
    """

    def __init__(
        self,
        budget_bytes: int,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        name: Optional[str] = None,
        evict_score: Optional[Callable[[Hashable], float]] = None,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.budget_bytes = int(budget_bytes)
        self.ttl_seconds = ttl_seconds
        self.name = name
        self.evict_score = evict_score
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (value, size_bytes, stored_at)
        self._entries: "OrderedDict[Hashable, Tuple[Any, int, float]]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0
        self._expirations = 0
        self._rejections = 0
        self._score_evictions = 0

    # ------------------------------------------------------------------
    def _pick_victim(self) -> Hashable:
        """Key to evict next (lock held): lowest score, or the LRU head.

        The LRU head is both the default policy and the fallback when the
        hook is absent, raises, or only ties the head's own score — so a
        ``None`` hook leaves behaviour bit-for-bit identical to the
        pre-hook cache.
        """
        lru_key = next(iter(self._entries))
        score = self.evict_score
        if score is None:
            return lru_key
        try:
            best_key = lru_key
            best_score: Optional[float] = None
            for key in self._entries:  # LRU -> MRU, so strict < keeps ties on LRU
                s = float(score(key))
                if best_score is None or s < best_score:
                    best_key, best_score = key, s
            return best_key
        except Exception:
            return lru_key

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return default
            value, size, stored_at = entry
            if self.ttl_seconds is not None and self._clock() - stored_at > self.ttl_seconds:
                del self._entries[key]
                self._bytes -= size
                self._expirations += 1
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any, size_bytes: int) -> bool:
        """Insert ``value``; evict entries until within budget.

        Returns ``False`` (and caches nothing) when the value alone exceeds
        the budget — oversized artifacts would only thrash the cache — or
        when an installed :attr:`evict_score` hook ranks the new entry
        below everything already resident (admission denied).
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        with self._lock:
            # budget 0 means disabled: reject everything, even 0-byte values
            if self.budget_bytes == 0 or size_bytes > self.budget_bytes:
                self._rejections += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size_bytes, self._clock())
            self._bytes += size_bytes
            self._insertions += 1
            admitted = True
            evicted = 0
            evicted_bytes = 0
            while self._bytes > self.budget_bytes:
                victim = self._pick_victim()
                _, victim_size, _ = self._entries.pop(victim)
                self._bytes -= victim_size
                if victim == key:
                    # The new entry itself scored lowest: undo the insert
                    # and report it as a rejection (admission denied).
                    self._insertions -= 1
                    self._rejections += 1
                    admitted = False
                    break
                self._evictions += 1
                if self.evict_score is not None:
                    self._score_evictions += 1
                evicted += 1
                evicted_bytes += victim_size
        if evicted and self.name is not None and JOURNAL.enabled:
            JOURNAL.emit(
                "cache_evict",
                tier=self.name,
                evicted=evicted,
                freed_bytes=evicted_bytes,
                budget_bytes=self.budget_bytes,
            )
        return admitted

    def contains(self, key: Hashable) -> bool:
        """Whether a live (non-expired) entry exists for ``key``.

        A stats-neutral peek: no hit/miss accounting and no recency
        refresh, for callers that only *plan* around an entry's presence
        (e.g. the micro-batch drain deciding whether to skip trunk work)
        and leave the counted lookup to the serving path itself.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            if (
                self.ttl_seconds is not None
                and self._clock() - entry[2] > self.ttl_seconds
            ):
                return False
            return True

    def discard(self, key: Hashable) -> bool:
        """Drop one entry if present; returns whether it existed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Non-mutating membership test (no recency/stat side effects)."""
        with self._lock:
            return key in self._entries

    def keys(self) -> List[Hashable]:
        """Keys from least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                budget_bytes=self.budget_bytes,
                current_bytes=self._bytes,
                current_entries=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                insertions=self._insertions,
                evictions=self._evictions,
                expirations=self._expirations,
                rejections=self._rejections,
                score_evictions=self._score_evictions,
            )

    def reset_stats(self) -> None:
        """Zero the counters (contents stay); used between benchmark phases."""
        with self._lock:
            self._hits = self._misses = 0
            self._insertions = self._evictions = 0
            self._expirations = self._rejections = 0
            self._score_evictions = 0

    def __repr__(self) -> str:  # pragma: no cover
        s = self.stats()
        return (
            f"ByteBudgetLRU(entries={s.current_entries}, "
            f"bytes={s.current_bytes}/{s.budget_bytes}, "
            f"hit_rate={s.hit_rate:.2f})"
        )
