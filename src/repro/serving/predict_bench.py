"""Measurement harness for the prediction fast path.

One benchmark recipe shared by ``benchmarks/bench_predict_throughput.py``
(which *asserts* the speedups) and the ``repro predict-bench`` CLI (which
emits the ``BENCH_predict.json`` trajectory): build an ``M(Q)`` with
``n(Q)`` heads, then time

* the per-head Python loop vs the fused bank on identical trunk features
  (the ≥3x single-thread claim), checking ``allclose`` along the way;
* the autograd trunk vs the **compiled** eval-mode trunk
  (:class:`repro.nn.fused.FusedTrunk` — the ≥2.5x trunk-mode claim),
  also ``allclose``-checked;
* end-to-end prediction — loop path, fused path with a cold trunk
  (compiled trunk + fused heads, no caches warm), fused path with the
  trunk-feature cache warm, and a fully repeated request served from the
  prediction-result cache — through a real
  :class:`~repro.serving.ServingGateway`.

Timings are medians over ``reps`` runs after warmup, so one scheduler
hiccup cannot flip a gate.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.query import TaskSpecificModel
from ..distill.caches import batched_forward
from ..tensor import Tensor, no_grad

__all__ = [
    "run_predict_benchmark",
    "append_benchmark_record",
    "predict_report_rows",
    "run_metadata",
]


def _median_ms(fn, reps: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        fn()
    times: List[float] = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)) * 1e3


def run_predict_benchmark(
    pool,
    images: np.ndarray,
    n_heads: int = 8,
    batch_size: int = 64,
    reps: int = 30,
) -> Dict[str, object]:
    """Benchmark fused vs per-head-loop prediction on ``pool``.

    ``images`` supplies the pixel distribution (tiled to ``batch_size``);
    ``n_heads`` picks how many experts the composite query spans.  Returns
    a plain-JSON record; asserting on it is the caller's business.
    """
    names = sorted(pool.expert_names())[:n_heads]
    if len(names) < n_heads:
        raise ValueError(f"pool has {len(names)} experts, need {n_heads}")
    network, composite = pool.consolidate(names)
    model = TaskSpecificModel(network, composite)
    reps_needed = int(np.ceil(batch_size / images.shape[0]))
    batch = np.concatenate([images] * reps_needed, axis=0)[:batch_size]
    batch = np.ascontiguousarray(batch, dtype=np.float32)

    features = batched_forward(network.trunk, batch)
    features_t = Tensor(features)
    bank = network.fused_bank()
    compiled_trunk = network.fused_trunk()  # verified allclose at compile

    def loop_heads() -> np.ndarray:
        with no_grad():
            sub = [head(features_t) for head in network.heads]
            return Tensor.concatenate(sub, axis=1).numpy()

    loop_logits = loop_heads()
    fused_logits = bank(features)
    heads_max_diff = float(np.abs(loop_logits - fused_logits).max())
    heads_allclose = bool(np.allclose(loop_logits, fused_logits, rtol=1e-4, atol=1e-5))

    fused_features = compiled_trunk(batch)
    trunk_max_diff = float(np.abs(features - fused_features).max())
    trunk_allclose = bool(
        np.allclose(features, fused_features, rtol=1e-4, atol=1e-5)
    )

    loop_heads_ms = _median_ms(loop_heads, reps)
    fused_heads_ms = _median_ms(lambda: bank(features), reps)
    # trunk mode: the autograd engine vs the compiled NHWC program
    trunk_autograd_ms = _median_ms(lambda: batched_forward(network.trunk, batch), reps)
    trunk_fused_ms = _median_ms(lambda: compiled_trunk(batch), reps)

    # end to end through the gateway: cold trunk vs warm trunk-feature
    # cache (result cache off so the arms measure compute, not memoing)
    from .gateway import GatewayConfig, ServingGateway

    loop_e2e_ms = _median_ms(lambda: model.logits(batch).argmax(axis=1), reps)
    with ServingGateway(
        pool, GatewayConfig(max_workers=1, result_cache_bytes=0)
    ) as gateway:
        cold_ms = _median_ms(
            lambda: (gateway.trunk_cache.clear(), gateway.predict(batch, names)),
            reps,
        )
        gateway.trunk_cache.reset_stats()  # report the warm phase's hit rate
        warm_ms = _median_ms(lambda: gateway.predict(batch, names), reps)
        trunk_stats = gateway.trunk_cache.stats()
    # fourth arm: the fully repeated request (prediction-result cache hit)
    with ServingGateway(pool, GatewayConfig(max_workers=1)) as gateway:
        gateway.predict(batch, names)  # populate
        result_hit_ms = _median_ms(lambda: gateway.predict(batch, names), reps)

    return {
        "n_heads": n_heads,
        "batch_size": batch_size,
        "reps": reps,
        "allclose": heads_allclose and trunk_allclose,
        "max_abs_diff": heads_max_diff,
        "heads": {
            "loop_ms": loop_heads_ms,
            "fused_ms": fused_heads_ms,
            "speedup": loop_heads_ms / fused_heads_ms if fused_heads_ms else 0.0,
            "allclose": heads_allclose,
        },
        "trunk": {
            "autograd_ms": trunk_autograd_ms,
            "fused_ms": trunk_fused_ms,
            "speedup": trunk_autograd_ms / trunk_fused_ms if trunk_fused_ms else 0.0,
            "allclose": trunk_allclose,
            "max_abs_diff": trunk_max_diff,
        },
        "end_to_end": {
            "loop_ms": loop_e2e_ms,
            "fused_cold_ms": cold_ms,
            "fused_warm_ms": warm_ms,
            "result_hit_ms": result_hit_ms,
            "cold_speedup": loop_e2e_ms / cold_ms if cold_ms else 0.0,
            "warm_speedup": loop_e2e_ms / warm_ms if warm_ms else 0.0,
            "result_speedup": loop_e2e_ms / result_hit_ms if result_hit_ms else 0.0,
        },
        "trunk_cache": {
            "hits": trunk_stats.hits,
            "misses": trunk_stats.misses,
            "hit_rate": trunk_stats.hit_rate,
        },
    }


def predict_report_rows(record: Dict[str, object]) -> Tuple[List[List[str]], str]:
    """``(rows, title)`` for rendering one benchmark record as a table.

    Single source for the CLI and the pytest benchmark, so the report
    layout cannot drift from the record schema.
    """
    heads, e2e = record["heads"], record["end_to_end"]
    trunk = record.get("trunk")
    rows = [
        ["heads: per-head loop", f"{heads['loop_ms']:.3f}", ""],
        ["heads: fused bank", f"{heads['fused_ms']:.3f}", f"{heads['speedup']:.1f}x"],
    ]
    if trunk is not None:  # records predating the compiled trunk lack it
        rows += [
            ["trunk: autograd", f"{trunk['autograd_ms']:.3f}", ""],
            ["trunk: compiled", f"{trunk['fused_ms']:.3f}", f"{trunk['speedup']:.1f}x"],
        ]
    rows += [
        ["e2e: loop predict", f"{e2e['loop_ms']:.3f}", ""],
        ["e2e: fused, cold trunk", f"{e2e['fused_cold_ms']:.3f}", f"{e2e['cold_speedup']:.1f}x"],
        ["e2e: fused, warm trunk", f"{e2e['fused_warm_ms']:.3f}", f"{e2e['warm_speedup']:.1f}x"],
    ]
    if "result_hit_ms" in e2e:
        rows.append(
            ["e2e: result cache hit", f"{e2e['result_hit_ms']:.3f}", f"{e2e['result_speedup']:.1f}x"]
        )
    title = (
        f"Prediction fast path (n(Q)={record['n_heads']}, "
        f"batch={record['batch_size']}, allclose={record['allclose']}, "
        f"trunk hit rate {record['trunk_cache']['hit_rate']:.0%} warm)"
    )
    return rows, title


def run_metadata(**extra: object) -> Dict[str, object]:
    """Environment stamp for one benchmark run entry.

    Makes a trajectory interpretable after the fact: *when* the run
    happened, on how many cores, under which Python, and whether the
    relaxed-gates escape hatch (``REPRO_BENCH_RELAX``, set on shared CI
    runners) was active — a slow relaxed entry is noise, not a regression.
    ``extra`` keys (e.g. replica/hedge/chaos config for networked runs)
    are folded into the stamp; they must be JSON-safe.
    """
    import platform
    from datetime import datetime, timezone

    meta: Dict[str, object] = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "relax": bool(os.environ.get("REPRO_BENCH_RELAX")),
    }
    meta.update(extra)
    return meta


def append_benchmark_record(
    path: str, record: Dict[str, object], label: Optional[str] = None
) -> Dict[str, object]:
    """Append ``record`` to the JSON trajectory at ``path`` (created if new).

    The file holds ``{"runs": [...]}`` so successive benchmark runs (one
    per PR in CI) accumulate into a perf trajectory instead of overwriting
    each other.  Every appended entry is stamped with :func:`run_metadata`
    under ``"meta"`` (unless the record already carries one); entries
    written before the stamp existed are left untouched — readers must
    treat ``"meta"`` as optional.  Returns the full document written.
    """
    doc: Dict[str, object] = {"runs": []}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                loaded = json.load(fh)
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                doc = loaded
        except (OSError, ValueError):
            pass  # corrupt trajectory: start fresh rather than crash a bench
    entry = dict(record)
    if label is not None:
        entry["label"] = label
    entry.setdefault("meta", run_metadata())
    doc["runs"].append(entry)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc
