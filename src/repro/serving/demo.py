"""A self-contained micro pool for serving demos and benchmarks.

``repro serve-bench``, ``benchmarks/bench_serving_throughput.py`` and
``examples/concurrent_clients.py`` all need a *ready* pool without
depending on the artifact store having been built: the serving layer's
costs (serialization, locking, cache management) are independent of model
quality, so a minutes-long preprocessing run would add nothing but wall
clock.  This builds the same kind of tiny synthetic pool the test suite
uses — real library + real CKD experts, just at micro scale.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core import PoEConfig, PoolOfExperts
from ..data import ClassHierarchy
from ..data.synthetic import (
    HierarchicalImageDataset,
    SyntheticConfig,
    SyntheticImageGenerator,
)
from ..distill import TrainConfig, train_scratch
from ..models import WideResNet

__all__ = ["build_demo_pool"]


def build_demo_pool(
    num_tasks: int = 5,
    classes_per_task: int = 2,
    image_size: int = 6,
    train_per_class: int = 30,
    epochs: int = 6,
    seed: int = 7,
    *,
    hierarchy: Optional[ClassHierarchy] = None,
    test_per_class: Optional[int] = None,
    oracle_epochs: Optional[int] = None,
    train_seed: Optional[int] = None,
    noise_std: float = 0.45,
) -> Tuple[PoolOfExperts, HierarchicalImageDataset]:
    """Train a micro oracle and preprocess a full pool over it.

    Returns ``(pool, dataset)``; the pool has one expert per primitive task
    and is immediately consolidatable/serveable.  Takes seconds, not
    minutes — sized for load tests, not accuracy claims.  The test suite's
    shared fixtures build through here too (with a custom ``hierarchy``),
    so there is exactly one micro-pool recipe in the repo.
    """
    if hierarchy is None:
        hierarchy = ClassHierarchy.uniform(num_tasks, classes_per_task, prefix="task")
    if test_per_class is None:
        test_per_class = max(8, train_per_class // 3)
    if oracle_epochs is None:
        oracle_epochs = epochs
    if train_seed is None:
        train_seed = seed

    def train_config(num_epochs: int) -> TrainConfig:
        return TrainConfig(epochs=num_epochs, batch_size=32, lr=0.05, seed=train_seed)

    generator = SyntheticImageGenerator(
        hierarchy, SyntheticConfig(image_size=image_size, noise_std=noise_std), seed=seed
    )
    data = HierarchicalImageDataset(
        hierarchy, generator, train_per_class, test_per_class, seed=seed + 1
    )
    oracle = WideResNet(
        10, 2, 2, hierarchy.num_classes, rng=np.random.default_rng(seed)
    )
    train_scratch(
        oracle, data.train.images, data.train.labels, train_config(oracle_epochs)
    )
    pool = PoolOfExperts(
        oracle,
        hierarchy,
        PoEConfig(
            library_depth=10,
            library_k=1.0,
            expert_ks=0.25,
            library_train=train_config(epochs),
            expert_train=train_config(epochs),
        ),
    )
    pool.preprocess(data.train)
    return pool, data
