"""repro.serving — the realtime serving gateway (pool → gateway → client).

The paper's service phase is train-free, so a single query costs
microseconds; this package makes that hold *under concurrent traffic*:

* :mod:`~repro.serving.canonical` — one canonical query identity shared by
  every cache layer (sorted, deduplicated task names).
* :mod:`~repro.serving.cache` — byte-budgeted LRU tiers with TTL and
  eviction stats for consolidated models and serialized payloads.
* :mod:`~repro.serving.gateway` — :class:`ServingGateway`: request
  coalescing (single flight), cache tiers, worker-pool dispatch.
* :mod:`~repro.serving.metrics` — per-stage latency histograms with
  p50/p95/p99 summaries and cache hit-rate reporting.
* :mod:`~repro.serving.loadgen` — Zipfian workload generation plus
  closed-loop and open-loop load drivers.
* :mod:`~repro.serving.demo` — a self-contained micro pool so benchmarks
  and demos run without prebuilt artifacts.

:class:`~repro.core.server.PoEServer` and
:class:`~repro.core.query.ModelQueryEngine` remain the stable public API;
both are thin shims over this package.
"""

from .cache import ByteBudgetLRU, CacheStats, merge_cache_stats
from .canonical import canonical_tasks, model_key, payload_key
from .demo import build_demo_pool
from .gateway import (
    GatewayConfig,
    GatewayResponse,
    PredictionResponse,
    ServingGateway,
    SingleFlight,
)
from .loadgen import LoadReport, ZipfianWorkload, run_closed_loop, run_open_loop
from .metrics import (
    DOCUMENTED_STAGES,
    SNAPSHOT_SCHEMA,
    LatencyHistogram,
    PopularityEWMA,
    ServingMetrics,
    merge_snapshots,
    percentile,
)
from .predict_bench import (
    append_benchmark_record,
    predict_report_rows,
    run_metadata,
    run_predict_benchmark,
)

__all__ = [
    "ByteBudgetLRU",
    "CacheStats",
    "merge_cache_stats",
    "canonical_tasks",
    "model_key",
    "payload_key",
    "GatewayConfig",
    "GatewayResponse",
    "PredictionResponse",
    "ServingGateway",
    "SingleFlight",
    "ZipfianWorkload",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
    "LatencyHistogram",
    "PopularityEWMA",
    "ServingMetrics",
    "percentile",
    "merge_snapshots",
    "SNAPSHOT_SCHEMA",
    "DOCUMENTED_STAGES",
    "build_demo_pool",
    "run_predict_benchmark",
    "append_benchmark_record",
    "predict_report_rows",
    "run_metadata",
]
