"""Serving metrics: per-stage latency histograms and percentile summaries.

Each pipeline stage (queue wait, consolidate, serialize, total) records into
a :class:`LatencyHistogram` — log-spaced buckets for shape, plus a bounded
reservoir of raw samples for exact p50/p95/p99 up to the reservoir size.
:class:`ServingMetrics` aggregates the stage histograms with event counters
(requests, coalesced builds, errors) behind one lock-protected facade that
the gateway, the load drivers, and the CLI all share.

Everything here is deterministic given the recorded values: the reservoir
uses algorithm R with a seeded PRNG so benchmark output is reproducible.

Snapshots follow one **unified versioned schema** (``SNAPSHOT_SCHEMA``)
shared by :class:`ServingMetrics` and :class:`repro.cluster.metrics.ClusterMetrics`::

    {
      "schema": 2,                 # bumped on shape additions (see below)
      "kind": "serving"|"cluster", # which facade produced it
      "stages": {name: {count, mean, p50, p95, p99, max}},
      "counters": {name: int},
      # schema 2 additions (absent entries mean "none", so schema-1
      # snapshots from old peers merge unchanged):
      "popularity": {task: {"score": float, "count": int}},
      "health": {source: {...}},   # stamped by the health scorer
      # cluster only:
      "fanout": {width: int}, "shard_requests": {shard: int},
      # with include_histograms=True:
      "histograms": {name: LatencyHistogram.to_dict()},
    }

Schema 2 adds the per-task **popularity EWMA** (:class:`PopularityEWMA`:
exponentially-decayed request counts, the online n(Q) frequency estimate
the LAWS-style cache policies need) and an optional ``"health"`` table
(per-source verdicts from :class:`repro.obs.health.HealthScorer`; the
snapshot layer only transports it).

The Prometheus scrape exporter, the ``BENCH_*.json`` writers, and the
``STATS`` wire frame all consume this one shape; :func:`merge_snapshots`
combines snapshots from multiple shards/workers (counters sum,
histograms merge when present, popularity scores/counts add, health
tables union, unknown keys are ignored so the merge is
forward-compatible across schema additions).
"""

from __future__ import annotations

import math
import random
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs.trace import TRACER

__all__ = [
    "percentile",
    "LatencyHistogram",
    "PopularityEWMA",
    "ServingMetrics",
    "merge_snapshots",
    "SNAPSHOT_SCHEMA",
    "DOCUMENTED_STAGES",
]

#: Version of the unified snapshot shape (see module docstring).
#: 1 → 2 added ``popularity`` (per-task EWMA) and ``health`` — pure
#: additions, so schema-1 and schema-2 snapshots merge freely.
SNAPSHOT_SCHEMA = 2

#: Stage names the serving stack is documented to emit; the CI scrape
#: smoke asserts every one of these appears in the exposition after a
#: traced networked run (docs/observability.md lists them with meaning).
DOCUMENTED_STAGES = (
    "queue",
    "total",
    "predict_total",
    "predict_trunk_fused",
    "predict_heads",
    "predict_argmax",
    "fetch",
    "assemble",
    "serialize",
)


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``samples``."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


class LatencyHistogram:
    """Latency distribution: log2 buckets + a reservoir for exact quantiles.

    Buckets span 1 µs to ~67 s (powers of two); values outside fall into the
    first/last bucket.  The reservoir keeps at most ``max_samples`` raw
    values (algorithm R), so percentiles are exact until that many records
    and statistically representative afterwards.
    """

    _MIN_BUCKET = 1e-6  # 1 µs
    _NUM_BUCKETS = 27  # 2**26 µs ≈ 67 s

    def __init__(self, max_samples: int = 65536, seed: int = 0) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.max_samples = max_samples
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        self._buckets = [0] * self._NUM_BUCKETS
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = 0.0

    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self._count += 1
        self._total += seconds
        self._min = min(self._min, seconds)
        self._max = max(self._max, seconds)
        self._buckets[self._bucket_index(seconds)] += 1
        if len(self._samples) < self.max_samples:
            self._samples.append(seconds)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.max_samples:
                self._samples[slot] = seconds

    def _bucket_index(self, seconds: float) -> int:
        if seconds < self._MIN_BUCKET:
            return 0
        index = int(math.log2(seconds / self._MIN_BUCKET)) + 1
        return min(index, self._NUM_BUCKETS - 1)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Percentile over the reservoir (``q`` in [0, 100])."""
        if not self._samples:
            return 0.0
        return percentile(self._samples, q)

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound_seconds, count)`` pairs for non-empty buckets."""
        out = []
        for i, n in enumerate(self._buckets):
            if n:
                out.append((self._MIN_BUCKET * (2 ** i), n))
        return out

    def summary(self) -> Dict[str, float]:
        if not self._count:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": self._count,
            "mean": self.mean,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
            "max": self._max,
        }

    # ------------------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (shards/workers combine).

        Buckets, counts, totals, and extrema add exactly; the reservoir
        concatenates then downsamples evenly from the sorted union when it
        would exceed ``max_samples``, so merged quantiles stay
        representative of both sides.
        """
        if other._count == 0:
            return
        self._count += other._count
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        for i, n in enumerate(other._buckets):
            self._buckets[i] += n
        combined = sorted(self._samples + other._samples)
        if len(combined) > self.max_samples:
            step = len(combined) / self.max_samples
            combined = [combined[int(i * step)] for i in range(self.max_samples)]
        self._samples = combined

    _MAX_WIRE_SAMPLES = 512  # reservoir slice shipped in to_dict()

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe state for the STATS wire frame / snapshot merging.

        The reservoir is downsampled (evenly from the sorted samples) to
        at most ``_MAX_WIRE_SAMPLES`` values so a 27-stage snapshot stays
        a few KiB on the wire while merged quantiles remain faithful.
        """
        samples = sorted(self._samples)
        if len(samples) > self._MAX_WIRE_SAMPLES:
            step = len(samples) / self._MAX_WIRE_SAMPLES
            samples = [samples[int(i * step)] for i in range(self._MAX_WIRE_SAMPLES)]
        return {
            "count": self._count,
            "total": self._total,
            "min": 0.0 if math.isinf(self._min) else self._min,
            "max": self._max,
            "buckets": list(self._buckets),
            "samples": samples,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencyHistogram":
        hist = cls()
        hist._count = int(data["count"])
        hist._total = float(data["total"])
        hist._min = float(data["min"]) if hist._count else math.inf
        hist._max = float(data["max"])
        buckets = list(data.get("buckets") or [])
        for i, n in enumerate(buckets[: cls._NUM_BUCKETS]):
            hist._buckets[i] = int(n)
        hist._samples = [float(s) for s in (data.get("samples") or [])]
        return hist


class PopularityEWMA:
    """Per-task exponentially-decayed request counts (online n(Q) frequency).

    Each recorded task bumps its score by 1 after decaying it by
    ``2 ** (-elapsed / halflife_s)``, so a task's score approximates its
    request rate weighted toward the last ``halflife_s`` seconds — the
    live popularity estimate adaptive cache/prefetch policies rank by.
    Raw lifetime counts ride along for absolute volume.  Not thread-safe
    on its own; :class:`ServingMetrics` records under its lock.
    """

    def __init__(self, halflife_s: float = 30.0, clock=perf_counter) -> None:
        if halflife_s <= 0:
            raise ValueError("halflife_s must be positive")
        self.halflife_s = halflife_s
        self._clock = clock
        # task -> [score, lifetime_count, last_update_t]
        self._tasks: Dict[str, List[float]] = {}

    def record(self, names: Sequence[str], weight: float = 1.0) -> None:
        now = self._clock()
        for name in names:
            entry = self._tasks.get(name)
            if entry is None:
                self._tasks[name] = [weight, 1, now]
            else:
                entry[0] = entry[0] * self._decay(now - entry[2]) + weight
                entry[1] += 1
                entry[2] = now

    def _decay(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 1.0
        return 2.0 ** (-elapsed / self.halflife_s)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe ``{task: {"score", "count"}}``, decayed to now."""
        now = self._clock()
        return {
            name: {
                "score": entry[0] * self._decay(now - entry[2]),
                "count": int(entry[1]),
            }
            for name, entry in self._tasks.items()
        }

    def score(self, name: str) -> float:
        """One task's decayed-to-now score (``0.0`` when never recorded).

        Cheap single-key read for eviction-score hooks that rank cache
        entries by live popularity; no state is mutated.
        """
        entry = self._tasks.get(name)
        if entry is None:
            return 0.0
        return entry[0] * self._decay(self._clock() - entry[2])

    def top(self, n: int = 10) -> List[Tuple[str, float]]:
        """The ``n`` hottest tasks as ``(name, score)``, hottest first."""
        snap = self.snapshot()
        ranked = sorted(snap.items(), key=lambda kv: -kv[1]["score"])
        return [(name, entry["score"]) for name, entry in ranked[:n]]

    def __len__(self) -> int:
        return len(self._tasks)


class ServingMetrics:
    """Thread-safe aggregate of stage histograms and event counters."""

    def __init__(self, max_samples_per_stage: int = 65536) -> None:
        self._lock = threading.Lock()
        self._max_samples = max_samples_per_stage
        self._stages: Dict[str, LatencyHistogram] = {}
        self._counters: Dict[str, int] = {}
        self.popularity = PopularityEWMA()

    # ------------------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency sample for ``stage``."""
        with self._lock:
            hist = self._stages.get(stage)
            if hist is None:
                hist = self._stages[stage] = LatencyHistogram(self._max_samples)
            hist.record(seconds)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage of the pipeline.

        When the request is being traced, the same measurement also lands
        as a child span — one clock read serves both sinks.
        """
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self.observe(name, elapsed)
            if TRACER.enabled:
                TRACER.record_stage(name, elapsed)

    def increment(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + by

    def record_tasks(self, names: Sequence[str]) -> None:
        """Bump the popularity EWMA for one request's task set."""
        with self._lock:
            self.popularity.record(names)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def stage_summary(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            hist = self._stages.get(name)
            return hist.summary() if hist is not None else None

    # ------------------------------------------------------------------
    def snapshot(self, include_histograms: bool = False) -> Dict[str, object]:
        """Unified-schema view of every stage summary and counter.

        ``include_histograms`` adds full histogram state (buckets + a
        downsampled reservoir) so snapshots from shards/workers can be
        merged with :func:`merge_snapshots` without losing quantiles.
        """
        with self._lock:
            snap: Dict[str, object] = {
                "schema": SNAPSHOT_SCHEMA,
                "kind": "serving",
                "stages": {name: h.summary() for name, h in self._stages.items()},
                "counters": dict(self._counters),
            }
            if len(self.popularity):
                snap["popularity"] = self.popularity.snapshot()
            if include_histograms:
                snap["histograms"] = {
                    name: h.to_dict() for name, h in self._stages.items()
                }
            return snap

    def render(self, cache_stats: Optional[Dict[str, object]] = None) -> str:
        """Human-readable metrics table (stages, counters, cache tiers)."""
        snap = self.snapshot()
        lines = ["serving metrics"]
        stages = snap["stages"]
        if stages:
            lines.append(
                f"  {'stage':<12} {'count':>7} {'mean':>10} {'p50':>10} "
                f"{'p95':>10} {'p99':>10} {'max':>10}"
            )
            for name in sorted(stages):
                s = stages[name]
                # stages named *_images record sizes, not seconds (e.g. the
                # micro-batch drain histogram) — print them as plain counts
                fmt = _fmt_size if name.endswith("_images") else _fmt_latency
                lines.append(
                    f"  {name:<12} {int(s['count']):>7} "
                    + " ".join(fmt(s[k]) for k in ("mean", "p50", "p95", "p99", "max"))
                )
        counters = snap["counters"]
        if counters:
            lines.append("  counters: " + ", ".join(f"{k}={v}" for k, v in sorted(counters.items())))
        for tier, stats in (cache_stats or {}).items():
            lines.append(
                f"  cache[{tier}]: hit_rate={stats.hit_rate:.1%} "
                f"hits={stats.hits} misses={stats.misses} "
                f"evictions={stats.evictions} bytes={stats.current_bytes}/{stats.budget_bytes}"
            )
        return "\n".join(lines)


def merge_snapshots(snapshots: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Combine unified snapshots from multiple shards/workers into one.

    Counters sum; stage summaries are recomputed from merged histograms
    when every contributor shipped them (``include_histograms=True``),
    otherwise counts/means combine exactly and quantiles fall back to the
    max across contributors (a conservative tail estimate, flagged by the
    ``"approx"`` marker in the merged stage entry).  Fanout/shard-request
    tallies re-key to ``int`` — a JSON round trip (the STATS frame)
    stringifies dict keys.  Schema-2 popularity tables add score/count
    per task; ``"health"`` tables union (later contributors win on a
    source collision).  Both are pure additions, so schema-1 snapshots
    from old peers contribute everything they have and nothing breaks.
    Unknown keys are ignored.
    """
    merged: Dict[str, object] = {
        "schema": SNAPSHOT_SCHEMA,
        "kind": "cluster" if any(s.get("kind") == "cluster" for s in snapshots) else "serving",
        "stages": {},
        "counters": {},
    }
    counters: Dict[str, int] = merged["counters"]  # type: ignore[assignment]
    for snap in snapshots:
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)

    # histogram-backed stage merge where possible
    merged_hists: Dict[str, LatencyHistogram] = {}
    summary_only: Dict[str, Dict[str, float]] = {}
    for snap in snapshots:
        hists = snap.get("histograms") or {}
        for name, s in (snap.get("stages") or {}).items():
            if name in hists:
                hist = merged_hists.get(name)
                if hist is None:
                    merged_hists[name] = LatencyHistogram.from_dict(hists[name])
                else:
                    hist.merge(LatencyHistogram.from_dict(hists[name]))
            else:
                prev = summary_only.get(name)
                if prev is None:
                    summary_only[name] = dict(s)
                else:
                    total = prev["count"] + s["count"]
                    if total:
                        prev["mean"] = (
                            prev["mean"] * prev["count"] + s["mean"] * s["count"]
                        ) / total
                    prev["count"] = total
                    for key in ("p50", "p95", "p99", "max"):
                        prev[key] = max(prev[key], s[key])
    stages: Dict[str, object] = merged["stages"]  # type: ignore[assignment]
    exact_hists: Dict[str, LatencyHistogram] = {}
    for name, hist in merged_hists.items():
        if name in summary_only:
            # mixed contributors: fold the exact histogram into the
            # conservative summary rather than dropping either side.  The
            # partial histogram must NOT ride along in ``histograms`` —
            # a later re-merge would treat it as the exact record and
            # silently drop the summary side's counts
            s = summary_only.pop(name)
            h = hist.summary()
            total = s["count"] + h["count"]
            if total:
                s["mean"] = (s["mean"] * s["count"] + h["mean"] * h["count"]) / total
            s["count"] = total
            for key in ("p50", "p95", "p99", "max"):
                s[key] = max(s[key], h[key])
            s["approx"] = True
            stages[name] = s
        else:
            exact_hists[name] = hist
            stages[name] = hist.summary()
    for name, s in summary_only.items():
        s["approx"] = True
        stages[name] = s
    if exact_hists:
        merged["histograms"] = {n: h.to_dict() for n, h in exact_hists.items()}

    for key in ("fanout", "shard_requests"):
        combined: Dict[int, int] = {}
        present = False
        for snap in snapshots:
            table = snap.get(key)
            if not table:
                continue
            present = True
            for k, v in table.items():
                combined[int(k)] = combined.get(int(k), 0) + int(v)
        if present:
            merged[key] = combined

    popularity: Dict[str, Dict[str, float]] = {}
    for snap in snapshots:
        for task, entry in (snap.get("popularity") or {}).items():
            prev = popularity.get(task)
            if prev is None:
                popularity[task] = {
                    "score": float(entry.get("score", 0.0)),
                    "count": int(entry.get("count", 0)),
                }
            else:
                prev["score"] += float(entry.get("score", 0.0))
                prev["count"] += int(entry.get("count", 0))
    if popularity:
        merged["popularity"] = popularity

    health: Dict[str, object] = {}
    for snap in snapshots:
        table = snap.get("health")
        if isinstance(table, dict):
            health.update(table)
    if health:
        merged["health"] = health
    return merged


def _fmt_size(value: float) -> str:
    return f"{value:>9.1f}"


def _fmt_latency(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:>9.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:>8.2f}ms"
    return f"{seconds * 1e6:>8.1f}µs"
