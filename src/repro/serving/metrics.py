"""Serving metrics: per-stage latency histograms and percentile summaries.

Each pipeline stage (queue wait, consolidate, serialize, total) records into
a :class:`LatencyHistogram` — log-spaced buckets for shape, plus a bounded
reservoir of raw samples for exact p50/p95/p99 up to the reservoir size.
:class:`ServingMetrics` aggregates the stage histograms with event counters
(requests, coalesced builds, errors) behind one lock-protected facade that
the gateway, the load drivers, and the CLI all share.

Everything here is deterministic given the recorded values: the reservoir
uses algorithm R with a seeded PRNG so benchmark output is reproducible.
"""

from __future__ import annotations

import math
import random
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["percentile", "LatencyHistogram", "ServingMetrics"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) of ``samples``."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


class LatencyHistogram:
    """Latency distribution: log2 buckets + a reservoir for exact quantiles.

    Buckets span 1 µs to ~67 s (powers of two); values outside fall into the
    first/last bucket.  The reservoir keeps at most ``max_samples`` raw
    values (algorithm R), so percentiles are exact until that many records
    and statistically representative afterwards.
    """

    _MIN_BUCKET = 1e-6  # 1 µs
    _NUM_BUCKETS = 27  # 2**26 µs ≈ 67 s

    def __init__(self, max_samples: int = 65536, seed: int = 0) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.max_samples = max_samples
        self._rng = random.Random(seed)
        self._samples: List[float] = []
        self._buckets = [0] * self._NUM_BUCKETS
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = 0.0

    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self._count += 1
        self._total += seconds
        self._min = min(self._min, seconds)
        self._max = max(self._max, seconds)
        self._buckets[self._bucket_index(seconds)] += 1
        if len(self._samples) < self.max_samples:
            self._samples.append(seconds)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.max_samples:
                self._samples[slot] = seconds

    def _bucket_index(self, seconds: float) -> int:
        if seconds < self._MIN_BUCKET:
            return 0
        index = int(math.log2(seconds / self._MIN_BUCKET)) + 1
        return min(index, self._NUM_BUCKETS - 1)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Percentile over the reservoir (``q`` in [0, 100])."""
        if not self._samples:
            return 0.0
        return percentile(self._samples, q)

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound_seconds, count)`` pairs for non-empty buckets."""
        out = []
        for i, n in enumerate(self._buckets):
            if n:
                out.append((self._MIN_BUCKET * (2 ** i), n))
        return out

    def summary(self) -> Dict[str, float]:
        if not self._count:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": self._count,
            "mean": self.mean,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
            "max": self._max,
        }


class ServingMetrics:
    """Thread-safe aggregate of stage histograms and event counters."""

    def __init__(self, max_samples_per_stage: int = 65536) -> None:
        self._lock = threading.Lock()
        self._max_samples = max_samples_per_stage
        self._stages: Dict[str, LatencyHistogram] = {}
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency sample for ``stage``."""
        with self._lock:
            hist = self._stages.get(stage)
            if hist is None:
                hist = self._stages[stage] = LatencyHistogram(self._max_samples)
            hist.record(seconds)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage of the pipeline."""
        start = perf_counter()
        try:
            yield
        finally:
            self.observe(name, perf_counter() - start)

    def increment(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + by

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def stage_summary(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            hist = self._stages.get(name)
            return hist.summary() if hist is not None else None

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view of every stage summary and counter."""
        with self._lock:
            return {
                "stages": {name: h.summary() for name, h in self._stages.items()},
                "counters": dict(self._counters),
            }

    def render(self, cache_stats: Optional[Dict[str, object]] = None) -> str:
        """Human-readable metrics table (stages, counters, cache tiers)."""
        snap = self.snapshot()
        lines = ["serving metrics"]
        stages = snap["stages"]
        if stages:
            lines.append(
                f"  {'stage':<12} {'count':>7} {'mean':>10} {'p50':>10} "
                f"{'p95':>10} {'p99':>10} {'max':>10}"
            )
            for name in sorted(stages):
                s = stages[name]
                # stages named *_images record sizes, not seconds (e.g. the
                # micro-batch drain histogram) — print them as plain counts
                fmt = _fmt_size if name.endswith("_images") else _fmt_latency
                lines.append(
                    f"  {name:<12} {int(s['count']):>7} "
                    + " ".join(fmt(s[k]) for k in ("mean", "p50", "p95", "p99", "max"))
                )
        counters = snap["counters"]
        if counters:
            lines.append("  counters: " + ", ".join(f"{k}={v}" for k, v in sorted(counters.items())))
        for tier, stats in (cache_stats or {}).items():
            lines.append(
                f"  cache[{tier}]: hit_rate={stats.hit_rate:.1%} "
                f"hits={stats.hits} misses={stats.misses} "
                f"evictions={stats.evictions} bytes={stats.current_bytes}/{stats.budget_bytes}"
            )
        return "\n".join(lines)


def _fmt_size(value: float) -> str:
    return f"{value:>9.1f}"


def _fmt_latency(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:>9.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:>8.2f}ms"
    return f"{seconds * 1e6:>8.1f}µs"
