"""Canonical query identity — one place, reused by every cache layer.

Consolidation is order-insensitive up to head order: ``M({a, b})`` and
``M({b, a})`` share every weight and predict identical *global* class ids,
they only differ in how the unified logit is laid out.  Caches therefore
key on the *canonical* form of a query — primitive-task names deduplicated
and sorted — so permutations of the same composite task hit the same
entry instead of rebuilding (and re-serializing) an equivalent model.

Anything that serves a cached artifact in canonical order must advertise
that order (e.g. :class:`~repro.serving.gateway.GatewayResponse.tasks`),
because the logit layout follows it.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from ..data.hierarchy import CompositeTask

__all__ = ["canonical_tasks", "model_key", "payload_key"]

TaskQuery = Union[CompositeTask, Sequence[str], str]


def canonical_tasks(tasks: TaskQuery) -> Tuple[str, ...]:
    """Canonical identity of a composite-task query: sorted, deduplicated names.

    Accepts a :class:`CompositeTask`, a sequence of primitive-task names, or
    a single name.  The result is hashable and identical for every
    permutation (and duplication) of the same task set.
    """
    if isinstance(tasks, CompositeTask):
        names: Sequence[str] = tasks.names
    elif isinstance(tasks, str):
        names = (tasks,)
    else:
        names = tuple(tasks)
    if not names:
        raise ValueError("a query needs at least one primitive task")
    return tuple(sorted(set(names)))


def model_key(tasks: TaskQuery) -> Tuple[str, ...]:
    """Cache key for a consolidated in-memory model."""
    return canonical_tasks(tasks)


def payload_key(tasks: TaskQuery, transport: str) -> Tuple[Tuple[str, ...], str]:
    """Cache key for a serialized payload: ``(canonical tasks, transport)``."""
    return (canonical_tasks(tasks), transport)
