"""The serving gateway: canonicalize → coalesce → cache → consolidate.

:class:`ServingGateway` is the concurrent front door of the model-delivery
service (paper Fig. 1b at production traffic).  A request travels through
four stages, each one metered:

1. **canonicalize** — the query's task names are sorted/deduplicated
   (:func:`repro.serving.canonical.canonical_tasks`) so every permutation
   of the same composite task shares one identity.  Served payloads lay
   their heads out in this canonical order and advertise it via
   :attr:`GatewayResponse.tasks`; predictions are global class ids either
   way, so clients are order-agnostic.
2. **payload cache** — a byte-budgeted LRU keyed on ``(canonical tasks,
   transport)`` skips ``np.savez_compressed`` (the dominant serving cost)
   for repeated shipments.
3. **single flight** — concurrent duplicate requests coalesce onto one
   in-flight build; followers block on the leader's result instead of
   consolidating/serializing the same model N times.
4. **model cache + build** — a second LRU tier holds consolidated
   :class:`~repro.core.query.TaskSpecificModel`\\ s (cheap: weights are
   shared by reference with the pool, the cache bounds wrapper count), and
   a miss falls through to train-free consolidation + serialization.

``serve()`` runs the pipeline inline on the caller's thread (single-flight
still applies across threads); ``submit()`` dispatches onto a worker pool
and additionally records queue-wait latency, for open-loop load.

Besides *model delivery*, the gateway also runs **prediction serving**
(paper Fig. 1b's realtime querying taken to its conclusion):
``predict()`` routes images + task set through the fused inference fast
path — a prediction-result cache (fully repeated requests skip all
compute), a content-addressed trunk-feature cache (the library is frozen,
so features are reusable across every ``M(Q)``) whose miss path runs the
**compiled** eval-mode trunk (:class:`~repro.nn.fused.FusedTrunk`, no
autograd), then one batched pass over all expert heads
(:class:`~repro.models.FusedHeadBank`) — with per-stage metrics
(``predict_trunk_fused`` / ``predict_heads`` / ``predict_argmax``).
``submit_predict()`` adds cross-request micro-batching: concurrent small
prediction requests coalesce so the shared trunk runs **once** per drain
over the union of their images, whatever composite each request asked
for; drains are capped at ``max_batch_images`` and sized by an adaptive
window (grow under load, shrink when idle).

**Public entry points.**  Model delivery: :meth:`ServingGateway.serve`
(inline) and :meth:`ServingGateway.submit` (worker pool + queue-wait
telemetry).  Prediction: :meth:`ServingGateway.predict` (inline fused
path) and :meth:`ServingGateway.submit_predict` (micro-batched).
Consolidation without serving: :meth:`ServingGateway.get_model`.
Operations: :meth:`ServingGateway.invalidate_task` (also the hook the
cluster tier calls after migrating an expert), ``cache_stats()`` /
``render_stats()`` / the :attr:`predict_window` probe, and ``close()``
(the gateway is a context manager).  The helper functions in this module
(:func:`expert_versions`, :func:`run_trunk_forward`,
:func:`run_fused_prediction`, :func:`result_cache_key` /
:func:`result_cache_put_guarded`, :func:`drop_task_entries` /
:func:`drop_result_entries`) are shared with
:class:`repro.cluster.ClusterGateway` so the two tiers cannot drift.

**Thread safety.**  Every public method may be called from any number of
threads concurrently.  Cache tiers are individually locked
(:class:`~repro.serving.cache.ByteBudgetLRU` /
:class:`~repro.core.features.TrunkFeatureCache`); duplicate concurrent
builds coalesce through :class:`SingleFlight`; the micro-batch queue and
adaptive window are guarded by ``_predict_lock``; and version-guarded
cache puts serialize against the pool's invalidation listener via
``_invalidate_lock`` (a build snapshots expert versions before touching
weights and re-checks under that lock before caching, so a stale
artifact can never survive a concurrent re-extraction).  The pool object
itself is treated as read-mostly: mutations must go through
``PoolOfExperts`` (which fires the listeners), never by poking
``pool.experts`` directly.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Deque, Dict, Hashable, List, Optional, Tuple, TypeVar

import numpy as np

from ..core.features import TrunkFeatureCache, array_digest, fused_trunk_features
from ..core.query import TaskSpecificModel
from ..obs.journal import JOURNAL
from ..obs.trace import TRACER
from .canonical import TaskQuery, canonical_tasks, payload_key
from .cache import ByteBudgetLRU, CacheStats
from .metrics import ServingMetrics

__all__ = [
    "GatewayConfig",
    "GatewayResponse",
    "PredictionResponse",
    "ServingGateway",
    "SingleFlight",
]

T = TypeVar("T")


def expert_versions(pool, names: Tuple[str, ...]) -> Optional[Tuple[int, ...]]:
    """Snapshot the pool's versions for ``names`` (None if unversioned).

    Builds capture this before touching expert weights and re-check it
    before caching: if an expert was re-extracted mid-build, the stale
    artifact must not be cached (the invalidation listener fired while the
    entry didn't exist yet, so it had nothing to drop).  The library
    version rides along for the same reason — a consolidation in flight
    across a trunk re-extraction must not survive the listener's clear.
    """
    from ..core.pool import LIBRARY_TASK

    getter = getattr(pool, "expert_version", None)
    if getter is None:
        return None
    return tuple(getter(name) for name in names) + (getter(LIBRARY_TASK),)


def run_trunk_forward(trunk, images, metrics) -> "np.ndarray":
    """One shared-trunk forward for prediction serving, metered per mode.

    The trunk-feature cache's miss path: runs the compiled eval-mode
    program (:func:`~repro.core.features.fused_trunk_features`) and records
    it under the ``predict_trunk_fused`` stage; a trunk the compiler cannot
    lower falls back to the autograd engine under the legacy
    ``predict_trunk`` stage plus a ``fused_trunk_fallback`` counter, so the
    two execution modes stay separable in every metrics report.
    """
    start = perf_counter()
    features, used_fused = fused_trunk_features(trunk, images)
    elapsed = perf_counter() - start
    if used_fused:
        metrics.observe("predict_trunk_fused", elapsed)
        stage_name = "predict_trunk_fused"
    else:
        metrics.increment("fused_trunk_fallback")
        metrics.observe("predict_trunk", elapsed)
        stage_name = "predict_trunk"
    if TRACER.enabled:
        TRACER.record_stage(stage_name, elapsed)
    return features


def result_cache_key(
    cache: ByteBudgetLRU, pool, names: Tuple[str, ...], digest: str
) -> Optional[Tuple[str, Tuple[str, ...], object]]:
    """Prediction-result tier key, or None when the tier is disabled.

    One key recipe for the gateway and the cluster's cross-shard path:
    ``(image digest, canonical tasks, expert versions)``.  Versions ride
    in the key, so an entry inserted before a re-extraction can never
    satisfy a lookup after it — the eager drops in the invalidation
    listeners only reclaim the bytes sooner.
    """
    if cache.budget_bytes == 0:
        return None
    return (digest, names, expert_versions(pool, names))


def result_cache_put_guarded(
    cache: ByteBudgetLRU, pool, invalidate_lock, key, logits, class_ids
) -> None:
    """Insert a computed answer under the standard stale-put guard.

    Same contract as the model/payload tiers: the key was snapshotted
    *before* the model was acquired, and is re-derived under the
    invalidation lock here — if an expert (or the library) was re-extracted
    while the answer was being computed, the keys differ and the stale
    answer is not cached.  Entries hold ``(logits, class_ids)`` so a hit
    needs no model at all (not even for the argmax→global-id mapping).
    """
    digest, names, _versions = key
    with invalidate_lock:
        if key == result_cache_key(cache, pool, names, digest):
            cache.put(
                key, (logits, class_ids), int(logits.nbytes + class_ids.nbytes)
            )


def run_fused_prediction(
    model: TaskSpecificModel, features, metrics
) -> Tuple["np.ndarray", "np.ndarray"]:
    """``(class_ids, logits)``: fused heads + argmax, with the standard stages.

    The one post-trunk prediction pipeline, shared by the gateway's
    inline/micro-batched paths and the cluster's cross-shard path so the
    stage names and execution order cannot drift apart.  (A
    prediction-result cache hit skips this entirely — entries carry the
    mapped class ids.)
    """
    with metrics.stage("predict_heads"):
        logits = model.logits_from_features(features)
    with metrics.stage("predict_argmax"):
        return model.classes[logits.argmax(axis=1)], logits


def drop_task_entries(model_cache, payload_cache, name: str) -> int:
    """Drop every model/payload cache entry whose task set includes ``name``.

    Model keys are canonical name tuples; payload keys are
    ``(names, transport)``.  Shared by the gateway and the cluster tiers.
    """
    dropped = 0
    for key in model_cache.keys():
        if name in key:
            dropped += model_cache.discard(key)
    for key in payload_cache.keys():
        key_names, _transport = key
        if name in key_names:
            dropped += payload_cache.discard(key)
    return dropped


def drop_result_entries(result_cache, name: str) -> int:
    """Drop every prediction-result entry whose task set includes ``name``.

    Result keys are built by :func:`result_cache_key` —
    ``(digest, tasks, versions)``.  Entries are version-keyed, so a stale
    one could never be *served*; dropping releases the bytes eagerly, like
    the other tiers.  Shared by the gateway and the cluster tiers.
    """
    dropped = 0
    for key in result_cache.keys():
        if name in key[1]:
            dropped += result_cache.discard(key)
    return dropped


@dataclass(frozen=True)
class GatewayConfig:
    """Operating envelope of a :class:`ServingGateway`."""

    max_workers: int = 4
    model_cache_bytes: int = 128 << 20
    payload_cache_bytes: int = 128 << 20
    #: Budget of the content-addressed trunk-feature cache (0 disables).
    trunk_cache_bytes: int = 64 << 20
    #: Budget of the prediction-result (logits) cache, keyed on
    #: ``(image digest, canonical tasks, expert versions)`` — a fully
    #: repeated request skips even the fused heads (0 disables).
    result_cache_bytes: int = 8 << 20
    #: Hard cap on images per ``submit_predict`` micro-batch drain; bounds
    #: the worst-case latency one drain can add to a small request.
    max_batch_images: int = 2048
    #: Floor of the adaptive drain window (the window starts here, doubles
    #: while drains leave a backlog, and halves back when drains run light).
    min_batch_images: int = 64
    ttl_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.min_batch_images < 1:
            raise ValueError("min_batch_images must be >= 1")
        if self.max_batch_images < self.min_batch_images:
            raise ValueError("max_batch_images must be >= min_batch_images")


@dataclass(frozen=True)
class GatewayResponse:
    """One served query: payload bytes plus service telemetry.

    ``tasks`` is the canonical task order — the payload's head/logit layout.
    """

    payload: bytes
    tasks: Tuple[str, ...]
    transport: str
    payload_bytes: int
    queue_seconds: float
    service_seconds: float
    #: True only when the model tier was consulted and hit; a payload-tier
    #: hit short-circuits before the model tier, leaving this False.
    model_cache_hit: bool
    payload_cache_hit: bool
    coalesced: bool


@dataclass(frozen=True)
class PredictionResponse:
    """One served prediction request: global class ids plus telemetry.

    ``class_ids`` are *global* hierarchy ids (the unified-logit argmax
    mapped through the composite's class table), so clients are agnostic
    to head order.  ``coalesced`` is True when the request shared a
    micro-batched trunk forward with other concurrent requests;
    ``trunk_cache_hit`` when its features came out of the content-addressed
    cache without running the trunk at all.
    """

    class_ids: np.ndarray
    tasks: Tuple[str, ...]
    batch_size: int
    queue_seconds: float
    service_seconds: float
    model_cache_hit: bool
    trunk_cache_hit: bool
    coalesced: bool
    #: True when the whole answer came from the prediction-result cache —
    #: neither the trunk nor the fused heads ran for this request.
    result_cache_hit: bool = False


@dataclass
class _PendingPrediction:
    """One enqueued ``submit_predict`` request awaiting a micro-batch drain."""

    images: np.ndarray
    names: Tuple[str, ...]
    future: "Future[PredictionResponse]"
    enqueued_at: float = field(default_factory=perf_counter)


class _Inflight:
    """Result slot for one coalesced build (leader sets, followers wait)."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: object = None
        self._error: Optional[BaseException] = None

    def set_result(self, value: object) -> None:
        self._value = value
        self._done.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def wait(self) -> object:
        self._done.wait()
        if self._error is not None:
            raise self._error
        return self._value


class SingleFlight:
    """Deduplicate concurrent builds per key (shared by gateway and cluster).

    ``run(key, build)`` executes ``build`` once per key across concurrent
    callers and returns ``(value, coalesced)`` — ``coalesced`` is True for
    callers that waited on another thread's in-flight build.  Errors
    propagate to the leader *and* every follower of that flight.
    """

    def __init__(self) -> None:
        self._gate = threading.Lock()
        self._inflight: Dict[Hashable, _Inflight] = {}

    def run(self, key: Hashable, build: Callable[[], T]) -> Tuple[T, bool]:
        with self._gate:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = self._inflight[key] = _Inflight()
        if not leader:
            return flight.wait(), True  # type: ignore[return-value]
        try:
            value = build()
        except BaseException as error:
            flight.set_exception(error)
            raise
        else:
            flight.set_result(value)
            return value, False
        finally:
            with self._gate:
                self._inflight.pop(key, None)


class ServingGateway:
    """Concurrent serving front door over a :class:`~repro.core.pool.PoolOfExperts`."""

    def __init__(
        self,
        pool,
        config: Optional[GatewayConfig] = None,
        metrics: Optional[ServingMetrics] = None,
        trunk_cache: Optional[TrunkFeatureCache] = None,
        controller=None,
    ) -> None:
        self.pool = pool
        self.config = config or GatewayConfig()
        self.metrics = metrics or ServingMetrics()
        #: Optional repro.control.CacheController: when attached it biases
        #: eviction in every tier, learns build costs, and prefetches hot
        #: payloads through :meth:`prefetch`.
        self.controller = controller
        self.model_cache = ByteBudgetLRU(
            self.config.model_cache_bytes,
            ttl_seconds=self.config.ttl_seconds,
            name="model",
        )
        self.payload_cache = ByteBudgetLRU(
            self.config.payload_cache_bytes,
            ttl_seconds=self.config.ttl_seconds,
            name="payload",
        )
        # trunk features depend only on the frozen library (never on expert
        # versions), so this tier survives expert re-extraction; pass a
        # shared instance to pool hit rates across gateways over one library
        # explicit None check: an empty cache is falsy (len() == 0), and a
        # shared instance usually arrives empty
        self.trunk_cache = (
            trunk_cache
            if trunk_cache is not None
            else TrunkFeatureCache(
                self.config.trunk_cache_bytes, ttl_seconds=self.config.ttl_seconds
            )
        )
        # fully-materialized answers: logits keyed (digest, tasks, versions)
        self.result_cache = ByteBudgetLRU(
            self.config.result_cache_bytes,
            ttl_seconds=self.config.ttl_seconds,
            name="result",
        )
        self._flights = SingleFlight()
        self._predict_lock = threading.Lock()
        # deque: window-bounded drains pop from the head while submitters
        # append to the tail — O(1) each, under the same hot lock
        self._pending_predictions: Deque[_PendingPrediction] = deque()
        # adaptive micro-batch window (images per drain), bounded by
        # [min_batch_images, max_batch_images]; guarded by _predict_lock
        self._predict_window = self.config.min_batch_images
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False
        # Serializes invalidation against version-guarded cache puts: a
        # build checks the expert versions and inserts under this lock, so
        # a concurrent re-extraction either bumps the version before the
        # check (put skipped) or drops the entry after the put — a stale
        # artifact can never survive the listener.
        self._invalidate_lock = threading.Lock()
        # Explicit invalidation: when the pool re-extracts an expert, drop
        # every dependent cache entry now instead of waiting for TTL.
        self._listener = lambda name, version: self._on_pool_update(name)
        add_listener = getattr(pool, "add_listener", None)
        if add_listener is not None:
            add_listener(self._listener)
        if controller is not None:
            controller.attach_gateway(self)

    def _on_pool_update(self, name: str) -> None:
        from ..core.pool import LIBRARY_TASK

        if JOURNAL.enabled:
            JOURNAL.emit(
                "library_update" if name == LIBRARY_TASK else "expert_update",
                task=name,
            )
        if name == LIBRARY_TASK:
            # the trunk itself changed: every consolidated model, payload,
            # cached feature map and cached answer was computed against the
            # old library (the compiled trunk program needs no drop here —
            # it is memoized on the old trunk *object* and dies with it)
            with self._invalidate_lock:
                self.model_cache.clear()
                self.payload_cache.clear()
                self.result_cache.clear()
            self.trunk_cache.clear()
        else:
            self.invalidate_task(name)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def available_tasks(self) -> Tuple[str, ...]:
        return self.pool.expert_names()

    def serve(self, tasks: TaskQuery, transport: str = "float32") -> GatewayResponse:
        """Serve one query on the calling thread (blocking)."""
        return self._serve(tasks, transport, enqueued_at=None)

    def submit(self, tasks: TaskQuery, transport: str = "float32") -> "Future[GatewayResponse]":
        """Dispatch one query onto the worker pool; returns a future.

        The queue-wait between submission and a worker picking the request
        up is recorded in the ``queue`` stage and on the response.
        """
        enqueued_at = perf_counter()
        return self._ensure_executor().submit(self._serve, tasks, transport, enqueued_at)

    def get_model(self, tasks: TaskQuery) -> TaskSpecificModel:
        """The consolidated model for ``tasks``, in canonical task order."""
        model, _ = self._model_for(canonical_tasks(tasks))
        return model

    def prefetch(self, tasks: TaskQuery, transport: str = "float32") -> bool:
        """Warm the payload cache for ``tasks`` without serving a request.

        The self-tuning controller's actuator: builds (and caches) the
        serialized payload exactly like a served miss would — single
        flight, version guard and all — but counts under
        ``prefetch_builds``/the ``prefetch`` stage instead of
        ``requests``, so prefetch traffic stays separable in every
        snapshot.  Returns True when a payload was built, False when one
        was already resident.
        """
        names = canonical_tasks(tasks)
        key = payload_key(names, transport)
        if self.payload_cache.contains(key):
            return False
        with self.metrics.stage("prefetch"):
            self._flights.run(key, lambda: self._build_payload(names, transport, key))
        self.metrics.increment("prefetch_builds")
        return True

    def predict(self, images: np.ndarray, tasks: TaskQuery) -> PredictionResponse:
        """Run prediction through the fused fast path, on the calling thread.

        Pipeline: consolidated model (model cache + single flight) →
        trunk features (content-addressed cache, else one trunk forward) →
        fused multi-head pass → argmax mapped to global class ids.
        """
        return self._predict_one(
            np.asarray(images, dtype=np.float32),
            canonical_tasks(tasks),
            enqueued_at=None,
        )

    def submit_predict(
        self, images: np.ndarray, tasks: TaskQuery
    ) -> "Future[PredictionResponse]":
        """Dispatch a prediction onto the worker pool, micro-batched.

        Concurrent requests enqueue and are drained together by whichever
        worker runs first: the drain runs the shared trunk **once** over
        the union of all uncached images (every composite shares the
        frozen library), then each request's fused heads on its own slice.
        """
        names = canonical_tasks(tasks)
        item = _PendingPrediction(
            np.asarray(images, dtype=np.float32), names, Future()
        )
        executor = self._ensure_executor()
        with self._predict_lock:
            self._pending_predictions.append(item)
        try:
            executor.submit(self._drain_predictions)
        except BaseException:
            # close() raced us between the append and the dispatch: take the
            # item back out so it isn't orphaned with an unresolved future
            with self._predict_lock:
                try:
                    self._pending_predictions.remove(item)
                except ValueError:
                    pass  # a concurrent drain (or close) already took it
            raise
        return item.future

    def cache_stats(self) -> Dict[str, CacheStats]:
        return {
            "model": self.model_cache.stats(),
            "payload": self.payload_cache.stats(),
            "trunk": self.trunk_cache.stats(),
            "result": self.result_cache.stats(),
        }

    @property
    def predict_window(self) -> int:
        """Current adaptive micro-batch window, in images per drain."""
        with self._predict_lock:
            return self._predict_window

    def render_stats(self) -> str:
        return self.metrics.render(cache_stats=self.cache_stats())

    def invalidate_task(self, name: str) -> int:
        """Drop every cached model/payload/result that includes expert ``name``.

        Returns the number of entries dropped.  Called automatically when
        the backing pool re-extracts an expert (version bump); also the hook
        the cluster tier uses after migrating an expert between shards.
        Result entries are version-keyed so a stale one could never be
        *served* — dropping here releases the bytes eagerly, like the other
        tiers.
        """
        with self._invalidate_lock:
            return drop_task_entries(
                self.model_cache, self.payload_cache, name
            ) + drop_result_entries(self.result_cache, name)

    def close(self) -> None:
        remove_listener = getattr(self.pool, "remove_listener", None)
        if remove_listener is not None:
            remove_listener(self._listener)
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        # a submit_predict that raced close() may have enqueued after the
        # last drain ran; fail its future instead of leaving it hanging
        with self._predict_lock:
            leftovers = list(self._pending_predictions)
            self._pending_predictions = deque()
        for item in leftovers:
            item.future.set_exception(RuntimeError("gateway is closed"))

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _serve(
        self, tasks: TaskQuery, transport: str, enqueued_at: Optional[float]
    ) -> GatewayResponse:
        from ..core.server import TRANSPORTS

        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
        start = perf_counter()
        queue_seconds = 0.0
        if enqueued_at is not None:
            queue_seconds = start - enqueued_at
            self.metrics.observe("queue", queue_seconds)
        self.metrics.increment("requests")
        with TRACER.span("gateway.serve") as span:
            try:
                names = canonical_tasks(tasks)
                self.metrics.record_tasks(names)
                if self.controller is not None:
                    self.controller.record_request(names, transport)
                key = payload_key(names, transport)

                payload = self.payload_cache.get(key)
                if payload is not None:
                    model_hit, coalesced, payload_hit = False, False, True
                    if self.controller is not None and self.controller.was_prefetched(key):
                        self.metrics.increment("prefetch_hits")
                else:
                    payload_hit = False
                    (payload, model_hit), coalesced = self._flights.run(
                        key, lambda: self._build_payload(names, transport, key)
                    )
                    if coalesced:
                        self.metrics.increment("coalesced")
            except BaseException:
                self.metrics.increment("errors")
                raise
            span.tag("transport", transport)
            span.tag("tasks", len(names))
            span.tag("payload_cache_hit", payload_hit)
            span.tag("model_cache_hit", model_hit)

        service_seconds = perf_counter() - start
        self.metrics.observe("total", service_seconds)
        return GatewayResponse(
            payload=payload,
            tasks=names,
            transport=transport,
            payload_bytes=len(payload),
            queue_seconds=queue_seconds,
            service_seconds=service_seconds,
            model_cache_hit=model_hit,
            payload_cache_hit=payload_hit,
            coalesced=coalesced,
        )

    def _build_payload(
        self, names: Tuple[str, ...], transport: str, key: Hashable
    ) -> Tuple[bytes, bool]:
        from ..core.server import serialize_task_model

        build_start = perf_counter()
        versions = expert_versions(self.pool, names)
        model, model_hit = self._model_for(names)
        with self.metrics.stage("serialize"):
            payload = serialize_task_model(
                model.network, model.task, self.pool.config, transport=transport
            )
        if self.controller is not None:
            # measured consolidate+serialize cost: the rebuild price the
            # eviction scores weigh against popularity
            self.controller.record_build_cost(
                names, perf_counter() - build_start, len(payload)
            )
        # don't cache if an expert was re-extracted while we were building:
        # the invalidation listener fired before this entry existed (the
        # lock makes check+put atomic against that listener)
        with self._invalidate_lock:
            if versions == expert_versions(self.pool, names):
                self.payload_cache.put(key, payload, len(payload))
        return payload, model_hit

    def _model_for(self, names: Tuple[str, ...]) -> Tuple[TaskSpecificModel, bool]:
        model = self.model_cache.get(names)
        if model is not None:
            return model, True

        def build() -> TaskSpecificModel:
            versions = expert_versions(self.pool, names)
            with self.metrics.stage("consolidate"):
                network, composite = self.pool.consolidate(list(names))
                built = TaskSpecificModel(network, composite)
            with self._invalidate_lock:
                if versions == expert_versions(self.pool, names):
                    self.model_cache.put(names, built, built.cache_nbytes())
            return built

        built, _ = self._flights.run(("model", names), build)
        return built, False

    # ------------------------------------------------------------------
    # Prediction fast path
    # ------------------------------------------------------------------
    def _trunk_features(
        self, images: np.ndarray, digest: Optional[str] = None
    ) -> Tuple[np.ndarray, bool]:
        """Features for ``images`` from the cache or one metered trunk forward.

        The miss path runs the *compiled* eval-mode trunk
        (``predict_trunk_fused`` stage), not the autograd engine — cold
        predictions take the fast path too.
        """
        return self.trunk_cache.get_or_compute(
            images,
            lambda batch: run_trunk_forward(self.pool.library, batch, self.metrics),
            digest=digest,
        )

    def _result_key(
        self, names: Tuple[str, ...], digest: str
    ) -> Optional[Tuple[str, Tuple[str, ...], object]]:
        """Result-cache key for one request, or None when the tier is off."""
        return result_cache_key(self.result_cache, self.pool, names, digest)

    def _predict_one(
        self,
        images: np.ndarray,
        names: Tuple[str, ...],
        enqueued_at: Optional[float],
        features: Optional[np.ndarray] = None,
        trunk_hit: bool = False,
        coalesced: bool = False,
        digest: Optional[str] = None,
    ) -> PredictionResponse:
        start = perf_counter()
        queue_seconds = 0.0
        if enqueued_at is not None:
            queue_seconds = start - enqueued_at
            self.metrics.observe("queue", queue_seconds)
        self.metrics.increment("predictions")
        self.metrics.record_tasks(names)
        if self.controller is not None:
            self.controller.record_request(names)  # popularity only: no payload
        with TRACER.span("gateway.predict") as span:
            try:
                # result lookup FIRST: the key snapshots expert versions before
                # any model/trunk work (check-before-build, like the other
                # tiers — a key built after the model could pair stale logits
                # with fresh versions), and a hit touches no other tier at all
                cached = key = None
                if self.result_cache.budget_bytes:
                    if digest is None:
                        digest = array_digest(images)
                    key = self._result_key(names, digest)
                    cached = self.result_cache.get(key)
                result_hit = cached is not None
                if result_hit:
                    self.metrics.increment("predict_result_hits")
                    _logits, ids = cached
                    model_hit = False  # the model tier was never consulted
                else:
                    model, model_hit = self._model_for(names)
                    if features is None:
                        features, trunk_hit = self._trunk_features(images, digest=digest)
                    ids, logits = run_fused_prediction(model, features, self.metrics)
                    if key is not None:
                        result_cache_put_guarded(
                            self.result_cache,
                            self.pool,
                            self._invalidate_lock,
                            key,
                            logits,
                            ids,
                        )
            except BaseException:
                self.metrics.increment("errors")
                raise
            span.tag("batch", int(images.shape[0]))
            span.tag("tasks", len(names))
            span.tag("result_cache_hit", result_hit)
            span.tag("trunk_cache_hit", trunk_hit)
            span.tag("model_cache_hit", model_hit)
        service_seconds = perf_counter() - start
        self.metrics.observe("predict_total", service_seconds)
        return PredictionResponse(
            class_ids=ids,
            tasks=names,
            batch_size=int(images.shape[0]),
            queue_seconds=queue_seconds,
            service_seconds=service_seconds,
            model_cache_hit=model_hit,
            trunk_cache_hit=trunk_hit,
            coalesced=coalesced,
            result_cache_hit=result_hit,
        )

    def _take_drain_batch(self) -> Tuple[List[_PendingPrediction], int]:
        """Pop one window-bounded micro-batch off the pending queue (FIFO).

        The adaptive window bounds the images a single drain may gather
        (worst-case added latency for the requests inside it); a lone
        oversized request is still taken whole — it cannot be split.
        Leftover requests stay queued and are picked up by the drain tasks
        their own submissions scheduled.  The window doubles (up to
        ``max_batch_images``) when a drain leaves a backlog and halves
        (down to ``min_batch_images``) when a drain runs at under half the
        window — batch more under load, less when idle.
        """
        with self._predict_lock:
            window = self._predict_window
            batch: List[_PendingPrediction] = []
            total = 0
            while self._pending_predictions:
                size = int(self._pending_predictions[0].images.shape[0])
                if batch and total + size > window:
                    break
                batch.append(self._pending_predictions.popleft())
                total += size
            if self._pending_predictions:
                self._predict_window = min(window * 2, self.config.max_batch_images)
            elif batch and total <= window // 2:
                self._predict_window = max(window // 2, self.config.min_batch_images)
        return batch, total

    def _drain_predictions(self) -> None:
        """Serve pending predictions in one window-bounded micro-batch.

        Whichever worker runs first takes up to one adaptive window's worth
        of the queue: requests with cached answers resolve from the result
        cache, requests with cached features from the trunk cache, and the
        rest are concatenated (per image geometry) and pushed through
        **one** compiled-trunk forward, then each request runs its own
        fused heads on its slice.  Every request schedules a drain task, so
        leftovers beyond the window are served by later tasks; workers that
        find the queue empty return immediately.
        """
        batch, total_images = self._take_drain_batch()
        if not batch:
            return
        coalesced = len(batch) > 1
        self.metrics.increment("predict_batches")
        # drain size telemetry (unit: images, not seconds)
        self.metrics.observe("predict_drain_images", float(total_images))
        if coalesced:
            self.metrics.increment("predict_coalesced", len(batch) - 1)

        # id(item) -> (features|None, trunk_hit, digest) | error
        resolved: Dict[int, object] = {}
        # dedupe by content digest: byte-identical request batches share
        # one representative in the stacked forward (and one cache entry)
        by_digest: Dict[str, List[_PendingPrediction]] = {}
        for item in batch:
            digest = array_digest(item.images)
            key = self._result_key(item.names, digest)
            # stats-neutral peek: _predict_one does the counted lookup (or,
            # if the entry is evicted meanwhile, recomputes) — no trunk work
            if key is not None and self.result_cache.contains(key):
                resolved[id(item)] = (None, False, digest)
                continue
            cached = self.trunk_cache.get(digest)
            if cached is not None:
                resolved[id(item)] = (cached, True, digest)
            else:
                by_digest.setdefault(digest, []).append(item)
        groups: Dict[Tuple[int, ...], List[str]] = {}
        for digest, items in by_digest.items():
            groups.setdefault(items[0].images.shape[1:], []).append(digest)
        for digests in groups.values():
            stacked = np.concatenate(
                [by_digest[d][0].images for d in digests], axis=0
            )
            token = self.trunk_cache.generation()
            try:
                features = run_trunk_forward(self.pool.library, stacked, self.metrics)
            except BaseException as error:
                for digest in digests:
                    for item in by_digest[digest]:
                        resolved[id(item)] = error
                continue
            offset = 0
            for digest in digests:
                sharers = by_digest[digest]
                count = sharers[0].images.shape[0]
                chunk = np.ascontiguousarray(features[offset : offset + count])
                offset += count
                self.trunk_cache.put_guarded(digest, chunk, token)
                for item in sharers:
                    resolved[id(item)] = (chunk, False, digest)

        for item in batch:
            entry = resolved[id(item)]
            if isinstance(entry, BaseException):
                # the shared trunk forward failed: account these requests
                # the same way the inline path would (queue + counters)
                self.metrics.observe("queue", perf_counter() - item.enqueued_at)
                self.metrics.increment("predictions")
                self.metrics.increment("errors")
                item.future.set_exception(entry)
                continue
            try:
                item_features, trunk_hit, digest = entry
                response = self._predict_one(
                    item.images,
                    item.names,
                    item.enqueued_at,
                    features=item_features,
                    trunk_hit=trunk_hit,
                    coalesced=coalesced,
                    digest=digest,
                )
            except BaseException as error:
                item.future.set_exception(error)
            else:
                item.future.set_result(response)

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        # _closed is checked under the same lock that creates the executor so
        # a submit racing with close() cannot spawn an orphaned pool.
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.max_workers,
                    thread_name_prefix="poe-serve",
                )
            return self._executor

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ServingGateway(tasks={len(self.available_tasks())}, "
            f"workers={self.config.max_workers})"
        )
