"""The serving gateway: canonicalize → coalesce → cache → consolidate.

:class:`ServingGateway` is the concurrent front door of the model-delivery
service (paper Fig. 1b at production traffic).  A request travels through
four stages, each one metered:

1. **canonicalize** — the query's task names are sorted/deduplicated
   (:func:`repro.serving.canonical.canonical_tasks`) so every permutation
   of the same composite task shares one identity.  Served payloads lay
   their heads out in this canonical order and advertise it via
   :attr:`GatewayResponse.tasks`; predictions are global class ids either
   way, so clients are order-agnostic.
2. **payload cache** — a byte-budgeted LRU keyed on ``(canonical tasks,
   transport)`` skips ``np.savez_compressed`` (the dominant serving cost)
   for repeated shipments.
3. **single flight** — concurrent duplicate requests coalesce onto one
   in-flight build; followers block on the leader's result instead of
   consolidating/serializing the same model N times.
4. **model cache + build** — a second LRU tier holds consolidated
   :class:`~repro.core.query.TaskSpecificModel`\\ s (cheap: weights are
   shared by reference with the pool, the cache bounds wrapper count), and
   a miss falls through to train-free consolidation + serialization.

``serve()`` runs the pipeline inline on the caller's thread (single-flight
still applies across threads); ``submit()`` dispatches onto a worker pool
and additionally records queue-wait latency, for open-loop load.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

from ..core.query import TaskSpecificModel
from .canonical import TaskQuery, canonical_tasks, payload_key
from .cache import BYTES_PER_PARAM, ByteBudgetLRU, CacheStats
from .metrics import ServingMetrics

__all__ = ["GatewayConfig", "GatewayResponse", "ServingGateway", "SingleFlight"]

T = TypeVar("T")


def expert_versions(pool, names: Tuple[str, ...]) -> Optional[Tuple[int, ...]]:
    """Snapshot the pool's versions for ``names`` (None if unversioned).

    Builds capture this before touching expert weights and re-check it
    before caching: if an expert was re-extracted mid-build, the stale
    artifact must not be cached (the invalidation listener fired while the
    entry didn't exist yet, so it had nothing to drop).
    """
    getter = getattr(pool, "expert_version", None)
    if getter is None:
        return None
    return tuple(getter(name) for name in names)


def drop_task_entries(model_cache, payload_cache, name: str) -> int:
    """Drop every model/payload cache entry whose task set includes ``name``.

    Model keys are canonical name tuples; payload keys are
    ``(names, transport)``.  Shared by the gateway and the cluster tiers.
    """
    dropped = 0
    for key in model_cache.keys():
        if name in key:
            dropped += model_cache.discard(key)
    for key in payload_cache.keys():
        key_names, _transport = key
        if name in key_names:
            dropped += payload_cache.discard(key)
    return dropped


@dataclass(frozen=True)
class GatewayConfig:
    """Operating envelope of a :class:`ServingGateway`."""

    max_workers: int = 4
    model_cache_bytes: int = 128 << 20
    payload_cache_bytes: int = 128 << 20
    ttl_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")


@dataclass(frozen=True)
class GatewayResponse:
    """One served query: payload bytes plus service telemetry.

    ``tasks`` is the canonical task order — the payload's head/logit layout.
    """

    payload: bytes
    tasks: Tuple[str, ...]
    transport: str
    payload_bytes: int
    queue_seconds: float
    service_seconds: float
    #: True only when the model tier was consulted and hit; a payload-tier
    #: hit short-circuits before the model tier, leaving this False.
    model_cache_hit: bool
    payload_cache_hit: bool
    coalesced: bool


class _Inflight:
    """Result slot for one coalesced build (leader sets, followers wait)."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: object = None
        self._error: Optional[BaseException] = None

    def set_result(self, value: object) -> None:
        self._value = value
        self._done.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def wait(self) -> object:
        self._done.wait()
        if self._error is not None:
            raise self._error
        return self._value


class SingleFlight:
    """Deduplicate concurrent builds per key (shared by gateway and cluster).

    ``run(key, build)`` executes ``build`` once per key across concurrent
    callers and returns ``(value, coalesced)`` — ``coalesced`` is True for
    callers that waited on another thread's in-flight build.  Errors
    propagate to the leader *and* every follower of that flight.
    """

    def __init__(self) -> None:
        self._gate = threading.Lock()
        self._inflight: Dict[Hashable, _Inflight] = {}

    def run(self, key: Hashable, build: Callable[[], T]) -> Tuple[T, bool]:
        with self._gate:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = self._inflight[key] = _Inflight()
        if not leader:
            return flight.wait(), True  # type: ignore[return-value]
        try:
            value = build()
        except BaseException as error:
            flight.set_exception(error)
            raise
        else:
            flight.set_result(value)
            return value, False
        finally:
            with self._gate:
                self._inflight.pop(key, None)


class ServingGateway:
    """Concurrent serving front door over a :class:`~repro.core.pool.PoolOfExperts`."""

    def __init__(
        self,
        pool,
        config: Optional[GatewayConfig] = None,
        metrics: Optional[ServingMetrics] = None,
    ) -> None:
        self.pool = pool
        self.config = config or GatewayConfig()
        self.metrics = metrics or ServingMetrics()
        self.model_cache = ByteBudgetLRU(
            self.config.model_cache_bytes, ttl_seconds=self.config.ttl_seconds
        )
        self.payload_cache = ByteBudgetLRU(
            self.config.payload_cache_bytes, ttl_seconds=self.config.ttl_seconds
        )
        self._flights = SingleFlight()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False
        # Serializes invalidation against version-guarded cache puts: a
        # build checks the expert versions and inserts under this lock, so
        # a concurrent re-extraction either bumps the version before the
        # check (put skipped) or drops the entry after the put — a stale
        # artifact can never survive the listener.
        self._invalidate_lock = threading.Lock()
        # Explicit invalidation: when the pool re-extracts an expert, drop
        # every dependent cache entry now instead of waiting for TTL.
        self._listener = lambda name, version: self.invalidate_task(name)
        add_listener = getattr(pool, "add_listener", None)
        if add_listener is not None:
            add_listener(self._listener)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def available_tasks(self) -> Tuple[str, ...]:
        return self.pool.expert_names()

    def serve(self, tasks: TaskQuery, transport: str = "float32") -> GatewayResponse:
        """Serve one query on the calling thread (blocking)."""
        return self._serve(tasks, transport, enqueued_at=None)

    def submit(self, tasks: TaskQuery, transport: str = "float32") -> "Future[GatewayResponse]":
        """Dispatch one query onto the worker pool; returns a future.

        The queue-wait between submission and a worker picking the request
        up is recorded in the ``queue`` stage and on the response.
        """
        enqueued_at = perf_counter()
        return self._ensure_executor().submit(self._serve, tasks, transport, enqueued_at)

    def get_model(self, tasks: TaskQuery) -> TaskSpecificModel:
        """The consolidated model for ``tasks``, in canonical task order."""
        model, _ = self._model_for(canonical_tasks(tasks))
        return model

    def cache_stats(self) -> Dict[str, CacheStats]:
        return {"model": self.model_cache.stats(), "payload": self.payload_cache.stats()}

    def render_stats(self) -> str:
        return self.metrics.render(cache_stats=self.cache_stats())

    def invalidate_task(self, name: str) -> int:
        """Drop every cached model/payload that includes expert ``name``.

        Returns the number of entries dropped.  Called automatically when
        the backing pool re-extracts an expert (version bump); also the hook
        the cluster tier uses after migrating an expert between shards.
        """
        with self._invalidate_lock:
            return drop_task_entries(self.model_cache, self.payload_cache, name)

    def close(self) -> None:
        remove_listener = getattr(self.pool, "remove_listener", None)
        if remove_listener is not None:
            remove_listener(self._listener)
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _serve(
        self, tasks: TaskQuery, transport: str, enqueued_at: Optional[float]
    ) -> GatewayResponse:
        from ..core.server import TRANSPORTS

        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
        start = perf_counter()
        queue_seconds = 0.0
        if enqueued_at is not None:
            queue_seconds = start - enqueued_at
            self.metrics.observe("queue", queue_seconds)
        self.metrics.increment("requests")
        try:
            names = canonical_tasks(tasks)
            key = payload_key(names, transport)

            payload = self.payload_cache.get(key)
            if payload is not None:
                model_hit, coalesced, payload_hit = False, False, True
            else:
                payload_hit = False
                (payload, model_hit), coalesced = self._flights.run(
                    key, lambda: self._build_payload(names, transport, key)
                )
                if coalesced:
                    self.metrics.increment("coalesced")
        except BaseException:
            self.metrics.increment("errors")
            raise

        service_seconds = perf_counter() - start
        self.metrics.observe("total", service_seconds)
        return GatewayResponse(
            payload=payload,
            tasks=names,
            transport=transport,
            payload_bytes=len(payload),
            queue_seconds=queue_seconds,
            service_seconds=service_seconds,
            model_cache_hit=model_hit,
            payload_cache_hit=payload_hit,
            coalesced=coalesced,
        )

    def _build_payload(
        self, names: Tuple[str, ...], transport: str, key: Hashable
    ) -> Tuple[bytes, bool]:
        from ..core.server import serialize_task_model

        versions = expert_versions(self.pool, names)
        model, model_hit = self._model_for(names)
        with self.metrics.stage("serialize"):
            payload = serialize_task_model(
                model.network, model.task, self.pool.config, transport=transport
            )
        # don't cache if an expert was re-extracted while we were building:
        # the invalidation listener fired before this entry existed (the
        # lock makes check+put atomic against that listener)
        with self._invalidate_lock:
            if versions == expert_versions(self.pool, names):
                self.payload_cache.put(key, payload, len(payload))
        return payload, model_hit

    def _model_for(self, names: Tuple[str, ...]) -> Tuple[TaskSpecificModel, bool]:
        model = self.model_cache.get(names)
        if model is not None:
            return model, True

        def build() -> TaskSpecificModel:
            versions = expert_versions(self.pool, names)
            with self.metrics.stage("consolidate"):
                network, composite = self.pool.consolidate(list(names))
                built = TaskSpecificModel(network, composite)
            with self._invalidate_lock:
                if versions == expert_versions(self.pool, names):
                    self.model_cache.put(
                        names, built, built.num_params() * BYTES_PER_PARAM
                    )
            return built

        built, _ = self._flights.run(("model", names), build)
        return built, False

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        # _closed is checked under the same lock that creates the executor so
        # a submit racing with close() cannot spawn an orphaned pool.
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.max_workers,
                    thread_name_prefix="poe-serve",
                )
            return self._executor

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ServingGateway(tasks={len(self.available_tasks())}, "
            f"workers={self.config.max_workers})"
        )
