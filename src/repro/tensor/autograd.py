"""Global autograd state.

The tensor engine records a reverse-mode computation graph whenever gradient
tracking is enabled.  Training code can disable tracking for evaluation and
inference with the :func:`no_grad` context manager, exactly mirroring the
semantics of the PyTorch API the paper's reference implementation relied on.
"""

from __future__ import annotations

import contextlib
import threading

__all__ = ["is_grad_enabled", "set_grad_enabled", "no_grad", "enable_grad"]

_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return getattr(_STATE, "enabled", True)


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable gradient tracking for the calling thread."""
    _STATE.enabled = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Used by evaluation loops and, crucially, by PoE's train-free knowledge
    consolidation: assembling a task-specific model never needs gradients.
    """
    previous = is_grad_enabled()
    set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


@contextlib.contextmanager
def enable_grad():
    """Context manager that re-enables graph recording (inverse of no_grad)."""
    previous = is_grad_enabled()
    set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(previous)
