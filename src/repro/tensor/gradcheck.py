"""Numerical gradient checking used by the property-based test suite.

Central finite differences in float64 against the autograd backward pass.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``fn(*inputs).sum()`` w.r.t. one input."""
    base = [np.asarray(a, dtype=np.float64).copy() for a in inputs]
    grad = np.zeros_like(base[index])
    flat = base[index].reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*[Tensor(a) for a in base]).sum().item())
        flat[i] = original - eps
        minus = float(fn(*[Tensor(a) for a in base]).sum().item())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    eps: float = 1e-5,
) -> bool:
    """Verify autograd gradients of ``fn`` against finite differences.

    ``fn`` receives Tensors and must return a Tensor; the check reduces the
    output with ``sum`` so any output shape works.  Raises ``AssertionError``
    with a diagnostic on mismatch, returns True on success.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in inputs]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = fn(*tensors)
    out.sum().backward()
    for i, tensor in enumerate(tensors):
        analytic = tensor.grad
        if analytic is None:
            analytic = np.zeros_like(arrays[i])
        numeric = numerical_gradient(fn, arrays, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
