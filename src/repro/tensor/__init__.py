"""From-scratch numpy tensor engine with reverse-mode autodiff.

This package replaces PyTorch as the substrate for the reproduction (see
DESIGN.md §2).  Public surface:

* :class:`~repro.tensor.tensor.Tensor` — the autograd array type.
* :mod:`~repro.tensor.functional` — activations and the paper's losses.
* :mod:`~repro.tensor.conv` — im2col convolution and pooling.
* :func:`~repro.tensor.autograd.no_grad` — disable graph recording.
* :func:`~repro.tensor.gradcheck.gradcheck` — numerical gradient checking.
"""

from . import functional
from .autograd import enable_grad, is_grad_enabled, no_grad, set_grad_enabled
from .conv import avg_pool2d, conv2d, conv_output_size, global_avg_pool2d, max_pool2d
from .gradcheck import gradcheck, numerical_gradient
from .tensor import DEFAULT_DTYPE, Tensor

__all__ = [
    "Tensor",
    "DEFAULT_DTYPE",
    "functional",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "conv2d",
    "avg_pool2d",
    "max_pool2d",
    "global_avg_pool2d",
    "conv_output_size",
    "gradcheck",
    "numerical_gradient",
]
