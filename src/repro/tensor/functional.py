"""Functional neural-network operations and the paper's loss functions.

Everything the distillation framework needs lives here:

* classification losses (cross-entropy with hard targets),
* the standard knowledge-distillation loss ``L_KD`` (paper Eq. 1),
* the conditional-distillation pieces ``L_soft`` (Eq. 3) and ``L_scale``
  (Eq. 4), assembled into ``L_CKD`` (Eq. 2) by :mod:`repro.distill.ckd`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor

__all__ = [
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "kd_loss",
    "kl_div_from_logits",
    "l1_loss",
    "mse_loss",
    "one_hot",
    "dropout",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    return x - x.logsumexp(axis=axis, keepdims=True)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label vector."""
    labels = np.asarray(labels)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given log-probabilities."""
    labels = np.asarray(labels)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits and integer hard targets.

    This is the loss used by the paper's Scratch and Transfer baselines
    (Figure 2a) — the one that produces *overconfident* experts because it
    only ever sees in-distribution hard targets.
    """
    return nll_loss(log_softmax(logits, axis=-1), labels)


def kl_div_from_logits(
    teacher_logits: Tensor, student_logits: Tensor, temperature: float = 1.0
) -> Tensor:
    """``T² · D_KL( softmax(t/T) || softmax(s/T) )`` averaged over the batch.

    The KL divergence of paper Eq. (1)/(3).  Gradients flow only into the
    student; the teacher side is detached, as in standard distillation.

    The conventional ``T²`` factor (Hinton et al., 2015) keeps the gradient
    magnitude of the softened objective comparable to a hard cross-entropy,
    so distillation and the cross-entropy baselines can share one learning
    rate, exactly as the paper's single experimental configuration does.
    """
    t = teacher_logits.detach() * (1.0 / temperature)
    s = student_logits * (1.0 / temperature)
    log_p = log_softmax(t, axis=-1)  # teacher log-probs (constant)
    log_q = log_softmax(s, axis=-1)  # student log-probs
    p = log_p.exp()
    per_sample = (p * (log_p - log_q)).sum(axis=-1)
    return per_sample.mean() * (temperature * temperature)


def kd_loss(
    teacher_logits: Tensor, student_logits: Tensor, temperature: float = 4.0
) -> Tensor:
    """Standard knowledge-distillation loss ``L_KD`` (paper Eq. 1)."""
    return kl_div_from_logits(teacher_logits, student_logits, temperature)


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error.

    The paper's ``L_scale`` (Eq. 4) uses an L1 match of raw sub-logits:
    robust to outliers, it transfers the *scale* of the oracle's logits
    rather than their exact values, which is what makes independently
    extracted experts concatenable (the "logit scale problem", §4.2).
    """
    return (prediction - target.detach()).abs().mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error (used by the L2 variant of the scale ablation)."""
    diff = prediction - target.detach()
    return (diff * diff).mean()


def dropout(x: Tensor, p: float, rng: Optional[np.random.Generator] = None, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(mask)
