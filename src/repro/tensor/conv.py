"""Convolution and pooling primitives (im2col based) with custom backward.

Convolutions dominate the runtime of every experiment, so rather than
composing them from elementwise autograd ops we implement them as fused
autograd nodes whose forward/backward are single big matrix multiplies.

Layout convention is NCHW throughout (batch, channels, height, width), the
same as the paper's PyTorch reference code.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .tensor import Tensor

__all__ = [
    "conv2d",
    "avg_pool2d",
    "max_pool2d",
    "global_avg_pool2d",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    return (size + 2 * padding - kernel) // stride + 1


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N, C, H, W) into columns of shape (N*OH*OW, C*kh*kw)."""
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    strides = x.strides
    # View of shape (N, C, OH, OW, KH, KW) without copying.
    shape = (n, c, oh, ow, kh, kw)
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # (N, OH, OW, C, KH, KW) -> (N*OH*OW, C*KH*KW)
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Fold column gradients back into an image gradient (inverse of im2col)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    grad_padded = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    # Accumulate each kernel offset with slice arithmetic (vectorised col2im).
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            grad_padded[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, :, :, i, j]
    if padding > 0:
        return grad_padded[:, :, padding:-padding, padding:-padding]
    return grad_padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2D cross-correlation, ``weight`` of shape (C_out, C_in, KH, KW)."""
    n, c, h, w = x.shape
    c_out, c_in, kh, kw = weight.shape
    if c_in != c:
        raise ValueError(f"conv2d channel mismatch: input has {c}, weight expects {c_in}")
    cols, oh, ow = _im2col(x.data, kh, kw, stride, padding)
    w2 = weight.data.reshape(c_out, -1)
    out_data = cols @ w2.T  # (N*OH*OW, C_out)
    if bias is not None:
        out_data = out_data + bias.data
    out_data = out_data.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        # g: (N, C_out, OH, OW) -> (N*OH*OW, C_out)
        g2 = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        if bias is not None and bias.requires_grad:
            out._send(bias, g2.sum(axis=0))
        if weight.requires_grad:
            gw = g2.T @ cols  # (C_out, C*KH*KW)
            out._send(weight, gw.reshape(weight.shape))
        if x.requires_grad:
            gcols = g2 @ w2  # (N*OH*OW, C*KH*KW)
            gx = _col2im(gcols, (n, c, h, w), kh, kw, stride, padding, oh, ow)
            out._send(x, gx)

    out = Tensor._make(np.ascontiguousarray(out_data), parents, "conv2d", backward)
    return out


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling with square kernel (no padding)."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    cols, _, _ = _im2col(
        x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0
    )  # (N*C*OH*OW, K*K)
    out_data = cols.mean(axis=1).reshape(n, c, oh, ow)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        scale = 1.0 / (kernel * kernel)
        gcols = np.repeat(g.reshape(-1, 1), kernel * kernel, axis=1) * scale
        gx = _col2im(gcols, (n * c, 1, h, w), kernel, kernel, stride, 0, oh, ow)
        out._send(x, gx.reshape(n, c, h, w))

    out = Tensor._make(out_data, (x,), "avg_pool2d", backward)
    return out


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling with square kernel (no padding)."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    cols, _, _ = _im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    arg = cols.argmax(axis=1)
    out_data = cols[np.arange(cols.shape[0]), arg].reshape(n, c, oh, ow)

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gcols = np.zeros_like(cols)
        gcols[np.arange(cols.shape[0]), arg] = g.reshape(-1)
        gx = _col2im(gcols, (n * c, 1, h, w), kernel, kernel, stride, 0, oh, ow)
        out._send(x, gx.reshape(n, c, h, w))

    out = Tensor._make(out_data, (x,), "max_pool2d", backward)
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, returning (N, C)."""
    return x.mean(axis=(2, 3))
