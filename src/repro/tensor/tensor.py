"""A numpy-backed tensor with reverse-mode automatic differentiation.

This module is the lowest substrate of the reproduction.  The paper's
reference implementation was written in PyTorch; no deep-learning framework is
available in this environment, so we implement the minimal-but-complete
tensor engine that every higher layer (``repro.nn``, ``repro.distill``,
``repro.core``) builds on.

Design notes
------------
* Reverse-mode autodiff with a topologically-sorted backward pass over a
  dynamically recorded graph (define-by-run), like PyTorch.
* Full numpy broadcasting is supported; gradients are "unbroadcast" by
  summing over broadcast axes.
* Gradient tracking obeys :mod:`repro.tensor.autograd`'s global switch so
  evaluation and PoE's train-free consolidation pay no autograd overhead.
* dtype defaults to float32 for speed; gradcheck tests run in float64.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from .autograd import is_grad_enabled, no_grad

__all__ = ["Tensor", "DEFAULT_DTYPE"]

DEFAULT_DTYPE = np.float32

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    numpy broadcasting can add leading axes and stretch size-1 axes; the
    gradient of a broadcast is the sum over every stretched axis.
    """
    if grad.shape == shape:
        return grad
    # Sum out any prepended broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were originally size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype or DEFAULT_DTYPE)


class Tensor:
    """A multi-dimensional array that records operations for backprop.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts, or another Tensor (copied view).
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op", "_accumulate")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _op: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        was_array = isinstance(data, (np.ndarray, np.generic))
        arr = np.asarray(data)
        if arr.dtype.kind == "f":
            # float64 ndarrays are kept (gradcheck precision); python floats
            # and lists default to float32 like everything else.
            if arr.dtype == np.float64 and was_array:
                pass
            elif arr.dtype != DEFAULT_DTYPE:
                arr = arr.astype(DEFAULT_DTYPE)
        elif arr.dtype.kind not in "iub":
            arr = arr.astype(DEFAULT_DTYPE)
        self.data = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents = _parents
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        out = Tensor(self.data.astype(dtype), requires_grad=False)
        return out

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        op: str,
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output, recording the graph only when it matters."""
        track = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=track, _parents=parents if track else (), _op=op)
        if track:
            out._backward = backward
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order of the graph above `self`.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and not node._parents:
                # Leaf tensor: accumulate.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
            if node._backward is not None:
                with no_grad():
                    node._accumulate = grads  # type: ignore[attr-defined]
                    try:
                        node._backward(node_grad)
                    finally:
                        del node._accumulate  # type: ignore[attr-defined]
            # Leaves with parents recorded (shouldn't happen) are ignored.

    def _send(self, parent: "Tensor", grad: np.ndarray) -> None:
        """Accumulate ``grad`` for ``parent`` during an active backward pass."""
        store: dict[int, np.ndarray] = self._accumulate  # type: ignore[attr-defined]
        key = id(parent)
        if key in store:
            store[key] = store[key] + grad
        else:
            store[key] = grad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.dtype))
        out_data = self.data + other_t.data

        def backward(g: np.ndarray, self_=self, other_=other_t) -> None:
            if self_.requires_grad:
                out._send(self_, _unbroadcast(g, self_.shape))
            if other_.requires_grad:
                out._send(other_, _unbroadcast(g, other_.shape))

        out = Tensor._make(out_data, (self, other_t), "add", backward)
        return out

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray, self_=self) -> None:
            if self_.requires_grad:
                out._send(self_, -g)

        out = Tensor._make(-self.data, (self,), "neg", backward)
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.dtype))
        out_data = self.data - other_t.data

        def backward(g: np.ndarray, self_=self, other_=other_t) -> None:
            if self_.requires_grad:
                out._send(self_, _unbroadcast(g, self_.shape))
            if other_.requires_grad:
                out._send(other_, _unbroadcast(-g, other_.shape))

        out = Tensor._make(out_data, (self, other_t), "sub", backward)
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other, self.dtype)).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.dtype))
        out_data = self.data * other_t.data

        def backward(g: np.ndarray, self_=self, other_=other_t) -> None:
            if self_.requires_grad:
                out._send(self_, _unbroadcast(g * other_.data, self_.shape))
            if other_.requires_grad:
                out._send(other_, _unbroadcast(g * self_.data, other_.shape))

        out = Tensor._make(out_data, (self, other_t), "mul", backward)
        return out

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.dtype))
        out_data = self.data / other_t.data

        def backward(g: np.ndarray, self_=self, other_=other_t) -> None:
            if self_.requires_grad:
                out._send(self_, _unbroadcast(g / other_.data, self_.shape))
            if other_.requires_grad:
                out._send(
                    other_,
                    _unbroadcast(-g * self_.data / (other_.data ** 2), other_.shape),
                )

        out = Tensor._make(out_data, (self, other_t), "div", backward)
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other, self.dtype)).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g: np.ndarray, self_=self, p=exponent) -> None:
            if self_.requires_grad:
                out._send(self_, g * p * self_.data ** (p - 1))

        out = Tensor._make(out_data, (self,), "pow", backward)
        return out

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray, self_=self) -> None:
            if self_.requires_grad:
                out._send(self_, g * out.data)

        out = Tensor._make(out_data, (self,), "exp", backward)
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray, self_=self) -> None:
            if self_.requires_grad:
                out._send(self_, g / self_.data)

        out = Tensor._make(out_data, (self,), "log", backward)
        return out

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray, self_=self) -> None:
            if self_.requires_grad:
                out._send(self_, g * 0.5 / out.data)

        out = Tensor._make(out_data, (self,), "sqrt", backward)
        return out

    def abs(self) -> "Tensor":
        """Elementwise absolute value; subgradient at 0 is 0 (as in PyTorch).

        Needed by the paper's L1 ``L_scale`` regularizer (Eq. 4).
        """
        out_data = np.abs(self.data)

        def backward(g: np.ndarray, self_=self) -> None:
            if self_.requires_grad:
                out._send(self_, g * np.sign(self_.data))

        out = Tensor._make(out_data, (self,), "abs", backward)
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray, self_=self) -> None:
            if self_.requires_grad:
                out._send(self_, g * (1.0 - out.data ** 2))

        out = Tensor._make(out_data, (self,), "tanh", backward)
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray, self_=self) -> None:
            if self_.requires_grad:
                out._send(self_, g * out.data * (1.0 - out.data))

        out = Tensor._make(out_data, (self,), "sigmoid", backward)
        return out

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(g: np.ndarray, self_=self) -> None:
            if self_.requires_grad:
                out._send(self_, g * (self_.data > 0))

        out = Tensor._make(out_data, (self,), "relu", backward)
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(g: np.ndarray, self_=self, lo=low, hi=high) -> None:
            if self_.requires_grad:
                mask = (self_.data >= lo) & (self_.data <= hi)
                out._send(self_, g * mask)

        out = Tensor._make(out_data, (self,), "clip", backward)
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        if not isinstance(other, Tensor):
            other = Tensor(_as_array(other, self.dtype))
        out_data = self.data @ other.data

        def backward(g: np.ndarray, a=self, b=other) -> None:
            if a.data.ndim == 1 and b.data.ndim == 1:  # dot product
                if a.requires_grad:
                    out._send(a, g * b.data)
                if b.requires_grad:
                    out._send(b, g * a.data)
                return
            if a.requires_grad:
                if b.data.ndim == 1:
                    ga = np.expand_dims(g, -1) * b.data
                else:
                    ga = g @ np.swapaxes(b.data, -1, -2)
                out._send(a, _unbroadcast(ga, a.shape))
            if b.requires_grad:
                if a.data.ndim == 1:
                    gb = np.outer(a.data, g)
                else:
                    gb = np.swapaxes(a.data, -1, -2) @ g
                out._send(b, _unbroadcast(gb, b.shape))

        out = Tensor._make(out_data, (self, other), "matmul", backward)
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray, self_=self, ax=axis, kd=keepdims) -> None:
            if not self_.requires_grad:
                return
            grad = g
            if ax is not None and not kd:
                axes = (ax,) if isinstance(ax, int) else tuple(ax)
                axes = tuple(a % self_.ndim for a in axes)
                for a in sorted(axes):
                    grad = np.expand_dims(grad, a)
            out._send(self_, np.broadcast_to(grad, self_.shape).astype(self_.dtype, copy=False))

        out = Tensor._make(out_data, (self,), "sum", backward)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased variance (divides by N), matching batch-norm statistics."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray, self_=self, ax=axis, kd=keepdims) -> None:
            if not self_.requires_grad:
                return
            if ax is None:
                mask = self_.data == self_.data.max()
                grad = mask * (g / mask.sum())
            else:
                expanded = self_.data.max(axis=ax, keepdims=True)
                mask = self_.data == expanded
                counts = mask.sum(axis=ax, keepdims=True)
                gg = g if kd else np.expand_dims(g, ax)
                grad = mask * (gg / counts)
            out._send(self_, grad.astype(self_.dtype, copy=False))

        out = Tensor._make(out_data, (self,), "max", backward)
        return out

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        """Numerically stable log-sum-exp with exact softmax backward."""
        m = self.data.max(axis=axis, keepdims=True)
        shifted = self.data - m
        s = np.exp(shifted).sum(axis=axis, keepdims=True)
        out_data = np.log(s) + m
        if not keepdims:
            out_data = np.squeeze(out_data, axis=axis)

        def backward(g: np.ndarray, self_=self, ax=axis, kd=keepdims) -> None:
            if not self_.requires_grad:
                return
            soft = np.exp(self_.data - m) / s
            gg = g if kd else np.expand_dims(g, ax)
            out._send(self_, (gg * soft).astype(self_.dtype, copy=False))

        out = Tensor._make(out_data, (self,), "logsumexp", backward)
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray, self_=self) -> None:
            if self_.requires_grad:
                out._send(self_, g.reshape(self_.shape))

        out = Tensor._make(out_data, (self,), "reshape", backward)
        return out

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(g: np.ndarray, self_=self, inv=inverse) -> None:
            if self_.requires_grad:
                out._send(self_, g.transpose(inv))

        out = Tensor._make(out_data, (self,), "transpose", backward)
        return out

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g: np.ndarray, self_=self, idx=index) -> None:
            if self_.requires_grad:
                grad = np.zeros_like(self_.data)
                np.add.at(grad, idx, g)
                out._send(self_, grad)

        out = Tensor._make(out_data, (self,), "getitem", backward)
        return out

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the trailing two (spatial) axes of an NCHW tensor."""
        if padding == 0:
            return self
        pads = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out_data = np.pad(self.data, pads)

        def backward(g: np.ndarray, self_=self, p=padding) -> None:
            if self_.requires_grad:
                out._send(self_, g[..., p:-p, p:-p])

        out = Tensor._make(out_data, (self,), "pad2d", backward)
        return out

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis``.

        This op is the heart of the paper's train-free knowledge
        consolidation: expert sub-logits are concatenated into one unified
        logit vector (Figure 3).
        """
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g: np.ndarray, parts=tuple(tensors), offs=offsets, ax=axis) -> None:
            slicer = [slice(None)] * g.ndim
            for tensor, start, stop in zip(parts, offs[:-1], offs[1:]):
                if tensor.requires_grad:
                    slicer[ax] = slice(int(start), int(stop))
                    out._send(tensor, g[tuple(slicer)])

        out = Tensor._make(out_data, tuple(tensors), "concat", backward)
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(g: np.ndarray, parts=tuple(tensors), ax=axis) -> None:
            moved = np.moveaxis(g, ax, 0)
            for i, tensor in enumerate(parts):
                if tensor.requires_grad:
                    out._send(tensor, moved[i])

        out = Tensor._make(out_data, tuple(tensors), "stack", backward)
        return out

    # ------------------------------------------------------------------
    # Comparison (no grad) and misc
    # ------------------------------------------------------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other, self.dtype)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other, self.dtype)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape).astype(DEFAULT_DTYPE), requires_grad=requires_grad)
