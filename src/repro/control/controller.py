"""The :class:`CacheController`: one policy loop over many mechanisms.

Signals in
----------
* **Popularity** — every served/predicted query records its canonical
  composite and each member task into injectable-clock
  :class:`~repro.serving.metrics.PopularityEWMA` estimators, so "hot"
  always means *recently* hot (the decay is the aging term classic GDSF
  gets from its L-clock).
* **Rebuild cost** — the gateways time each composite build
  (consolidate/assemble + serialize) and each remote-head fetch round
  trip and feed the samples into per-key :class:`CostEWMA` smoothers.
* **Fan-out** — the cluster's per-query shard fan-out histogram, read as
  a delta per tick.

Actions out
-----------
* **Eviction/admission bias** — ``attach_gateway``/``attach_cluster``
  install per-tier ``evict_score`` hooks on every
  :class:`~repro.serving.cache.ByteBudgetLRU`: under budget pressure the
  entry with the lowest ``popularity x rebuild_cost / size`` score goes
  first, and a new entry that scores below everything resident is not
  admitted at all.
* **Prefetch** — each :meth:`CacheController.tick` re-serializes the
  hottest composites missing from the payload cache (bounded per tick),
  so rotation of the hot set repopulates the cache *before* the next
  request pays the build.
* **Replication** — when the mean fan-out since the last tick exceeds a
  threshold, the hottest task gains one placement copy via
  :meth:`~repro.cluster.router.ShardRouter.replicate` + ``rebalance()``,
  shrinking future fan-out without operator action.

Everything is driven through an injected clock and a seeded RNG, so the
whole loop is step-able in-process: tests call :meth:`tick` directly
(``tests/control/sim.py``), production uses :meth:`start`'s background
thread.  Lock discipline: score hooks run under the *cache* lock and take
the controller lock inside; the controller therefore never calls into a
cache while holding its own lock (decisions are computed under the lock,
actions run outside it).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..obs.journal import JOURNAL
from ..serving.canonical import payload_key
from ..serving.metrics import PopularityEWMA

__all__ = ["CacheController", "ControllerConfig", "CostEWMA", "TickReport"]


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the self-tuning loop (see docs/self-tuning.md)."""

    #: Popularity decay half-life for both composites and tasks; "hot"
    #: means hot within roughly this window.
    popularity_halflife_s: float = 30.0
    #: EMA weight of each new cost sample in :class:`CostEWMA`.
    cost_smoothing: float = 0.5
    #: Max payload builds one tick may issue.
    prefetch_limit: int = 4
    #: Composite popularity score below which prefetch is not worth a build.
    prefetch_min_score: float = 0.5
    #: Mean per-query shard fan-out (since the previous tick) above which
    #: the controller replicates a hot task.
    replicate_fanout_threshold: float = 1.25
    #: Task popularity floor for replication candidates.
    replicate_min_score: float = 1.0
    #: Ceiling on per-task placement copies the controller will install.
    replicate_max_copies: int = 2
    #: Minimum seconds between replication actions (each one triggers a
    #: cluster rebalance — cheap, but not free).
    replicate_cooldown_s: float = 10.0

    def __post_init__(self) -> None:
        if self.popularity_halflife_s <= 0:
            raise ValueError("popularity_halflife_s must be positive")
        if not 0.0 < self.cost_smoothing <= 1.0:
            raise ValueError("cost_smoothing must be in (0, 1]")
        if self.prefetch_limit < 0:
            raise ValueError("prefetch_limit must be >= 0")
        if self.replicate_max_copies < 1:
            raise ValueError("replicate_max_copies must be >= 1")
        if self.replicate_cooldown_s < 0:
            raise ValueError("replicate_cooldown_s must be >= 0")


class CostEWMA:
    """Per-key exponentially smoothed ``(seconds, bytes)`` cost samples.

    Keys never observed fall back to the fleet-wide smoothed mean, so a
    cold composite is scored with a *typical* rebuild cost instead of
    zero (which would make it free to evict the moment it lands).  Not
    thread-safe on its own; the controller records under its lock.
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        # key -> [smoothed seconds, smoothed bytes]
        self._costs: Dict[Hashable, List[float]] = {}
        self._default = [0.0, 0.0]
        self._observed = 0

    def observe(self, key: Hashable, seconds: float, nbytes: float) -> None:
        a = self.alpha
        entry = self._costs.get(key)
        if entry is None:
            self._costs[key] = [float(seconds), float(nbytes)]
        else:
            entry[0] += a * (seconds - entry[0])
            entry[1] += a * (nbytes - entry[1])
        if self._observed == 0:
            self._default = [float(seconds), float(nbytes)]
        else:
            self._default[0] += a * (seconds - self._default[0])
            self._default[1] += a * (nbytes - self._default[1])
        self._observed += 1

    def seconds(self, key: Hashable) -> float:
        return self._costs.get(key, self._default)[0]

    def nbytes(self, key: Hashable) -> float:
        return self._costs.get(key, self._default)[1]

    def __len__(self) -> int:
        return len(self._costs)


@dataclass(frozen=True)
class TickReport:
    """What one control-loop step observed and did."""

    #: Composites whose payloads were built into the cache this tick.
    prefetched: Tuple[Tuple[str, ...], ...]
    #: ``(task, new copy count)`` replication actions applied this tick.
    replicated: Tuple[Tuple[str, int], ...]
    #: Mean per-query shard fan-out since the previous tick (0.0 when no
    #: cross-gateway traffic, or when no cluster is attached).
    mean_fanout: float

    @property
    def acted(self) -> bool:
        return bool(self.prefetched or self.replicated)


class CacheController:
    """Self-tuning policy over gateway/cluster caches and shard placement.

    Attach exactly one serving target (:meth:`attach_gateway` or
    :meth:`attach_cluster` — usually via the target's ``controller=``
    constructor argument, which calls these for you).  The target feeds
    signals in (:meth:`record_request`, :meth:`record_build_cost`,
    :meth:`record_wire_cost`); :meth:`tick` turns them into actions.
    """

    def __init__(
        self,
        config: Optional[ControllerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        seed: int = 0,
    ) -> None:
        self.config = config or ControllerConfig()
        self._clock = clock
        #: Seeded RNG: the only nondeterminism the controller is allowed,
        #: used solely to jitter the background loop interval (tests step
        #: :meth:`tick` directly and never see it).
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        half = self.config.popularity_halflife_s
        # composite (canonical names tuple) and per-task popularity;
        # PopularityEWMA accepts any hashable key
        self._queries = PopularityEWMA(half, clock=clock)
        self._tasks = PopularityEWMA(half, clock=clock)
        self._build = CostEWMA(self.config.cost_smoothing)  # names -> build cost
        self._wire = CostEWMA(self.config.cost_smoothing)  # task -> fetch cost
        # last transport each composite was requested with (prefetch target)
        self._transports: Dict[Tuple[str, ...], str] = {}
        self._prefetched: set = set()
        self._gateway = None
        self._cluster = None
        self._last_fanout: Dict[int, int] = {}
        self._last_replication_t: Optional[float] = None
        self._replication_unsupported = False
        self.ticks = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_gateway(self, gateway) -> None:
        """Install eviction-score hooks on a :class:`ServingGateway`'s tiers."""
        self._gateway = gateway
        gateway.model_cache.evict_score = self._score_model_key
        gateway.payload_cache.evict_score = self._score_payload_key
        gateway.result_cache.evict_score = self._score_result_key

    def attach_cluster(self, cluster) -> None:
        """Install eviction-score hooks on a :class:`ClusterGateway`'s tiers."""
        self._cluster = cluster
        cluster.model_cache.evict_score = self._score_model_key
        cluster.payload_cache.evict_score = self._score_payload_key
        cluster.result_cache.evict_score = self._score_result_key
        cluster.remote_head_cache.evict_score = self._score_remote_head_key

    # ------------------------------------------------------------------
    # Signals in (called by the attached gateway/cluster)
    # ------------------------------------------------------------------
    def record_request(
        self, names: Tuple[str, ...], transport: Optional[str] = None
    ) -> None:
        """One query for canonical ``names`` (transport None = prediction)."""
        with self._lock:
            self._queries.record([names])
            self._tasks.record(names)
            if transport is not None:
                self._transports[names] = transport

    def record_build_cost(
        self, names: Tuple[str, ...], seconds: float, nbytes: int
    ) -> None:
        """One measured composite build: consolidate/assemble + serialize."""
        with self._lock:
            self._build.observe(names, seconds, nbytes)

    def record_wire_cost(
        self, tasks: List[str], seconds: float, nbytes: int
    ) -> None:
        """One remote-head fetch round trip, amortized over its tasks."""
        if not tasks:
            return
        share_s = seconds / len(tasks)
        share_b = nbytes / len(tasks)
        with self._lock:
            for task in tasks:
                self._wire.observe(task, share_s, share_b)

    # ------------------------------------------------------------------
    # Scores (called from ByteBudgetLRU eviction, under the cache lock)
    # ------------------------------------------------------------------
    def composite_score(self, names: Tuple[str, ...], boost: float = 0.0) -> float:
        """GDSF-style ``popularity x rebuild_seconds / size`` for a composite.

        The EWMA decay supplies the aging term, so a formerly-hot entry's
        score falls toward zero on its own.  Never-requested entries score
        0.0 and are evicted first.  ``boost`` adds that many anticipated
        hits to the popularity term — the prefetch loop scores candidates
        with ``boost=1.0`` to ask "would this beat the floor at its *next*
        request?" (a candidate below the floor now can never cross it by
        decay alone, since every score decays at the same rate).
        """
        with self._lock:
            pop = self._queries.score(names)
            cost = self._build.seconds(names)
            size = self._build.nbytes(names)
        return (pop + boost) * cost / max(size, 1.0)

    def task_score(self, task: str) -> float:
        """Per-task popularity weighted by measured wire cost."""
        with self._lock:
            return self._tasks.score(task) * (1.0 + self._wire.seconds(task))

    def _score_model_key(self, key) -> float:
        return self.composite_score(key)  # model tier keys ARE names tuples

    def _score_payload_key(self, key) -> float:
        return self.composite_score(key[0])  # (names, transport)

    def _score_result_key(self, key) -> float:
        # (digest, names, versions); results are cheap to rebuild (one
        # heads pass), so popularity alone ranks them
        with self._lock:
            return self._queries.score(key[1])

    def _score_remote_head_key(self, key) -> float:
        return self.task_score(key[0])  # (task, version)

    # ------------------------------------------------------------------
    # Prefetch bookkeeping
    # ------------------------------------------------------------------
    def was_prefetched(self, key: Hashable) -> bool:
        """Whether a payload-cache key was populated by the prefetch loop.

        Non-destructive: the serving paths consult this on every payload
        hit to count ``prefetch_hits``.
        """
        with self._lock:
            return key in self._prefetched

    def _note_prefetched(self, key: Hashable) -> None:
        with self._lock:
            if len(self._prefetched) > 4096:  # bounded: marks, not history
                self._prefetched.clear()
            self._prefetched.add(key)

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def tick(self) -> TickReport:
        """One synchronous control step: prefetch, then maybe replicate.

        Deterministic given the injected clock and recorded signals; safe
        to call from any thread, and never raises on behalf of an
        individual failed action.
        """
        target = self._cluster if self._cluster is not None else self._gateway
        with self._lock:
            self.ticks += 1
            plan = self._prefetch_plan_locked()
        prefetched: List[Tuple[str, ...]] = []
        if target is not None and plan:
            cache = getattr(target, "payload_cache", None)
            floor = self._prefetch_floor(target)
            for names, transport, key in plan:
                if len(prefetched) >= self.config.prefetch_limit:
                    break
                if cache is not None and cache.contains(key):
                    continue  # already resident: nothing to warm
                if self.composite_score(names, boost=1.0) <= floor:
                    continue  # would be admission-denied even at its next
                    # hit: building it now is pure waste
                # model the request this prefetch is front-running, so the
                # admission hook scores the payload as it will score when
                # it is next hit (otherwise the hooks we installed would
                # deny our own warm-up build)
                with self._lock:
                    self._queries.record([names])
                try:
                    built = target.prefetch(names, transport)
                except Exception:
                    continue  # e.g. task dropped since it was recorded
                if built:
                    self._note_prefetched(key)
                    prefetched.append(names)
                    floor = self._prefetch_floor(target)
        replicated, mean_fanout = self._maybe_replicate()
        report = TickReport(tuple(prefetched), tuple(replicated), mean_fanout)
        if report.acted and JOURNAL.enabled:
            JOURNAL.emit(
                "autotune",
                prefetched=[list(names) for names in report.prefetched],
                replicated=[
                    {"task": task, "copies": copies}
                    for task, copies in report.replicated
                ],
                mean_fanout=round(mean_fanout, 3),
            )
        return report

    def _prefetch_floor(self, target) -> float:
        """Score a prefetched payload must beat to be worth building.

        0.0 while the target's payload cache still has room; once full,
        the lowest resident score — a build below it would be denied
        admission (or evicted straight back out) by the very hooks this
        controller installed, so the serialize work would be pure waste.
        For a cluster the floor comes from the cross-shard composite
        cache (single-shard prefetches delegate to per-shard caches with
        their own budgets; a slightly conservative floor is fine there).
        Reads cache state without holding the controller lock.
        """
        cache = getattr(target, "payload_cache", None)
        if cache is None:
            return 0.0
        stats = cache.stats()
        if stats.budget_bytes == 0:
            return float("inf")  # tier disabled: never build for it
        if stats.current_entries == 0:
            return 0.0
        typical = stats.current_bytes / stats.current_entries
        if stats.current_bytes + typical <= stats.budget_bytes:
            return 0.0  # room for another typical payload
        return min(self._score_payload_key(key) for key in cache.keys())

    def _prefetch_plan_locked(self) -> List[Tuple[Tuple[str, ...], str, Hashable]]:
        """Hot composites worth warming, hottest first (lock held)."""
        cfg = self.config
        plan: List[Tuple[Tuple[str, ...], str, Hashable]] = []
        for names, score in self._queries.top(max(cfg.prefetch_limit, 1) * 4):
            if score < cfg.prefetch_min_score:
                break  # top() is sorted: everything below is colder
            transport = self._transports.get(names)
            if transport is None:
                continue  # prediction-only traffic: nothing to serialize
            plan.append((names, transport, payload_key(names, transport)))
        return plan

    def _maybe_replicate(self) -> Tuple[Tuple[Tuple[str, int], ...], float]:
        cluster = self._cluster
        if cluster is None:
            return (), 0.0
        cfg = self.config
        hist = cluster.metrics.fanout_histogram()
        with self._lock:
            delta = {
                fanout: count - self._last_fanout.get(fanout, 0)
                for fanout, count in hist.items()
            }
            self._last_fanout = hist
            total = sum(count for count in delta.values() if count > 0)
            weighted = sum(
                fanout * count for fanout, count in delta.items() if count > 0
            )
            mean_fanout = weighted / total if total else 0.0
            now = self._clock()
            in_cooldown = (
                self._last_replication_t is not None
                and now - self._last_replication_t < cfg.replicate_cooldown_s
            )
            if (
                self._replication_unsupported
                or in_cooldown
                or mean_fanout < cfg.replicate_fanout_threshold
            ):
                return (), mean_fanout
            candidate: Optional[Tuple[str, int]] = None
            for task, score in self._tasks.top(16):
                if score < cfg.replicate_min_score:
                    break
                copies = cluster.router.replication_for(task)
                if copies < min(cfg.replicate_max_copies, cluster.router.num_shards):
                    candidate = (task, copies)
                    break  # one action per tick keeps rebalances cheap
        if candidate is None:
            return (), mean_fanout
        task, copies = candidate
        router = cluster.router
        try:
            router.replicate(task, copies + 1)
            cluster.rebalance()
        except Exception as error:
            router.replicate(task, copies)  # roll the override back
            if type(error).__name__ == "RemoteOperationUnsupported":
                # the fleet can't take mutation frames; don't retry forever
                with self._lock:
                    self._replication_unsupported = True
            return (), mean_fanout
        with self._lock:
            self._last_replication_t = now
        cluster.metrics.increment("autotune_replications")
        return ((task, copies + 1),), mean_fanout

    # ------------------------------------------------------------------
    # Background loop (production; tests drive tick() directly)
    # ------------------------------------------------------------------
    def start(self, interval_s: float = 1.0) -> None:
        """Run :meth:`tick` on a daemon thread every ~``interval_s``."""
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, args=(interval_s,), name="repro-autotune", daemon=True
        )
        self._thread.start()

    def _run(self, interval_s: float) -> None:
        while True:
            # +/-10% seeded jitter: many controllers on one box shouldn't
            # rebalance in lockstep
            wait = interval_s * (0.9 + 0.2 * self._rng.random())
            if self._stop.wait(wait):
                return
            try:
                self.tick()
            except Exception:  # pragma: no cover - belt and braces
                pass  # one bad tick must not kill the loop

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def hot_queries(self, n: int = 10) -> List[Tuple[Tuple[str, ...], float]]:
        """The ``n`` hottest composites as ``(names, score)``."""
        with self._lock:
            return self._queries.top(n)

    def hot_tasks(self, n: int = 10) -> List[Tuple[str, float]]:
        """The ``n`` hottest primitive tasks as ``(task, score)``."""
        with self._lock:
            return self._tasks.top(n)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe controller gauges for dashboards and tests."""
        with self._lock:
            return {
                "ticks": self.ticks,
                "tracked_queries": len(self._queries),
                "tracked_tasks": len(self._tasks),
                "build_costs": len(self._build),
                "wire_costs": len(self._wire),
                "prefetched_keys": len(self._prefetched),
                "replication_unsupported": self._replication_unsupported,
                "hot_queries": [
                    {"tasks": list(names), "score": round(score, 6)}
                    for names, score in self._queries.top(5)
                ],
                "hot_tasks": [
                    {"task": task, "score": round(score, 6)}
                    for task, score in self._tasks.top(5)
                ],
            }

    def __enter__(self) -> "CacheController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
