"""Self-tuning control plane: popularity + cost signals → cache/placement actions.

ROADMAP item 2 (LAWS-style adaptive serving): every cache tier and the
shard router expose *mechanisms* (byte budgets, eviction hooks, task
replication); this package supplies the *policy*.  One
:class:`CacheController` observes the live request stream and measured
rebuild/wire costs, scores cache entries GDSF-style, pre-serializes hot
composites before they are requested, and feeds the cross-shard fan-out
histogram back into hot-expert replication.

See ``docs/self-tuning.md`` for the signal → controller → actuator map.
"""

from .bench import (
    SelfTuningReport,
    StepClock,
    run_self_tuning_benchmark,
    shifting_workload_trace,
    verify_report,
)
from .controller import CacheController, ControllerConfig, CostEWMA, TickReport

__all__ = [
    "CacheController",
    "ControllerConfig",
    "CostEWMA",
    "SelfTuningReport",
    "StepClock",
    "TickReport",
    "run_self_tuning_benchmark",
    "shifting_workload_trace",
    "verify_report",
]
