"""Self-tuning benchmark driver: controller vs static hand-tuned budgets.

One pool, one deterministic shifting-Zipf trace, two arms:

* **static-lru** — a gateway with a deliberately tight payload budget and
  plain LRU eviction (the hand-tuned status quo);
* **self-tuned** — the *same* budget with a :class:`CacheController`
  attached: GDSF eviction/admission, periodic prefetch ticks, popularity
  driven by a step clock that advances a fixed ``dt`` per request (so the
  control loop sees identical time regardless of machine speed).

The trace keeps a Zipf-weighted hot set of composites slightly larger
than the cache and pollutes it with one-off cold queries; halfway through
the hot set rotates to a disjoint one.  Plain LRU lets cold pollution
evict hot payloads and pays a rebuild on every rotation re-request; the
controller denies admission to cold one-offs, protects hot entries, and
prefetches the new hot set as its popularity overtakes the decaying old
one.  ``repro autotune-bench`` and ``benchmarks/bench_self_tuning.py``
both run through :func:`run_self_tuning_benchmark` and gate on
:func:`verify_report`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..serving.gateway import GatewayConfig, ServingGateway
from .controller import CacheController, ControllerConfig

__all__ = [
    "ArmReport",
    "SelfTuningReport",
    "StepClock",
    "run_self_tuning_benchmark",
    "shifting_workload_trace",
    "verify_report",
]


class StepClock:
    """Deterministic clock advanced explicitly (one fixed ``dt`` per event)."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = float(start)

    def advance(self, dt: float) -> None:
        self.t += dt

    def __call__(self) -> float:
        return self.t


def shifting_workload_trace(
    task_names: Sequence[str],
    *,
    requests: int = 600,
    hot_size: int = 8,
    hot_fraction: float = 0.75,
    skew: float = 1.1,
    seed: int = 0,
    transport: str = "float32",
) -> Tuple[List[Tuple[Tuple[str, ...], str]], int]:
    """A seeded shifting-Zipf trace: ``([(names, transport), ...], rotation_at)``.

    Phase 1 draws ``hot_fraction`` of requests Zipf-weighted from one set
    of ``hot_size`` task pairs; at ``rotation_at`` (the midpoint) the hot
    set rotates to a disjoint one.  The remaining requests cycle a large
    pool of cold composites (singles/pairs/triples) so each cold query is
    a near-guaranteed cache miss in *both* bench arms.
    """
    if requests < 2:
        raise ValueError("requests must be >= 2")
    names = sorted(task_names)
    pairs = list(itertools.combinations(names, 2))
    if len(pairs) < 2 * hot_size:
        raise ValueError(
            f"need >= {2 * hot_size} task pairs for two disjoint hot sets, "
            f"got {len(pairs)} from {len(names)} tasks"
        )
    rng = random.Random(seed)
    rng.shuffle(pairs)
    hot_a = pairs[:hot_size]
    hot_b = pairs[hot_size : 2 * hot_size]
    cold_pool = (
        [(name,) for name in names]
        + pairs[2 * hot_size :]
        + list(itertools.combinations(names, 3))
    )
    rng.shuffle(cold_pool)
    cold = itertools.cycle(cold_pool)
    weights = [1.0 / (rank + 1) ** skew for rank in range(hot_size)]
    rotation_at = requests // 2
    trace: List[Tuple[Tuple[str, ...], str]] = []
    for i in range(requests):
        hot = hot_a if i < rotation_at else hot_b
        if rng.random() < hot_fraction:
            query = rng.choices(hot, weights=weights)[0]
        else:
            query = next(cold)
        trace.append((tuple(query), transport))
    return trace, rotation_at


@dataclass(frozen=True)
class ArmReport:
    """One bench arm's outcome."""

    label: str
    requests: int
    elapsed_s: float
    qps: float
    payload_hit_rate: float
    payload_hits: int
    payload_misses: int
    evictions: int
    score_evictions: int
    rejections: int
    prefetch_builds: int
    prefetch_hits: int


@dataclass(frozen=True)
class SelfTuningReport:
    """Both arms plus the scenario that produced them."""

    static: ArmReport
    tuned: ArmReport
    rotation_at: int
    hot_size: int
    budget_payloads: int
    budget_bytes: int
    payload_bytes: int
    ticks: int

    @property
    def hit_rate_gain(self) -> float:
        """Absolute payload hit-rate advantage of the controller arm."""
        return self.tuned.payload_hit_rate - self.static.payload_hit_rate

    @property
    def qps_ratio(self) -> float:
        return self.tuned.qps / self.static.qps if self.static.qps else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "static": asdict(self.static),
            "tuned": asdict(self.tuned),
            "rotation_at": self.rotation_at,
            "hot_size": self.hot_size,
            "budget_payloads": self.budget_payloads,
            "budget_bytes": self.budget_bytes,
            "payload_bytes": self.payload_bytes,
            "ticks": self.ticks,
            "hit_rate_gain": round(self.hit_rate_gain, 4),
            "qps_ratio": round(self.qps_ratio, 3),
        }

    def render(self) -> str:
        rows = [
            (
                arm.label,
                f"{arm.qps:8.1f}",
                f"{arm.payload_hit_rate:8.1%}",
                f"{arm.payload_hits:5d}",
                f"{arm.evictions:5d}",
                f"{arm.score_evictions:5d}",
                f"{arm.rejections:5d}",
                f"{arm.prefetch_builds:5d}",
                f"{arm.prefetch_hits:5d}",
            )
            for arm in (self.static, self.tuned)
        ]
        header = (
            "arm         |      qps | hit_rate |  hits | evict | score |  rej "
            "| pbuild |  phit"
        )
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                f"{row[0]:<12}| {row[1]} | {row[2]} | {row[3]} | {row[4]} "
                f"| {row[5]} | {row[6]} | {row[7]}  | {row[8]}"
            )
        lines.append(
            f"hot_size={self.hot_size} budget={self.budget_payloads} payloads "
            f"({self.budget_bytes} B) rotation@{self.rotation_at} "
            f"ticks={self.ticks} gain={self.hit_rate_gain:+.1%} "
            f"qps_ratio={self.qps_ratio:.2f}x"
        )
        return "\n".join(lines)


def _arm_report(label: str, gateway: ServingGateway, elapsed: float, n: int) -> ArmReport:
    stats = gateway.payload_cache.stats()
    counters = gateway.metrics.snapshot().get("counters") or {}
    return ArmReport(
        label=label,
        requests=n,
        elapsed_s=round(elapsed, 4),
        qps=round(n / elapsed, 2) if elapsed > 0 else 0.0,
        payload_hit_rate=round(stats.hit_rate, 4),
        payload_hits=stats.hits,
        payload_misses=stats.misses,
        evictions=stats.evictions,
        score_evictions=stats.score_evictions,
        rejections=stats.rejections,
        prefetch_builds=int(counters.get("prefetch_builds", 0)),
        prefetch_hits=int(counters.get("prefetch_hits", 0)),
    )


def run_self_tuning_benchmark(
    pool,
    *,
    requests: int = 600,
    hot_size: int = 8,
    budget_payloads: int = 6,
    hot_fraction: float = 0.75,
    skew: float = 1.1,
    seed: int = 0,
    dt: float = 0.05,
    tick_every: int = 25,
    halflife_s: float = 2.5,
    transport: str = "float32",
    controller_config: Optional[ControllerConfig] = None,
) -> SelfTuningReport:
    """Run both arms over one trace and return the paired report.

    ``dt`` is the simulated seconds the controller's step clock advances
    per request and ``halflife_s`` is the popularity half-life in those
    simulated seconds (defaults: half-life = 50 requests), making the
    control loop's decisions machine-speed independent.  Wall-clock only
    enters through the reported qps and the measured build costs.
    """
    trace, rotation_at = shifting_workload_trace(
        pool.expert_names(),
        requests=requests,
        hot_size=hot_size,
        hot_fraction=hot_fraction,
        skew=skew,
        seed=seed,
        transport=transport,
    )
    # size the budget off one real payload so "fits ~N of the hot set"
    # holds for any model scale
    with ServingGateway(pool, GatewayConfig(max_workers=1)) as probe:
        payload_bytes = probe.serve(trace[0][0], transport).payload_bytes
    budget_bytes = budget_payloads * payload_bytes + payload_bytes // 2
    config = GatewayConfig(max_workers=1, payload_cache_bytes=budget_bytes)

    def drive(gateway, controller=None, clock=None) -> float:
        start = perf_counter()
        for i, (names, t) in enumerate(trace):
            if clock is not None:
                clock.advance(dt)
            gateway.serve(names, t)
            if controller is not None and (i + 1) % tick_every == 0:
                controller.tick()
        return perf_counter() - start

    with ServingGateway(pool, config) as gateway:
        static = _arm_report("static-lru", gateway, drive(gateway), len(trace))

    clock = StepClock()
    controller = CacheController(
        controller_config
        or ControllerConfig(
            popularity_halflife_s=halflife_s,
            prefetch_limit=4,
            # a cold one-off scores ~1.0 right after its single hit; this
            # floor keeps such noise out of the prefetch plan
            prefetch_min_score=1.2,
        ),
        clock=clock,
        seed=seed,
    )
    with ServingGateway(pool, config, controller=controller) as gateway:
        tuned = _arm_report(
            "self-tuned", gateway, drive(gateway, controller, clock), len(trace)
        )

    return SelfTuningReport(
        static=static,
        tuned=tuned,
        rotation_at=rotation_at,
        hot_size=hot_size,
        budget_payloads=budget_payloads,
        budget_bytes=budget_bytes,
        payload_bytes=payload_bytes,
        ticks=controller.ticks,
    )


def verify_report(report: SelfTuningReport, relaxed: bool) -> None:
    """The bench gate: the controller must strictly beat static budgets.

    Hit rate must be strictly higher and the controller must actually
    have acted (score evictions or admission denials, plus prefetches).
    The qps win is asserted un-relaxed; relaxed runs (shared CI runners)
    still require the controller arm not to collapse throughput.
    """
    static, tuned = report.static, report.tuned
    assert tuned.payload_hit_rate > static.payload_hit_rate, (
        f"controller hit rate {tuned.payload_hit_rate:.1%} must beat "
        f"static {static.payload_hit_rate:.1%}"
    )
    assert tuned.prefetch_builds > 0, "controller never prefetched"
    assert tuned.score_evictions + tuned.rejections > static.rejections, (
        "score hook never influenced eviction/admission"
    )
    if relaxed:
        assert report.qps_ratio > 0.5, (
            f"controller arm collapsed throughput: {report.qps_ratio:.2f}x"
        )
    else:
        assert report.qps_ratio > 1.0, (
            f"controller qps {tuned.qps} must beat static {static.qps} "
            f"({report.qps_ratio:.2f}x)"
        )
