"""Shard health scoring: windows + journal → healthy/degraded/unreachable.

The :class:`HealthScorer` is the decision layer on top of the timeline:
it reads a source's recent series out of a
:class:`~repro.obs.timeline.TimelineStore` and classifies it —

* ``unreachable`` — the latest ``<source>.up`` sample is 0 (the poller
  could not collect a snapshot), or no poll has landed at all;
* ``degraded`` — the SLO burn rate over the window is ≥ the policy's
  ``burn_threshold``, or the error-rate share of traffic exceeds
  ``max_error_rate``;
* ``healthy`` — otherwise.

**Burn rate** follows the SRE convention: the fraction of requests
estimated to breach the latency objective, divided by the error budget
the objective allows.  A burn rate of 1.0 consumes the budget exactly as
fast as allowed; sustained > 1.0 means the SLO will be violated.  The
breach fraction is estimated from the quantile gauges the poller already
tracks (we do not have per-request data): if p50 breaches the objective
at least half of traffic is slow, if only p99 breaches it is ~1 %, with
linear interpolation between the known quantile points.

The scorer is pure — it never touches the network; feed it the store a
:class:`~repro.obs.timeline.TelemetryPoller` maintains and the shared
journal, and it returns plain dicts that are JSON-safe by construction
(the dashboard renders them, and ``merge_snapshots`` passes a
``"health"`` table through untouched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .journal import JOURNAL, EventJournal
from .timeline import TimelineStore

__all__ = ["HealthPolicy", "HealthScorer", "estimate_breach_fraction"]

#: Known quantile gauge points, highest quantile first.
_QUANTILE_POINTS: Tuple[Tuple[str, float], ...] = (
    ("p99", 0.99),
    ("p95", 0.95),
    ("p50", 0.50),
)


@dataclass(frozen=True)
class HealthPolicy:
    """The latency objective and thresholds a deployment scores against."""

    #: Latency objective in seconds: ``objective_quantile`` of requests
    #: should finish within this.
    latency_slo_s: float = 0.25
    #: Which stage's latency the SLO covers.
    slo_stage: str = "total"
    #: Quantile the objective targets (0.95 → 5 % error budget).
    objective_quantile: float = 0.95
    #: Mean burn rate over the window at/above which a shard is degraded.
    burn_threshold: float = 1.0
    #: Errors-per-request share at/above which a shard is degraded.
    max_error_rate: float = 0.05

    def __post_init__(self) -> None:
        if self.latency_slo_s <= 0:
            raise ValueError("latency_slo_s must be positive")
        if not 0.0 < self.objective_quantile < 1.0:
            raise ValueError("objective_quantile must be in (0, 1)")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective_quantile


def estimate_breach_fraction(
    quantiles: Dict[str, float], slo_s: float
) -> float:
    """Estimate the fraction of requests slower than ``slo_s``.

    ``quantiles`` holds the latency gauges we have (``p50``/``p95``/``p99``).
    The estimate interpolates between known quantile points: if the SLO
    sits between the p95 and p99 latencies, the breach fraction lies
    between 5 % and 1 %, placed linearly by where the SLO falls.  Above
    the p99 latency the estimate decays toward zero; below the p50 it
    saturates toward one.
    """
    points: List[Tuple[float, float]] = []  # (latency, breach_fraction)
    for key, q in _QUANTILE_POINTS:
        value = quantiles.get(key)
        if value is not None and value > 0:
            points.append((float(value), 1.0 - q))
    if not points:
        return 0.0
    points.sort()  # ascending latency → descending breach fraction
    if slo_s >= points[-1][0]:
        # objective beyond the worst tracked quantile: at most that tail
        return 0.0 if slo_s > points[-1][0] else points[-1][1]
    if slo_s <= points[0][0]:
        # objective below the fastest tracked quantile: interpolate toward
        # "everything breaches" as the objective approaches zero
        lo_lat, lo_frac = points[0]
        return 1.0 - (slo_s / lo_lat) * (1.0 - lo_frac)
    for (lo_lat, lo_frac), (hi_lat, hi_frac) in zip(points, points[1:]):
        if lo_lat <= slo_s <= hi_lat:
            if hi_lat == lo_lat:
                return lo_frac
            pos = (slo_s - lo_lat) / (hi_lat - lo_lat)
            return lo_frac + (hi_frac - lo_frac) * pos
    return 0.0  # pragma: no cover - covered by the boundary branches


class HealthScorer:
    """Classify telemetry sources from their windowed series + journal."""

    def __init__(
        self,
        store: TimelineStore,
        journal: Optional[EventJournal] = None,
        policy: Optional[HealthPolicy] = None,
    ) -> None:
        self.store = store
        self.journal = journal if journal is not None else JOURNAL
        self.policy = policy if policy is not None else HealthPolicy()

    # ------------------------------------------------------------------
    def burn_rate(self, source: str) -> float:
        """Mean SLO burn rate for ``source`` over its window."""
        policy = self.policy
        stage = policy.slo_stage
        p50s = self.store.values(f"{source}.stage.{stage}.p50")
        p95s = self.store.values(f"{source}.stage.{stage}.p95")
        p99s = self.store.values(f"{source}.stage.{stage}.p99")
        n = max(len(p50s), len(p95s), len(p99s))
        if n == 0:
            return 0.0
        total = 0.0
        for i in range(n):
            quantiles = {}
            if i < len(p50s):
                quantiles["p50"] = p50s[i]
            if i < len(p95s):
                quantiles["p95"] = p95s[i]
            if i < len(p99s):
                quantiles["p99"] = p99s[i]
            total += estimate_breach_fraction(quantiles, policy.latency_slo_s)
        return (total / n) / policy.error_budget

    def error_rate(self, source: str) -> float:
        """Errors per request over the window (0 with no traffic)."""
        errors = sum(self.store.values(f"{source}.rate.errors"))
        requests = sum(self.store.values(f"{source}.qps"))
        if requests <= 0:
            return 0.0
        return errors / requests

    # ------------------------------------------------------------------
    def score(self, source: str) -> Dict[str, object]:
        """One source's health verdict as a JSON-safe dict."""
        up = self.store.last(f"{source}.up")
        reasons: List[str] = []
        if up is None:
            state = "unreachable"
            reasons.append("never polled")
        elif up < 1.0:
            state = "unreachable"
            reasons.append("last poll failed")
        else:
            state = "healthy"
        burn = self.burn_rate(source)
        err = self.error_rate(source)
        if state == "healthy":
            if burn >= self.policy.burn_threshold:
                state = "degraded"
                reasons.append(
                    f"SLO burn {burn:.2f}x over "
                    f"{self.policy.latency_slo_s * 1e3:.0f}ms "
                    f"p{self.policy.objective_quantile * 100:.0f} objective"
                )
            if err >= self.policy.max_error_rate:
                state = "degraded"
                reasons.append(f"error rate {err:.1%}")
            open_breakers = self.store.last(f"{source}.breakers.open")
            if open_breakers:
                state = "degraded"
                reasons.append(
                    f"{open_breakers:.0f} replica breaker(s) not closed"
                )
            epoch_skew = self.store.last(f"{source}.epoch.skew")
            if epoch_skew:
                state = "degraded"
                reasons.append(
                    f"topology epoch skew {epoch_skew:.0f} across replicas "
                    "(a replica missed a mutation broadcast)"
                )
        return {
            "state": state,
            "burn_rate": round(burn, 4),
            "error_rate": round(err, 4),
            "qps": round(self.store.last(f"{source}.qps") or 0.0, 3),
            "p95": self.store.last(
                f"{source}.stage.{self.policy.slo_stage}.p95"
            )
            or 0.0,
            "reasons": reasons,
        }

    def score_all(
        self, sources: Optional[Sequence[str]] = None
    ) -> Dict[str, Dict[str, object]]:
        """Verdicts for every source (derived from ``*.up`` series by default)."""
        if sources is None:
            sources = [
                name[: -len(".up")]
                for name in self.store.names()
                if name.endswith(".up")
            ]
        return {source: self.score(source) for source in sources}
