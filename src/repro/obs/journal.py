"""Structured event journal: the *why* behind a metric moving.

Rate series (:mod:`repro.obs.timeline`) tell you *that* p95 jumped; the
journal records the discrete events that explain it — cache evictions,
expert version bumps, rebalances, slow queries, worker lifecycle.  Each
event is one JSON-safe dict::

    {"seq": 12, "ts": 1699.123, "service": "shard1",
     "kind": "cache_evict", ...event fields...}

There is one module-level :data:`JOURNAL` per process, mirroring
``TRACER``/``ARENA``: disabled it costs one attribute load and one
boolean check per emit site, enabled it appends to a bounded in-memory
ring (oldest dropped and counted) and, when configured, streams to a
size-rotated JSONL file (:class:`~repro.obs.export.RotatingJsonlWriter`).

Shard worker processes enable a memory-only journal at bootstrap; their
events ride back to the front end in the ``STATS`` payload (``"journal"``
key, cursored by ``seq`` so the poller ships each event once) the same
way server-side spans ride in response meta — see
:meth:`EventJournal.since` and :meth:`EventJournal.ingest`.
"""

from __future__ import annotations

import threading
from collections import deque
from time import time
from typing import Deque, Dict, List, Optional

from .export import RotatingJsonlWriter

__all__ = ["EventJournal", "JOURNAL"]

#: Event kinds the stack is documented to emit (docs/observability.md).
EVENT_KINDS = (
    "autotune",
    "cache_evict",
    "expert_update",
    "library_update",
    "rebalance",
    "reshard",
    "mutation_applied",
    "mutation_replayed",
    "slow_query",
    "worker_start",
    "worker_drain",
    "worker_exit",
    "worker_death",
    "worker_respawn",
    "worker_respawn_failed",
    "poll_error",
)


class EventJournal:
    """Bounded in-memory event ring with optional JSONL persistence."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._enabled = False
        self._seq = 0
        self._dropped = 0
        self._writer: Optional[RotatingJsonlWriter] = None
        self.service = "main"

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring before being read."""
        with self._lock:
            return self._dropped

    def enable(
        self,
        writer: Optional[RotatingJsonlWriter] = None,
        service: Optional[str] = None,
    ) -> None:
        """Start recording; ``writer`` adds JSONL persistence (optional)."""
        with self._lock:
            if writer is not None:
                self._writer = writer
            if service is not None:
                self.service = service
            self._enabled = True

    def disable(self) -> None:
        with self._lock:
            self._enabled = False
            writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()

    def reset(self) -> None:
        """Forget all state (fresh start after ``fork``, and in tests)."""
        with self._lock:
            self._events.clear()
            self._enabled = False
            self._seq = 0
            self._dropped = 0
            writer, self._writer = self._writer, None
            self.service = "main"
        if writer is not None:
            writer.close()

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: object) -> Optional[Dict[str, object]]:
        """Record one event; a cheap no-op while disabled.

        Fields must be JSON-safe.  Returns the recorded event dict (with
        ``seq``/``ts``/``service`` stamped) or ``None`` when disabled.
        """
        if not self._enabled:
            return None
        event: Dict[str, object] = {"kind": kind, "ts": time()}
        event.update(fields)
        with self._lock:
            if not self._enabled:  # raced with disable()
                return None
            self._seq += 1
            event["seq"] = self._seq
            event.setdefault("service", self.service)
            if len(self._events) == self._events.maxlen:
                self._dropped += 1
            self._events.append(event)
            writer = self._writer
        if writer is not None:
            writer.write(event)
        return event

    # ------------------------------------------------------------------
    def events(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recent ``limit`` events (all when ``limit`` is None)."""
        with self._lock:
            out = list(self._events)
        if limit is not None and limit >= 0:
            out = out[-limit:] if limit else []
        return out

    def since(self, seq: int) -> List[Dict[str, object]]:
        """Events with ``seq`` strictly greater than the cursor.

        This is the wire-shipping primitive: a STATS response includes
        ``journal.since(0)`` (bounded by the ring), and the poller keeps a
        per-shard cursor so each event crosses once.
        """
        with self._lock:
            return [e for e in self._events if int(e.get("seq", 0)) > seq]

    def ingest(self, events: List[Dict[str, object]]) -> int:
        """Fold remote events (from a STATS payload) into this journal.

        Remote ``seq`` numbers belong to the remote process, so events are
        re-sequenced locally; their ``service``/``ts`` fields are kept.
        Returns the number of events accepted.  No-op while disabled.
        """
        if not self._enabled or not events:
            return 0
        accepted = 0
        with self._lock:
            writer = self._writer
            for remote in events:
                if not self._enabled:
                    break
                event = dict(remote)
                self._seq += 1
                event["seq"] = self._seq
                if len(self._events) == self._events.maxlen:
                    self._dropped += 1
                self._events.append(event)
                accepted += 1
        if writer is not None:
            for event in self.events(accepted):
                writer.write(event)
        return accepted

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: Process-wide journal, mirroring ``TRACER``/``ARENA``.
JOURNAL = EventJournal()
