"""Telemetry exporters: JSONL trace log, slow-query log, Prometheus text.

Three consumers of the tracing/metrics layer, all file- or string-based
so they work identically in tests, benches, and CI:

* :class:`JsonlTraceWriter` — append-only JSON-lines span log with
  size-based rotation (current file renamed to ``<path>.1`` when it
  crosses ``max_bytes``); the ``repro trace-dump`` CLI reads it back.
* :class:`SlowQueryLog` — whenever a local root span exceeds the
  threshold, the *entire* span tree (plus the root's cache-state tags)
  is written as one JSON line, so the offender arrives with its context.
* :func:`render_prometheus` — text exposition of the unified metrics
  snapshot (``schema``/``kind``/``stages``/``counters``, see
  :meth:`repro.serving.metrics.ServingMetrics.snapshot`): stage
  summaries become quantile-labelled summary samples, counters become
  ``_total`` counters.  :func:`parse_prometheus` is the matching reader
  used by CI to assert the scrape is well-formed.

Span-tree helpers (:func:`build_trace_tree`, :func:`format_trace`,
:func:`load_jsonl_spans`) live here too — they are shared by the
slow-query log, ``trace-dump``, and the tests.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "RotatingJsonlWriter",
    "JsonlTraceWriter",
    "SlowQueryLog",
    "render_prometheus",
    "parse_prometheus",
    "build_trace_tree",
    "format_trace",
    "load_jsonl_spans",
    "select_traces",
]


class RotatingJsonlWriter:
    """Append-only JSONL sink with single-file size rotation.

    One JSON object per line; when the current file crosses ``max_bytes``
    it is renamed to ``<path>.1`` (clobbering any previous rotation) and a
    fresh file is opened, so disk usage is bounded at roughly
    ``2 * max_bytes`` without an external log rotator.  Thread-safe; every
    write is flushed so readers (tests, ``trace-dump``, the dashboard)
    see complete lines.
    """

    def __init__(self, path: str, max_bytes: int = 16 * 1024 * 1024) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")

    def write(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._fh.write(line)
            self._fh.flush()
            if self._fh.tell() >= self.max_bytes:
                self._rotate()

    def _rotate(self) -> None:
        self._fh.close()
        os.replace(self.path, self.path + ".1")
        self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "RotatingJsonlWriter":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


class JsonlTraceWriter(RotatingJsonlWriter):
    """Append-only JSONL span sink with single-file rotation."""


class SlowQueryLog:
    """Capture full span trees for local roots slower than ``threshold_s``.

    Entries append to a :class:`RotatingJsonlWriter`, so a long-running
    service with a mis-set threshold cannot fill the disk: the log rolls
    to ``<path>.1`` at ``max_bytes`` just like the trace writer.
    """

    def __init__(
        self, path: str, threshold_s: float, max_bytes: int = 16 * 1024 * 1024
    ) -> None:
        self.path = path
        self.threshold_s = threshold_s
        self._writer = RotatingJsonlWriter(path, max_bytes=max_bytes)
        self._lock = threading.Lock()
        self._count = 0

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def maybe_record(
        self, root: Dict[str, object], spans: List[Dict[str, object]]
    ) -> bool:
        duration = root.get("duration") or 0.0
        if duration < self.threshold_s:
            return False
        entry = {
            "trace_id": root.get("trace_id"),
            "root": root.get("name"),
            "duration": duration,
            "threshold": self.threshold_s,
            "tags": root.get("tags", {}),
            "spans": spans,
        }
        self._writer.write(entry)
        with self._lock:
            self._count += 1
        try:
            from .journal import JOURNAL

            JOURNAL.emit(
                "slow_query",
                trace_id=root.get("trace_id"),
                root=root.get("name"),
                duration=duration,
                threshold=self.threshold_s,
            )
        except ImportError:  # pragma: no cover - circular-import guard
            pass
        return True

    def close(self) -> None:
        self._writer.close()


# ----------------------------------------------------------------------
# Prometheus-style text exposition


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def render_prometheus(snapshot: Dict[str, object], prefix: str = "repro") -> str:
    """Render a unified metrics snapshot as Prometheus text exposition.

    Stage summaries become summary-typed samples with ``quantile`` labels
    plus ``_count``/``_sum``; counters become one ``_total`` counter per
    name; cluster fanout/shard-request tallies get their own families.
    An info gauge carries the schema version and snapshot kind so a
    scraper can assert what it is looking at.
    """
    kind = snapshot.get("kind", "serving")
    schema = snapshot.get("schema", 0)
    lines: List[str] = []
    lines.append(f"# HELP {prefix}_snapshot_info Unified snapshot metadata.")
    lines.append(f"# TYPE {prefix}_snapshot_info gauge")
    lines.append(f'{prefix}_snapshot_info{{kind="{kind}",schema="{schema}"}} 1')

    stages = snapshot.get("stages") or {}
    if stages:
        metric = f"{prefix}_stage_latency_seconds"
        lines.append(f"# HELP {metric} Per-stage latency summary.")
        lines.append(f"# TYPE {metric} summary")
        for name in sorted(stages):
            s = stages[name]
            label = _sanitize(name)
            for q_label, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                lines.append(
                    f'{metric}{{stage="{label}",quantile="{q_label}"}} {s.get(key, 0.0):.9g}'
                )
            count = int(s.get("count", 0))
            lines.append(f'{metric}_count{{stage="{label}"}} {count}')
            lines.append(
                f'{metric}_sum{{stage="{label}"}} {s.get("mean", 0.0) * count:.9g}'
            )

    counters = snapshot.get("counters") or {}
    if counters:
        metric = f"{prefix}_counter_total"
        lines.append(f"# HELP {metric} Event counters.")
        lines.append(f"# TYPE {metric} counter")
        for name in sorted(counters):
            lines.append(f'{metric}{{name="{_sanitize(name)}"}} {counters[name]}')

    fanout = snapshot.get("fanout") or {}
    if fanout:
        metric = f"{prefix}_fanout_requests_total"
        lines.append(f"# HELP {metric} Requests by shard fan-out width.")
        lines.append(f"# TYPE {metric} counter")
        for width in sorted(fanout, key=lambda k: int(k)):
            lines.append(f'{metric}{{shards="{int(width)}"}} {fanout[width]}')

    shard_requests = snapshot.get("shard_requests") or {}
    if shard_requests:
        metric = f"{prefix}_shard_requests_total"
        lines.append(f"# HELP {metric} Requests routed to each shard.")
        lines.append(f"# TYPE {metric} counter")
        for shard in sorted(shard_requests, key=lambda k: int(k)):
            lines.append(f'{metric}{{shard="{int(shard)}"}} {shard_requests[shard]}')

    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse text exposition back to ``{(metric, labels): value}``.

    Labels are a sorted tuple of ``(key, value)`` pairs.  Raises
    :class:`ValueError` on a malformed sample line — CI uses this as a
    format assertion, not just a reader.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)
            if "{" in name_part:
                if not name_part.endswith("}"):
                    raise ValueError("unterminated label set")
                metric, label_blob = name_part[:-1].split("{", 1)
                labels = []
                for item in filter(None, label_blob.split(",")):
                    key, val = item.split("=", 1)
                    if not (val.startswith('"') and val.endswith('"')):
                        raise ValueError("unquoted label value")
                    labels.append((key, val[1:-1]))
                out[(metric, tuple(sorted(labels)))] = value
            else:
                out[(name_part, ())] = value
        except ValueError:
            raise ValueError(f"malformed exposition line: {line!r}")
    return out


# ----------------------------------------------------------------------
# Span-tree reconstruction


def load_jsonl_spans(path: str) -> List[Dict[str, object]]:
    """Read every span dict out of a JSONL trace log (rotated file first)."""
    spans: List[Dict[str, object]] = []
    for candidate in (path + ".1", path):
        if not os.path.exists(candidate):
            continue
        with open(candidate, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
    return spans


def build_trace_tree(
    spans: Iterable[Dict[str, object]],
) -> Dict[str, List[Dict[str, object]]]:
    """Group spans by trace, each trace ordered parent-before-child.

    Children follow their parent depth-first (siblings by start time);
    spans whose parent is missing from the set are treated as roots, so
    partial traces still render.
    """
    by_trace: Dict[str, List[Dict[str, object]]] = {}
    for span in spans:
        by_trace.setdefault(str(span.get("trace_id")), []).append(span)

    ordered: Dict[str, List[Dict[str, object]]] = {}
    for trace_id, members in by_trace.items():
        ids = {s.get("span_id") for s in members}
        children: Dict[Optional[str], List[Dict[str, object]]] = {}
        for span in members:
            parent = span.get("parent_id")
            key = parent if parent in ids else None
            children.setdefault(key, []).append(span)  # type: ignore[arg-type]
        for group in children.values():
            group.sort(key=lambda s: s.get("start") or 0.0)

        flat: List[Dict[str, object]] = []

        def _walk(parent_key: Optional[str], depth: int) -> None:
            for span in children.get(parent_key, []):
                span = dict(span)
                span["depth"] = depth
                flat.append(span)
                _walk(span.get("span_id"), depth + 1)  # type: ignore[arg-type]

        _walk(None, 0)
        ordered[trace_id] = flat
    return ordered


def select_traces(
    trees: Dict[str, List[Dict[str, object]]],
    trace_id: Optional[str] = None,
    limit: int = 0,
) -> List[Tuple[str, List[Dict[str, object]]]]:
    """Filter ordered traces for display (``trace-dump --trace-id/--limit``).

    Keeps insertion order (load order of the JSONL file), restricts to one
    trace when ``trace_id`` is given, and truncates to the first ``limit``
    traces when ``limit`` is positive.
    """
    selected = [
        (tid, spans)
        for tid, spans in trees.items()
        if trace_id is None or tid == trace_id
    ]
    if limit and limit > 0:
        selected = selected[:limit]
    return selected


def format_trace(spans: List[Dict[str, object]]) -> str:
    """Render one ordered trace (from :func:`build_trace_tree`) as text."""
    if not spans:
        return "(empty trace)"
    lines = [f"trace {spans[0].get('trace_id')}"]
    for span in spans:
        depth = int(span.get("depth", 0))
        duration = span.get("duration")
        dur_txt = f"{duration * 1e3:8.2f}ms" if isinstance(duration, (int, float)) else "   ?    "
        tags = span.get("tags") or {}
        tag_txt = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(tags.items())) + "]"
            if tags
            else ""
        )
        lines.append(
            f"  {dur_txt} {'  ' * depth}{span.get('name')}"
            f" ({span.get('service')}){tag_txt}"
        )
    return "\n".join(lines)
