"""`repro top`: render live telemetry as an ANSI terminal dashboard.

Pure string rendering over the timeline/health/journal layers — no
input handling, no terminal ownership.  The CLI drives it in two modes:

* **live** — clear-screen ANSI repaint every poll interval;
* **plain / single-frame** — each frame printed sequentially (headless
  CI, logs, piping).

Sparklines use the eight-level block characters; widths degrade
gracefully on narrow terminals.  Everything here is stdlib-only and
deterministic given the store/journal contents, so the frame renderer is
directly unit-testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .health import HealthScorer
from .journal import EventJournal
from .timeline import TimelineStore

__all__ = ["sparkline", "render_dashboard", "CLEAR_SCREEN"]

#: ANSI sequence a live renderer prefixes each repaint with.
CLEAR_SCREEN = "\x1b[2J\x1b[H"

_BLOCKS = "▁▂▃▄▅▆▇█"

_STATE_BADGES = {
    "healthy": "OK ",
    "degraded": "DEG",
    "unreachable": "DWN",
}


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Render the last ``width`` values as a block-character sparkline.

    Scaled to the rendered slice's own min/max (a flat series renders as
    a low bar, not a blank); empty input renders as spaces so columns
    stay aligned.
    """
    if width <= 0:
        return ""
    tail = list(values)[-width:]
    if not tail:
        return " " * width
    lo = min(tail)
    hi = max(tail)
    span = hi - lo
    chars: List[str] = []
    for v in tail:
        if span <= 0:
            chars.append(_BLOCKS[0] if hi <= 0 else _BLOCKS[1])
        else:
            idx = int((v - lo) / span * (len(_BLOCKS) - 1))
            chars.append(_BLOCKS[idx])
    return "".join(chars).rjust(width)


def _fmt_rate(value: Optional[float]) -> str:
    if value is None:
        return "    -"
    if value >= 1000:
        return f"{value / 1000:4.1f}k"
    return f"{value:5.1f}"


def _fmt_ms(value: Optional[float]) -> str:
    if value is None:
        return "     -"
    return f"{value * 1e3:5.1f}ms" if value < 10 else f"{value:6.1f}s"


def _fmt_pct(value: Optional[float]) -> str:
    return "   -" if value is None else f"{value * 100:3.0f}%"


def render_dashboard(
    store: TimelineStore,
    scorer: HealthScorer,
    journal: EventJournal,
    sources: Optional[Sequence[str]] = None,
    width: int = 100,
    events: int = 8,
    title: str = "repro top",
) -> str:
    """One dashboard frame: health table, per-source sparklines, event tail."""
    health = scorer.score_all(sources)
    spark_w = max(8, min(24, width - 76))
    lines: List[str] = []
    lines.append(
        f"{title} — SLO p{scorer.policy.objective_quantile * 100:.0f} "
        f"{scorer.policy.slo_stage} < {scorer.policy.latency_slo_s * 1e3:.0f}ms"
        f" — {len(health)} sources"
    )
    lines.append("-" * min(width, 100))
    lines.append(
        f"{'source':<10} {'state':<4} {'qps':>5} {'p95':>7} {'burn':>5} "
        f"{'err':>4} {'hit':>4} {'ep':>3}  {'qps history':<{spark_w}}  "
        f"{'p95 history':<{spark_w}}"
    )
    for source in sorted(health):
        verdict = health[source]
        badge = _STATE_BADGES.get(str(verdict["state"]), "?? ")
        hit = _best_hit_rate(store, source)
        qps_hist = sparkline(store.values(f"{source}.qps"), spark_w)
        stage = scorer.policy.slo_stage
        p95_hist = sparkline(
            store.values(f"{source}.stage.{stage}.p95"), spark_w
        )
        epoch = store.last(f"{source}.epoch")
        lines.append(
            f"{source:<10} {badge:<4} {_fmt_rate(verdict.get('qps')):>5} "
            f"{_fmt_ms(verdict.get('p95')):>7} {float(verdict.get('burn_rate') or 0):>5.2f} "
            f"{_fmt_pct(verdict.get('error_rate')):>4} {_fmt_pct(hit):>4} "
            f"{'-' if epoch is None else f'{epoch:.0f}':>3}  "
            f"{qps_hist}  {p95_hist}"
        )
        reasons = verdict.get("reasons") or []
        if reasons and verdict["state"] != "healthy":
            lines.append(f"{'':<10}  ↳ {'; '.join(str(r) for r in reasons)}")
    net_rx = store.last("cluster.rate.net_bytes_rx")
    net_tx = store.last("cluster.rate.net_bytes_tx")
    fanout = store.last("cluster.fanout.mean")
    extras: List[str] = []
    if net_rx is not None or net_tx is not None:
        extras.append(
            f"net rx {_bytes_rate(net_rx)} tx {_bytes_rate(net_tx)}"
        )
    if fanout is not None:
        extras.append(f"fan-out {fanout:.2f}")
    hedge_fired = store.last("cluster.rate.hedge_fired")
    hedge_won = store.last("cluster.rate.hedge_won")
    if hedge_fired is not None or hedge_won is not None:
        extras.append(
            f"hedges {_fmt_rate(hedge_fired).strip()}/s "
            f"won {_fmt_rate(hedge_won).strip()}/s"
        )
    open_breakers = store.last("cluster.breakers.open")
    if open_breakers is not None:
        extras.append(
            "breakers ok"
            if open_breakers == 0
            else f"breakers {open_breakers:.0f} OPEN"
        )
    epoch = store.last("cluster.epoch")
    if epoch is not None:
        skew = store.last("cluster.epoch.skew") or 0.0
        extras.append(
            f"epoch {epoch:.0f}"
            + ("" if skew == 0 else f" (SKEW {skew:.0f})")
        )
    if extras:
        lines.append("  " + "   ".join(extras))

    tail = journal.events(events)
    lines.append("-" * min(width, 100))
    if tail:
        lines.append(f"events (last {len(tail)}, {journal.dropped} dropped):")
        for event in tail:
            detail = ", ".join(
                f"{k}={v}"
                for k, v in sorted(event.items())
                if k not in ("kind", "ts", "seq", "service")
            )
            lines.append(
                f"  [{event.get('service', '?'):>7}] {event.get('kind'):<14}"
                f" {detail}"[:width]
            )
    else:
        lines.append("events: (none)")
    return "\n".join(lines) + "\n"


def _best_hit_rate(store: TimelineStore, source: str) -> Optional[float]:
    """The busiest cache tier's latest hit rate for a source, if any."""
    best: Optional[float] = None
    for name in store.names(f"{source}.cache."):
        if not name.endswith(".hit_rate"):
            continue
        value = store.last(name)
        if value is not None and (best is None or value > best):
            best = value
    return best


def _bytes_rate(value: Optional[float]) -> str:
    if value is None:
        return "-"
    for unit in ("B/s", "KiB/s", "MiB/s", "GiB/s"):
        if value < 1024 or unit == "GiB/s":
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB/s"  # pragma: no cover
