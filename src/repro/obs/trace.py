"""Request-scoped distributed tracing: spans, a bounded collector, one tracer.

A **trace** is one request's journey through the stack; a **span** is one
named region of work inside it (``cluster.predict`` → ``net.predict`` →
``shard.predict`` → ``gateway.predict`` → ``predict_heads`` …).  Spans
carry a ``trace_id`` shared by the whole request, their own ``span_id``,
their parent's id (``None`` for a local root), a wall-clock start, a
monotonic duration (:func:`time.perf_counter` deltas — never wall-clock
arithmetic), and free-form string/number tags.

Design constraints, in order:

* **Near-zero cost when off.**  :meth:`Tracer.span` checks one boolean
  and returns a shared no-op context manager; the serving hot paths pay
  one attribute load + one call per request when tracing is disabled.
* **Thread-safe, bounded.**  Finished spans land in a
  :class:`SpanCollector` ring buffer under a lock; when full, the oldest
  spans are dropped (and counted) rather than growing without bound.
* **Cross-process stitching.**  :meth:`Tracer.inject` exports the active
  span as a small JSON-safe dict (``trace_id`` + ``parent_id``); the
  server side resumes it with :meth:`Tracer.continue_from`, collects the
  request's spans with :meth:`SpanCollector.take_trace`, and ships them
  back in the response for :meth:`Tracer.attach` to merge — one query,
  one coherent span tree, no clock synchronization required (durations
  are per-process monotonic).

The ambient active span rides a :class:`contextvars.ContextVar`, so
nesting works across ``async`` tasks and within one thread; work handed
to executor threads starts a fresh local root (documented behaviour for
the micro-batch drain path).

There is one module-level :data:`TRACER`; everything in the serving
stack records through it so a single ``TRACER.enable()`` lights up the
whole process.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextvars import ContextVar
from time import perf_counter, time
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["Span", "SpanCollector", "Tracer", "TRACER", "new_id"]


def new_id() -> str:
    """A fresh 64-bit hex id (trace or span)."""
    return os.urandom(8).hex()


class Span:
    """One in-progress region of work; becomes a plain dict when finished."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "service",
        "started_at",
        "duration",
        "tags",
        "_t0",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        service: str,
        tags: Optional[Dict[str, object]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.service = service
        self.started_at = time()
        self.duration: Optional[float] = None
        self.tags: Dict[str, object] = dict(tags) if tags else {}
        self._t0 = perf_counter()

    def tag(self, key: str, value: object) -> None:
        """Attach one JSON-safe tag (str/int/float/bool)."""
        self.tags[key] = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "service": self.service,
            "start": self.started_at,
            "duration": self.duration,
            "tags": self.tags,
        }


class _NoopSpan:
    """Shared do-nothing stand-in returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def tag(self, key: str, value: object) -> None:
        pass


_NOOP = _NoopSpan()


class SpanCollector:
    """Thread-safe bounded ring buffer of finished span dicts.

    ``capacity`` bounds memory on a long-lived process: when full, the
    oldest span is dropped and counted in :attr:`dropped`.  ``add`` is
    idempotent per ``span_id`` (cross-process stitching can re-deliver a
    span that was already recorded locally, e.g. when client and server
    share one process in tests).
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: Deque[Dict[str, object]] = deque()
        self._ids: Set[str] = set()
        self._dropped = 0

    def add(self, span: Dict[str, object]) -> bool:
        """Record one finished span dict; False if its id was already held."""
        span_id = span.get("span_id")
        with self._lock:
            if span_id in self._ids:
                return False
            if len(self._spans) >= self.capacity:
                evicted = self._spans.popleft()
                self._ids.discard(evicted.get("span_id"))  # type: ignore[arg-type]
                self._dropped += 1
            self._spans.append(span)
            if span_id is not None:
                self._ids.add(span_id)  # type: ignore[arg-type]
            return True

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def spans(self) -> List[Dict[str, object]]:
        """A snapshot copy of every buffered span (oldest first)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Dict[str, object]]:
        """Remove and return everything buffered."""
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
            self._ids.clear()
            return out

    def trace(self, trace_id: str) -> List[Dict[str, object]]:
        """Non-destructive view of one trace's buffered spans."""
        with self._lock:
            return [s for s in self._spans if s.get("trace_id") == trace_id]

    def take_trace(self, trace_id: str) -> List[Dict[str, object]]:
        """Remove and return one trace's spans (server-side extraction)."""
        with self._lock:
            taken: List[Dict[str, object]] = []
            kept: Deque[Dict[str, object]] = deque()
            for span in self._spans:
                if span.get("trace_id") == trace_id:
                    taken.append(span)
                    self._ids.discard(span.get("span_id"))  # type: ignore[arg-type]
                else:
                    kept.append(span)
            self._spans = kept
            return taken


class _SpanScope:
    """Context manager for one live span (enter sets the ambient active)."""

    __slots__ = ("_tracer", "_name", "_tags", "_trace_id", "_parent_id", "span", "_token")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        tags: Optional[Dict[str, object]],
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._tags = tags
        self._trace_id = trace_id
        self._parent_id = parent_id
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        if self._trace_id is not None:
            trace_id, parent_id = self._trace_id, self._parent_id
        else:
            parent = _ACTIVE.get()
            if parent is not None:
                trace_id, parent_id = parent.trace_id, parent.span_id
            else:
                trace_id, parent_id = new_id(), None
        self.span = Span(
            trace_id, new_id(), parent_id, self._name, self._tracer.service, self._tags
        )
        self._token = _ACTIVE.set(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        assert span is not None
        span.duration = perf_counter() - span._t0
        if exc_type is not None:
            span.tags["error"] = exc_type.__name__
        _ACTIVE.reset(self._token)
        self._tracer._finish(span, local_root=self._trace_id is None and span.parent_id is None)
        return False


_ACTIVE: ContextVar[Optional[Span]] = ContextVar("repro_obs_active_span", default=None)


class Tracer:
    """The process-wide tracing facade (one instance: :data:`TRACER`).

    Disabled by default; :meth:`enable` flips recording on and optionally
    attaches a JSONL writer and a slow-query log (duck-typed — anything
    with ``write(span_dict)`` / ``maybe_record(root, spans)`` works, see
    :mod:`repro.obs.export`).
    """

    def __init__(self, service: str = "main", capacity: int = 8192) -> None:
        self.service = service
        self.collector = SpanCollector(capacity)
        self._enabled = False
        self._writer = None
        self._slow_log = None

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, writer=None, slow_log=None, service: Optional[str] = None) -> None:
        if service is not None:
            self.service = service
        if writer is not None:
            self._writer = writer
        if slow_log is not None:
            self._slow_log = slow_log
        self._enabled = True

    def ensure_enabled(self, service: Optional[str] = None) -> None:
        """Enable if not already (server side lights up on first traced request)."""
        if not self._enabled:
            self.enable(service=service)

    def disable(self) -> None:
        """Stop recording; buffered spans and exporter hooks are kept."""
        self._enabled = False

    def reset(self) -> None:
        """Back to a pristine disabled tracer (tests and CLI reruns)."""
        self._enabled = False
        self._writer = None
        self._slow_log = None
        self.collector = SpanCollector(self.collector.capacity)

    # ------------------------------------------------------------------
    def span(self, name: str, tags: Optional[Dict[str, object]] = None):
        """Open one span under the ambient active span (or a new root).

        Returns a context manager yielding the live :class:`Span` — or a
        shared no-op when tracing is disabled, so hot paths can call this
        unconditionally.
        """
        if not self._enabled:
            return _NOOP
        return _SpanScope(self, name, tags)

    def continue_from(
        self, ctx: Dict[str, object], name: str, tags: Optional[Dict[str, object]] = None
    ):
        """Open a span continuing a remote caller's trace context.

        ``ctx`` is the dict :meth:`inject` produced on the caller side
        (``trace_id`` + ``parent_id``).  Used by the server half of the
        wire protocol; enables the tracer if needed.
        """
        self.ensure_enabled()
        return _SpanScope(
            self,
            name,
            tags,
            trace_id=str(ctx["trace_id"]),
            parent_id=str(ctx["parent_id"]) if ctx.get("parent_id") else None,
        )

    def current(self) -> Optional[Span]:
        """The ambient active span, if any."""
        return _ACTIVE.get()

    def inject(self) -> Optional[Dict[str, str]]:
        """Wire-ready trace context of the active span (None when untraced)."""
        if not self._enabled:
            return None
        span = _ACTIVE.get()
        if span is None:
            return None
        return {"trace_id": span.trace_id, "parent_id": span.span_id}

    def record_stage(
        self, name: str, seconds: float, tags: Optional[Dict[str, object]] = None
    ) -> None:
        """Record an already-timed leaf span under the active span.

        The :meth:`ServingMetrics.stage` hook: stage timings become child
        spans for free whenever a request is being traced.  No ambient
        span → no record (stages outside a traced request stay metrics-only).
        """
        if not self._enabled:
            return
        parent = _ACTIVE.get()
        if parent is None:
            return
        span = Span(
            parent.trace_id, new_id(), parent.span_id, name, self.service, tags
        )
        span.started_at -= seconds  # started `seconds` before this call
        span.duration = seconds
        self._finish(span, local_root=False)

    def attach(self, spans: Iterable[Dict[str, object]]) -> int:
        """Merge remote span dicts into the local collector (stitching).

        Returns how many were new (already-held span ids are skipped, so
        in-process loopback cannot duplicate spans).
        """
        added = 0
        for span in spans:
            if self.collector.add(dict(span)):
                added += 1
                writer = self._writer
                if writer is not None:
                    writer.write(span)
        return added

    # ------------------------------------------------------------------
    def _finish(self, span: Span, local_root: bool) -> None:
        record = span.to_dict()
        self.collector.add(record)
        writer = self._writer
        if writer is not None:
            writer.write(record)
        if local_root:
            slow_log = self._slow_log
            if slow_log is not None:
                slow_log.maybe_record(record, self.collector.trace(span.trace_id))


#: The process-wide tracer every serving layer records through.
TRACER = Tracer()
