"""Per-op profiling arena for the fused NHWC primitives.

The fused layer (:mod:`repro.nn.fused`) is a handful of primitives —
``im2col``, the conv GEMM, the 1×1 fast path, affine folds, the linear
head-bank GEMM — and when a fused-path regression shows up in a bench,
the question is always *which primitive*.  The arena answers that: each
primitive wraps itself in :meth:`ProfilingArena.op`, compiled trunks and
head banks declare a :meth:`scope`, and :meth:`snapshot` reports
``scope/op`` → count/total/mean.

Cost discipline: when disabled (the default), :meth:`op` and
:meth:`scope` return one shared pre-built no-op context manager — no
allocation, no clock read, no lock.  Enabling is opt-in per process
(``ARENA.enable()``, or ``--profile-ops`` on ``repro predict-bench``).

Stdlib-only by design: :mod:`repro.obs` sits below every other repro
package so anything may import it without cycles.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from time import perf_counter
from typing import Dict, Iterator, Optional

__all__ = ["ProfilingArena", "ARENA"]

_SCOPE: ContextVar[str] = ContextVar("repro_obs_arena_scope", default="")


class _NoopCtx:
    __slots__ = ()

    def __enter__(self) -> "_NoopCtx":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopCtx()


class _OpTimer:
    __slots__ = ("_arena", "_name", "_t0")

    def __init__(self, arena: "ProfilingArena", name: str) -> None:
        self._arena = arena
        self._name = name

    def __enter__(self) -> "_OpTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._arena.record(self._name, perf_counter() - self._t0)
        return False


class _ScopeCtx:
    __slots__ = ("_name", "_token")

    def __init__(self, name: str) -> None:
        self._name = name

    def __enter__(self) -> "_ScopeCtx":
        self._token = _SCOPE.set(self._name)
        return self

    def __exit__(self, *exc_info) -> bool:
        _SCOPE.reset(self._token)
        return False


class ProfilingArena:
    """Opt-in per-op timing accumulator keyed by ``scope/op``."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._ops: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._ops.clear()

    # ------------------------------------------------------------------
    def scope(self, name: str):
        """Set the ambient scope (e.g. ``trunk``, ``heads``) for nested ops."""
        if not self.enabled:
            return _NOOP
        return _ScopeCtx(name)

    def op(self, name: str):
        """Time one primitive invocation under the current scope."""
        if not self.enabled:
            return _NOOP
        return _OpTimer(self, name)

    def record(self, op: str, seconds: float) -> None:
        key = f"{_SCOPE.get()}/{op}" if _SCOPE.get() else op
        with self._lock:
            entry = self._ops.get(key)
            if entry is None:
                entry = self._ops[key] = {"count": 0, "total": 0.0}
            entry["count"] += 1
            entry["total"] += seconds

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{"scope/op": {"count", "total", "mean"}}`` for every recorded op."""
        with self._lock:
            return {
                key: {
                    "count": entry["count"],
                    "total": entry["total"],
                    "mean": entry["total"] / entry["count"] if entry["count"] else 0.0,
                }
                for key, entry in self._ops.items()
            }

    def render(self) -> str:
        snap = self.snapshot()
        if not snap:
            return "profiling arena: no ops recorded"
        lines = [
            "profiling arena",
            f"  {'op':<24} {'count':>8} {'total':>12} {'mean':>12}",
        ]
        for key in sorted(snap, key=lambda k: -snap[k]["total"]):
            s = snap[key]
            lines.append(
                f"  {key:<24} {int(s['count']):>8} "
                f"{s['total'] * 1e3:>10.2f}ms {s['mean'] * 1e6:>10.1f}µs"
            )
        return "\n".join(lines)


#: The process-wide arena the fused primitives record into.
ARENA = ProfilingArena()
