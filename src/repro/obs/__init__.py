"""repro.obs — request tracing, telemetry export, per-op profiling.

Stdlib-only foundation layer: every other repro package may import from
here (serving metrics hook stage timings into the tracer, the fused
primitives record into the arena, the net layer stitches cross-process
spans), and :mod:`repro.obs` imports none of them back.
"""

from .arena import ARENA, ProfilingArena
from .export import (
    JsonlTraceWriter,
    SlowQueryLog,
    build_trace_tree,
    format_trace,
    load_jsonl_spans,
    parse_prometheus,
    render_prometheus,
)
from .trace import TRACER, Span, SpanCollector, Tracer, new_id

__all__ = [
    "ARENA",
    "ProfilingArena",
    "JsonlTraceWriter",
    "SlowQueryLog",
    "build_trace_tree",
    "format_trace",
    "load_jsonl_spans",
    "parse_prometheus",
    "render_prometheus",
    "TRACER",
    "Span",
    "SpanCollector",
    "Tracer",
    "new_id",
]
