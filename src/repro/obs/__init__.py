"""repro.obs — request tracing, continuous telemetry, per-op profiling.

Stdlib-only foundation layer: every other repro package may import from
here (serving metrics hook stage timings into the tracer, the fused
primitives record into the arena, the net layer stitches cross-process
spans and ships journal events), and :mod:`repro.obs` imports none of
them back.

Point-in-time observability (PR 6): :data:`TRACER` spans, the
:class:`ProfilingArena`, JSONL/Prometheus exporters.  Continuous
telemetry (PR 7): the :class:`TelemetryPoller` diffs unified snapshots
into windowed rate series (:mod:`~repro.obs.timeline`), the
:data:`JOURNAL` records the discrete events behind metric movement
(:mod:`~repro.obs.journal`), and the :class:`HealthScorer` turns both
into per-shard health states (:mod:`~repro.obs.health`) that the
``repro top`` dashboard renders (:mod:`~repro.obs.dashboard`).
"""

from .arena import ARENA, ProfilingArena
from .dashboard import CLEAR_SCREEN, render_dashboard, sparkline
from .export import (
    JsonlTraceWriter,
    RotatingJsonlWriter,
    SlowQueryLog,
    build_trace_tree,
    format_trace,
    load_jsonl_spans,
    parse_prometheus,
    render_prometheus,
    select_traces,
)
from .health import HealthPolicy, HealthScorer, estimate_breach_fraction
from .journal import JOURNAL, EventJournal
from .timeline import SeriesWindow, TelemetryPoller, TimelineStore, snapshot_rates
from .trace import TRACER, Span, SpanCollector, Tracer, new_id

__all__ = [
    "ARENA",
    "ProfilingArena",
    "CLEAR_SCREEN",
    "render_dashboard",
    "sparkline",
    "JsonlTraceWriter",
    "RotatingJsonlWriter",
    "SlowQueryLog",
    "build_trace_tree",
    "format_trace",
    "load_jsonl_spans",
    "parse_prometheus",
    "render_prometheus",
    "select_traces",
    "HealthPolicy",
    "HealthScorer",
    "estimate_breach_fraction",
    "JOURNAL",
    "EventJournal",
    "SeriesWindow",
    "TelemetryPoller",
    "TimelineStore",
    "snapshot_rates",
    "TRACER",
    "Span",
    "SpanCollector",
    "Tracer",
    "new_id",
]
