"""Continuous telemetry: windowed rate series diffed from snapshots.

PR 6's unified snapshot is a single frame — cumulative counters and
lifetime latency summaries.  This module adds the time axis:

* :class:`SeriesWindow` — a fixed-capacity ring of ``(t, value)`` points.
* :class:`TimelineStore` — a thread-safe name → window table.
* :func:`snapshot_rates` — the pure diff: two consecutive unified
  snapshots (plus optional ``cache_stats``) become instantaneous gauges —
  ``qps``, per-counter rates, per-stage p50/p95/p99, cache hit rates,
  mean fan-out.
* :class:`TelemetryPoller` — a daemon thread that polls a set of
  snapshot *sources* every ``interval_s``, feeds the diffs into a store,
  folds remote journal events into the local :data:`~repro.obs.journal.JOURNAL`,
  and records per-source reachability (the ``up`` series the
  :class:`~repro.obs.health.HealthScorer` reads).

Sources are plain callables returning snapshot dicts, so this module
stays stdlib-only;
:meth:`TelemetryPoller.for_gateway` duck-types the serving/cluster
gateway surface (``unified_snapshot``/``shards``/``stats``) to build the
conventional source set without importing those packages.
"""

from __future__ import annotations

import threading
from time import monotonic
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .journal import JOURNAL, EventJournal

__all__ = [
    "SeriesWindow",
    "TimelineStore",
    "snapshot_rates",
    "TelemetryPoller",
]

#: Counters whose per-second rates are always worth a series (others are
#: recorded only once they move, to keep the store tidy).
KEY_COUNTERS = (
    "requests",
    "predictions",
    "errors",
    "coalesced",
    "cross_shard",
    "net_bytes_tx",
    "net_bytes_rx",
    "hedge_fired",
    "hedge_won",
    "net_retries",
    "net_failovers",
    # self-tuning controller actions (repro.control)
    "prefetch_builds",
    "prefetch_hits",
    "autotune_replications",
)

#: Stages whose quantile gauges are tracked per poll.
KEY_STAGES = ("total", "predict_total", "fetch", "net_roundtrip")


class SeriesWindow:
    """Fixed-capacity ring of ``(t, value)`` samples, oldest evicted."""

    def __init__(self, capacity: int = 120) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._points: List[Tuple[float, float]] = []

    def append(self, t: float, value: float) -> None:
        self._points.append((t, value))
        if len(self._points) > self.capacity:
            del self._points[: len(self._points) - self.capacity]

    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def values(self) -> List[float]:
        return [v for _, v in self._points]

    def last(self) -> Optional[float]:
        return self._points[-1][1] if self._points else None

    def mean(self) -> float:
        if not self._points:
            return 0.0
        return sum(v for _, v in self._points) / len(self._points)

    def span_s(self) -> float:
        """Wall-time covered by the window (0 with < 2 points)."""
        if len(self._points) < 2:
            return 0.0
        return self._points[-1][0] - self._points[0][0]

    def __len__(self) -> int:
        return len(self._points)


class TimelineStore:
    """Thread-safe table of named :class:`SeriesWindow` rings."""

    def __init__(self, capacity: int = 120) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._series: Dict[str, SeriesWindow] = {}

    def record(self, name: str, t: float, value: float) -> None:
        with self._lock:
            window = self._series.get(name)
            if window is None:
                window = self._series[name] = SeriesWindow(self.capacity)
            window.append(t, value)

    def record_many(self, t: float, values: Dict[str, float]) -> None:
        for name, value in values.items():
            self.record(name, t, value)

    def series(self, name: str) -> Optional[SeriesWindow]:
        with self._lock:
            return self._series.get(name)

    def values(self, name: str) -> List[float]:
        window = self.series(name)
        return window.values() if window is not None else []

    def last(self, name: str) -> Optional[float]:
        window = self.series(name)
        return window.last() if window is not None else None

    def names(self, prefix: str = "") -> List[str]:
        with self._lock:
            return sorted(n for n in self._series if n.startswith(prefix))

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)


def _counter_delta(
    prev: Dict[str, object], curr: Dict[str, object], name: str
) -> float:
    prev_c = prev.get("counters") or {}
    curr_c = curr.get("counters") or {}
    return float(curr_c.get(name, 0)) - float(prev_c.get(name, 0))


def snapshot_rates(
    prev: Dict[str, object], curr: Dict[str, object], dt: float
) -> Dict[str, float]:
    """Diff two consecutive unified snapshots into instantaneous gauges.

    ``prev`` and ``curr`` are unified snapshots (schema 1 or 2), each
    optionally carrying a ``cache_stats`` table (the shard STATS payload
    does).  Counter rates are clamped at zero — a restarted worker's
    counters legitimately go backwards.  Quantile gauges are *lifetime*
    summaries sampled at poll time, not per-interval quantiles.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    out: Dict[str, float] = {}

    prev_counters = prev.get("counters") or {}
    curr_counters = curr.get("counters") or {}
    tracked = set(KEY_COUNTERS) | set(prev_counters) | set(curr_counters)
    for name in tracked:
        if name not in curr_counters and name not in KEY_COUNTERS:
            continue
        delta = _counter_delta(prev, curr, name)
        out[f"rate.{name}"] = max(delta, 0.0) / dt
    out["qps"] = out.get("rate.requests", 0.0) + out.get("rate.predictions", 0.0)

    for stage, summary in (curr.get("stages") or {}).items():
        if stage not in KEY_STAGES:
            continue
        for key in ("p50", "p95", "p99"):
            out[f"stage.{stage}.{key}"] = float(summary.get(key, 0.0))

    prev_cache = prev.get("cache_stats") or {}
    for tier, stats in (curr.get("cache_stats") or {}).items():
        before = prev_cache.get(tier) or {}
        hits = float(stats.get("hits", 0)) - float(before.get("hits", 0))
        misses = float(stats.get("misses", 0)) - float(before.get("misses", 0))
        lookups = hits + misses
        if lookups > 0:
            out[f"cache.{tier}.hit_rate"] = hits / lookups
        # cost-aware evictions only grow a series once a score hook has
        # actually fired — plain-LRU tiers stay out of the store
        if float(stats.get("score_evictions", 0)) > 0:
            delta = float(stats.get("score_evictions", 0)) - float(
                before.get("score_evictions", 0)
            )
            out[f"cache.{tier}.score_evictions"] = max(delta, 0.0) / dt

    open_breakers = 0.0
    for states in (curr.get("breakers") or {}).values():
        for state in (states or {}).values():
            if state != "closed":
                open_breakers += 1.0
    if curr.get("breakers") is not None:
        out["breakers.open"] = open_breakers

    # topology-epoch skew: a replica whose acknowledged epoch trails its
    # shard siblings missed a mutation broadcast — worst per-shard spread
    if curr.get("epoch") is not None:
        out["epoch"] = float(curr["epoch"])
    if curr.get("epochs") is not None:
        skew = 0.0
        for replica_epochs in (curr.get("epochs") or {}).values():
            values = [float(v) for v in (replica_epochs or {}).values()]
            if values:
                skew = max(skew, max(values) - min(values))
        out["epoch.skew"] = skew

    prev_fanout = prev.get("fanout") or {}
    curr_fanout = curr.get("fanout") or {}
    weighted = 0.0
    total = 0.0
    for width, count in curr_fanout.items():
        delta = float(count) - float(prev_fanout.get(width, 0))
        if delta > 0:
            weighted += int(width) * delta
            total += delta
    if total > 0:
        out["fanout.mean"] = weighted / total
    return out


class TelemetryPoller:
    """Background thread turning live snapshots into windowed series.

    ``sources`` maps a label (``"cluster"``, ``"shard0"``, …) to a
    zero-argument callable returning a snapshot dict.  Every interval the
    poller calls each source, diffs against that source's previous
    snapshot (:func:`snapshot_rates`) into ``<label>.<series>`` entries,
    ingests any ``"journal"`` events the payload carried (cursored per
    source so each crosses once), and records ``<label>.up`` (1.0/0.0).
    A source that raises is marked down and journals a ``poll_error``.

    The poller holds no references into the serving stack beyond the
    source callables, costs nothing when not constructed, and is safe to
    ``stop()`` from any thread.
    """

    def __init__(
        self,
        sources: Dict[str, Callable[[], Dict[str, object]]],
        interval_s: float = 1.0,
        store: Optional[TimelineStore] = None,
        journal: Optional[EventJournal] = None,
        window: int = 120,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.sources = dict(sources)
        self.interval_s = interval_s
        self.store = store if store is not None else TimelineStore(window)
        self.journal = journal if journal is not None else JOURNAL
        self._clock = clock
        self._prev: Dict[str, Tuple[float, Dict[str, object]]] = {}
        self._journal_cursor: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.polls = 0
        self.poll_errors = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_gateway(cls, gateway: object, **kwargs: object) -> "TelemetryPoller":
        """Build the conventional source set for a gateway (duck-typed).

        * anything with ``unified_snapshot()`` contributes a ``cluster``
          source (the merged front-end view);
        * each entry of a ``shards`` sequence contributes ``shard<N>``:
          remote shards (``is_remote``) answer via their ``stats()``
          STATS round trip — which also carries ``cache_stats`` and the
          worker's journal ring — while in-process shards snapshot their
          gateway directly;
        * a bare :class:`~repro.serving.gateway.ServingGateway` (has
          ``metrics`` but no shards) becomes a single ``serving`` source.
        """
        sources: Dict[str, Callable[[], Dict[str, object]]] = {}
        unified = getattr(gateway, "unified_snapshot", None)
        if callable(unified):
            sources["cluster"] = unified
        shards: Sequence[object] = getattr(gateway, "shards", ()) or ()
        for index, shard in enumerate(shards):
            label = f"shard{getattr(shard, 'shard_id', index)}"
            remote = getattr(shard, "is_remote", False)
            if callable(remote):  # PoolShard exposes it as a method
                remote = remote()
            if remote:
                sources[label] = shard.stats  # type: ignore[attr-defined]
            else:
                sources[label] = _local_shard_source(shard)
        if not sources:
            metrics = getattr(gateway, "metrics", None)
            if metrics is None:
                raise TypeError(
                    "cannot derive telemetry sources from "
                    f"{type(gateway).__name__!r}"
                )
            cache_stats_fn = getattr(gateway, "cache_stats", None)
            sources["serving"] = _serving_source(metrics, cache_stats_fn)
        return cls(sources, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def poll_once(self) -> Dict[str, Dict[str, float]]:
        """One synchronous sweep over every source (tests/CI call this).

        Returns ``{label: {series: value}}`` for sources that produced a
        diff this sweep (a source's first poll only seeds its baseline).
        """
        self.polls += 1
        now = self._clock()
        produced: Dict[str, Dict[str, float]] = {}
        for label, source in self.sources.items():
            try:
                snap = source()
            except Exception as exc:  # noqa: BLE001 - any failure = down
                self.poll_errors += 1
                self.store.record(f"{label}.up", now, 0.0)
                self._prev.pop(label, None)
                self.journal.emit(
                    "poll_error", source=label, error=f"{type(exc).__name__}: {exc}"
                )
                continue
            self.store.record(f"{label}.up", now, 1.0)
            self._ingest_journal(label, snap)
            prev = self._prev.get(label)
            if prev is not None:
                prev_t, prev_snap = prev
                dt = now - prev_t
                if dt > 0:
                    rates = snapshot_rates(prev_snap, snap, dt)
                    self.store.record_many(
                        now, {f"{label}.{k}": v for k, v in rates.items()}
                    )
                    produced[label] = rates
            self._prev[label] = (now, snap)
        return produced

    def _ingest_journal(self, label: str, snap: Dict[str, object]) -> None:
        events = snap.get("journal")
        if not isinstance(events, list) or not events:
            return
        cursor = self._journal_cursor.get(label, 0)
        fresh = [e for e in events if int(e.get("seq", 0)) > cursor]
        if not fresh:
            return
        self._journal_cursor[label] = max(int(e.get("seq", 0)) for e in fresh)
        self.journal.ingest(fresh)

    # ------------------------------------------------------------------
    def start(self) -> "TelemetryPoller":
        if self._thread is not None:
            raise RuntimeError("poller already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="telemetry-poller", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 - the poller must not die
                self.poll_errors += 1

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "TelemetryPoller":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False


def _local_shard_source(shard: object) -> Callable[[], Dict[str, object]]:
    """Snapshot an in-process shard: gateway metrics + cache stats."""

    def source() -> Dict[str, object]:
        snap = shard.gateway.metrics.snapshot(  # type: ignore[attr-defined]
            include_histograms=True
        )
        snap["cache_stats"] = {
            tier: _stats_dict(s)
            for tier, s in shard.cache_stats().items()  # type: ignore[attr-defined]
        }
        return snap

    return source


def _serving_source(
    metrics: object, cache_stats_fn: Optional[Callable[[], Dict[str, object]]]
) -> Callable[[], Dict[str, object]]:
    def source() -> Dict[str, object]:
        snap = metrics.snapshot(include_histograms=True)  # type: ignore[attr-defined]
        if callable(cache_stats_fn):
            snap["cache_stats"] = {
                tier: _stats_dict(s) for tier, s in cache_stats_fn().items()
            }
        return snap

    return source


def _stats_dict(stats: object) -> Dict[str, object]:
    if isinstance(stats, dict):
        return stats
    if hasattr(stats, "__dataclass_fields__"):
        import dataclasses

        return dataclasses.asdict(stats)
    return dict(vars(stats))
