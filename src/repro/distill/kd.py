"""Standard knowledge distillation (paper Eq. 1) — the KD baseline and the
library-extraction step of PoE's preprocessing phase."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import Module
from ..tensor import Tensor
from .caches import batched_forward
from .losses import kd_loss
from .trainer import EvalFn, History, TrainConfig, Trainer

__all__ = ["distill_kd"]


def distill_kd(
    teacher: Module | np.ndarray,
    student: Module,
    images: np.ndarray,
    config: TrainConfig = TrainConfig(),
    temperature: float = 4.0,
    class_ids: Optional[Sequence[int]] = None,
    eval_fn: Optional[EvalFn] = None,
) -> History:
    """Distill ``teacher`` into ``student`` over ``images`` with ``L_KD``.

    Parameters
    ----------
    teacher:
        Either a model (its logits are cached once) or a pre-computed logit
        array of shape (N, |C|).
    class_ids:
        When given, both teacher logits and the loss are restricted to these
        columns — i.e. this becomes a *conditional* standard distillation.
        ``None`` distills the entire knowledge (the paper's KD baseline).
    """
    teacher_logits = (
        teacher if isinstance(teacher, np.ndarray) else batched_forward(teacher, images)
    )
    if class_ids is not None:
        teacher_logits = teacher_logits[:, np.asarray(class_ids, dtype=np.int64)]

    def loss_fn(model: Module, batch: np.ndarray, idx: np.ndarray) -> Tensor:
        student_logits = model(Tensor(batch))
        return kd_loss(Tensor(teacher_logits[idx]), student_logits, temperature)

    trainer = Trainer(student, loss_fn, config)
    return trainer.fit(images, eval_fn=eval_fn)
