"""Loss functions of the distillation framework.

Maps paper equations to code:

* Eq. (1) ``L_KD``    -> :func:`repro.tensor.functional.kd_loss` (re-exported)
* Eq. (3) ``L_soft``  -> :func:`soft_subtask_loss`
* Eq. (4) ``L_scale`` -> :func:`scale_subtask_loss`
* Eq. (2) ``L_CKD``   -> :func:`ckd_loss`

The *sub-logit* ``t_Hi`` of teacher logits ``t`` is the restriction of ``t``
to the columns of the classes in ``H_i`` — taking it **before** any softmax
is what distinguishes conditional distillation from masking probabilities.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..tensor import Tensor
from ..tensor.functional import (
    cross_entropy,
    kd_loss,
    kl_div_from_logits,
    l1_loss,
    mse_loss,
)

__all__ = [
    "sub_logits",
    "soft_subtask_loss",
    "scale_subtask_loss",
    "ckd_loss",
    "kd_loss",
    "cross_entropy",
    "kl_div_from_logits",
]


def sub_logits(logits: Tensor, class_ids: Sequence[int]) -> Tensor:
    """Restrict a logit tensor (N, |C|) to the columns in ``class_ids``."""
    idx = np.asarray(class_ids, dtype=np.int64)
    return logits[:, idx]


def soft_subtask_loss(
    teacher_logits: Tensor,
    student_logits: Tensor,
    class_ids: Sequence[int] | None = None,
    temperature: float = 4.0,
) -> Tensor:
    """``L_soft`` (Eq. 3): KL between softened teacher/student *sub-logits*.

    ``teacher_logits`` are the oracle's full logits; ``class_ids`` selects
    the primitive task's columns.  ``student_logits`` must already have
    ``len(class_ids)`` outputs (the expert's head is that small).  Because
    the loss is computed on **all** training samples — including ones whose
    true class lies outside the task — the expert learns the oracle's *low*
    confidence on out-of-distribution inputs, avoiding the overconfidence
    failure of Scratch/Transfer (Figure 2).
    """
    t = teacher_logits if class_ids is None else sub_logits(teacher_logits, class_ids)
    if t.shape[-1] != student_logits.shape[-1]:
        raise ValueError(
            f"student produces {student_logits.shape[-1]} logits but the task has "
            f"{t.shape[-1]} classes"
        )
    return kl_div_from_logits(t, student_logits, temperature)


def scale_subtask_loss(
    teacher_logits: Tensor,
    student_logits: Tensor,
    class_ids: Sequence[int] | None = None,
    norm: str = "l1",
) -> Tensor:
    """``L_scale`` (Eq. 4): hard match of raw sub-logits.

    Transfers the oracle's global logit *scale* into each expert so that
    independently extracted experts can be concatenated (the logit scale
    problem, §4.2).  The paper argues for L1 (robust to outliers: carries
    scale, not exact values); ``norm='l2'`` is kept for the ablation bench.
    """
    t = teacher_logits if class_ids is None else sub_logits(teacher_logits, class_ids)
    if norm == "l1":
        return l1_loss(student_logits, t)
    if norm == "l2":
        return mse_loss(student_logits, t)
    raise ValueError(f"unknown norm {norm!r}; expected 'l1' or 'l2'")


def ckd_loss(
    teacher_logits: Tensor,
    student_logits: Tensor,
    class_ids: Sequence[int] | None = None,
    temperature: float = 4.0,
    alpha: float = 0.3,
    soft_weight: float = 1.0,
    scale_norm: str = "l1",
) -> Tensor:
    """``L_CKD = L_soft + α·L_scale`` (Eq. 2).

    ``soft_weight``/``alpha`` allow the Table 5 ablations (L_soft only,
    L_scale only, both); α defaults to the paper's 0.3.
    """
    total = None
    if soft_weight:
        total = soft_weight * soft_subtask_loss(
            teacher_logits, student_logits, class_ids, temperature
        )
    if alpha:
        scale = alpha * scale_subtask_loss(
            teacher_logits, student_logits, class_ids, scale_norm
        )
        total = scale if total is None else total + scale
    if total is None:
        raise ValueError("ckd_loss needs at least one of soft_weight/alpha nonzero")
    return total
