"""Ensemble combination — and why it cannot merge disjoint experts.

The paper's related work (§2) notes that classic ensembles (voting or
probability averaging, Kittler et al. 1998) "assume that every model is
built for the same task, and therefore are not applicable to merging
multiple specialized models like experts of PoE".  We implement the two
classic combiners so this claim is *testable*:

* for homogeneous members (same label space) they behave as expected;
* for disjoint experts there is no principled way to compare confidences
  across members — padding each expert's distribution with zeros outside
  its own classes makes the combined argmax depend only on each expert's
  (incomparable) self-confidence, which is exactly the overconfidence /
  scale failure PoE's CKD avoids.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..nn import Module
from ..tensor import Tensor, no_grad
from ..tensor.functional import softmax
from .caches import batched_forward

__all__ = ["average_probabilities", "majority_vote", "DisjointEnsemble"]


def _member_probs(members: Sequence[Module], images: np.ndarray) -> List[np.ndarray]:
    probs = []
    for member in members:
        logits = batched_forward(member, images)
        with no_grad():
            probs.append(softmax(Tensor(logits)).numpy())
    return probs


def average_probabilities(members: Sequence[Module], images: np.ndarray) -> np.ndarray:
    """Soft-voting ensemble over members with a *common* label space."""
    probs = _member_probs(members, images)
    width = probs[0].shape[1]
    if any(p.shape[1] != width for p in probs):
        raise ValueError("probability averaging requires a common label space")
    return np.mean(probs, axis=0)


def majority_vote(members: Sequence[Module], images: np.ndarray) -> np.ndarray:
    """Hard-voting ensemble; ties resolve to the lowest class id."""
    votes = []
    for member in members:
        votes.append(batched_forward(member, images).argmax(axis=1))
    votes = np.stack(votes, axis=1)
    width = int(votes.max()) + 1
    counts = np.zeros((votes.shape[0], width), dtype=np.int64)
    for column in votes.T:
        counts[np.arange(len(column)), column] += 1
    return counts.argmax(axis=1)


class DisjointEnsemble:
    """The naive 'zero-padded' combination of disjoint specialists.

    Each expert's softmax over its own classes is embedded into the union
    label space (zeros elsewhere) and averaged.  The argmax then belongs
    to whichever expert happens to be most self-confident — a quantity
    that is meaningless across independently trained specialists.  Kept as
    an executable counter-example (see tests), not as a recommended API.
    """

    def __init__(self, members: Sequence[Tuple[Module, Sequence[int]]], num_classes: int) -> None:
        self.members = list(members)
        self.num_classes = num_classes
        covered: set = set()
        for _, classes in self.members:
            overlap = covered.intersection(classes)
            if overlap:
                raise ValueError(f"members overlap on classes {sorted(overlap)}")
            covered.update(classes)

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        out = np.zeros((images.shape[0], self.num_classes), dtype=np.float64)
        for member, classes in self.members:
            logits = batched_forward(member, images)
            with no_grad():
                probs = softmax(Tensor(logits)).numpy()
            out[:, np.asarray(classes)] += probs
        return out / len(self.members)

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self.predict_proba(images).argmax(axis=1)
