"""Distillation framework: losses, trainer, CKD, and all paper baselines."""

from .baselines import train_scratch, train_transfer
from .caches import LogitCache, batched_forward
from .ckd import CKDSettings, distill_ckd_head
from .dmc import merge_dmc
from .ensemble import DisjointEnsemble, average_probabilities, majority_vote
from .kd import distill_kd
from .losses import (
    ckd_loss,
    cross_entropy,
    kd_loss,
    kl_div_from_logits,
    scale_subtask_loss,
    soft_subtask_loss,
    sub_logits,
)
from .merge import merge_sd, merge_uhc, teacher_logit_blocks
from .trainer import History, HistoryPoint, TrainConfig, Trainer

__all__ = [
    "Trainer",
    "TrainConfig",
    "History",
    "HistoryPoint",
    "batched_forward",
    "LogitCache",
    "distill_kd",
    "distill_ckd_head",
    "CKDSettings",
    "train_scratch",
    "train_transfer",
    "merge_sd",
    "merge_uhc",
    "merge_dmc",
    "teacher_logit_blocks",
    "average_probabilities",
    "majority_vote",
    "DisjointEnsemble",
    "sub_logits",
    "soft_subtask_loss",
    "scale_subtask_loss",
    "ckd_loss",
    "kd_loss",
    "cross_entropy",
    "kl_div_from_logits",
]
