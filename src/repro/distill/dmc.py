"""DMC — Deep Model Consolidation (Zhang et al., WACV 2020).

The paper's related work (§2) discusses DMC as the continual-learning
cousin of UHC: two disjoint models (an *old* model and a *new-task* model)
are combined into one student via **double distillation** — the student
regresses both teachers' logits simultaneously, each normalised per
teacher so neither dominates.  The PoE paper argues "DMC can be seen as a
special case of UHC in the context of the merging functionality" and
inherits the same need for a training phase; we implement it so that the
claim is checkable and so the merge-baseline family is complete.

Following the DMC paper, the objective is a (per-teacher standardised)
L2 regression of the student's sub-logits onto each teacher's logits —
the standardisation is DMC's answer to the logit scale problem, and the
reason it needs no labelled data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn import Module
from ..tensor import Tensor
from .caches import batched_forward
from .trainer import EvalFn, History, TrainConfig, Trainer

__all__ = ["merge_dmc"]


def _standardise(block: np.ndarray) -> np.ndarray:
    """Zero-mean / unit-variance per sample over a teacher's logits.

    DMC normalises each teacher's outputs so the regression target is
    scale-free; this discards absolute scale information (contrast with
    PoE's ``L_scale``, which deliberately preserves it).
    """
    mean = block.mean(axis=1, keepdims=True)
    std = block.std(axis=1, keepdims=True) + 1e-6
    return (block - mean) / std


def merge_dmc(
    teachers: Sequence[Module] | Sequence[np.ndarray],
    student: Module,
    images: np.ndarray,
    config: TrainConfig = TrainConfig(),
    eval_fn: Optional[EvalFn] = None,
) -> History:
    """Merge disjoint teachers into ``student`` by double distillation.

    The student's output width must equal the sum of teacher widths; its
    sub-logit blocks regress onto the standardised teacher logits with an
    L2 loss (the DMC objective), using the merge dataset's images only —
    no labels are consumed.
    """
    blocks: List[np.ndarray] = [
        _standardise(t if isinstance(t, np.ndarray) else batched_forward(t, images))
        for t in teachers
    ]
    target = np.concatenate(blocks, axis=1)

    def loss_fn(model: Module, batch: np.ndarray, idx: np.ndarray) -> Tensor:
        logits = model(Tensor(batch))
        if logits.shape[1] != target.shape[1]:
            raise ValueError(
                f"student outputs {logits.shape[1]} classes, teachers cover "
                f"{target.shape[1]}"
            )
        diff = logits - Tensor(target[idx])
        return (diff * diff).mean()

    trainer = Trainer(student, loss_fn, config)
    return trainer.fit(images, eval_fn=eval_fn)
