"""Pre-computation caches used by the distillation pipelines.

Teachers and frozen trunks are fixed functions during distillation, so
their outputs over the (un-augmented) training set are computed once and
reused every epoch.  On a numpy substrate this is the difference between a
benchmark matrix that runs in minutes and one that runs in hours.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Module
from ..tensor import Tensor, no_grad

__all__ = ["batched_forward", "LogitCache"]


def batched_forward(
    module: Module, images: np.ndarray, batch_size: int = 512
) -> np.ndarray:
    """Evaluate ``module`` over ``images`` in eval mode without gradients."""
    was_training = module.training
    module.eval()
    outputs = []
    with no_grad():
        for start in range(0, images.shape[0], batch_size):
            batch = Tensor(images[start : start + batch_size])
            outputs.append(module(batch).numpy())
    if was_training:
        module.train()
    return np.concatenate(outputs, axis=0)


class LogitCache:
    """Lazily computed logits of a fixed model over a fixed image array."""

    def __init__(self, model: Module, images: np.ndarray, batch_size: int = 512) -> None:
        self._model = model
        self._images = images
        self._batch_size = batch_size
        self._logits: Optional[np.ndarray] = None

    @property
    def logits(self) -> np.ndarray:
        if self._logits is None:
            self._logits = batched_forward(self._model, self._images, self._batch_size)
        return self._logits

    def __getitem__(self, idx) -> np.ndarray:
        return self.logits[idx]
