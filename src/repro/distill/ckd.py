"""Conditional knowledge distillation (CKD) — the paper's §4.1 contribution.

CKD extracts *only* the specialized knowledge of a primitive (or composite)
task from the oracle into a tiny expert component:

* the shared library trunk stays **frozen** (and in eval mode, so its batch
  statistics are fixed) — only the expert head is updated;
* the loss is ``L_CKD = L_soft + α·L_scale`` over the oracle's *sub-logits*
  for the task's classes, computed on **all** training data so the expert
  also learns the oracle's low confidence on out-of-distribution inputs.

Implementation note: because the trunk is frozen, its features over the
training set are computed once and the head is trained directly on the
cached feature maps; this changes nothing mathematically and speeds up
expert extraction by roughly the trunk/head cost ratio.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import Module
from ..tensor import Tensor
from .caches import batched_forward
from .losses import ckd_loss
from .trainer import EvalFn, History, TrainConfig, Trainer

__all__ = ["distill_ckd_head", "CKDSettings"]


class CKDSettings:
    """Loss settings of CKD; defaults follow the paper (T from KD, α=0.3).

    ``soft_weight=0`` or ``alpha=0`` produce the Table 5 ablation variants;
    ``scale_norm='l2'`` produces the L1-vs-L2 design ablation.
    """

    def __init__(
        self,
        temperature: float = 4.0,
        alpha: float = 0.3,
        soft_weight: float = 1.0,
        scale_norm: str = "l1",
    ) -> None:
        if alpha < 0 or soft_weight < 0:
            raise ValueError("loss weights must be non-negative")
        self.temperature = temperature
        self.alpha = alpha
        self.soft_weight = soft_weight
        self.scale_norm = scale_norm

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CKDSettings(T={self.temperature}, alpha={self.alpha}, "
            f"soft={self.soft_weight}, norm={self.scale_norm!r})"
        )


def distill_ckd_head(
    oracle_logits: np.ndarray,
    trunk: Module,
    head: Module,
    images: np.ndarray,
    class_ids: Sequence[int],
    config: TrainConfig = TrainConfig(),
    settings: CKDSettings = CKDSettings(),
    eval_fn: Optional[EvalFn] = None,
    features: Optional[np.ndarray] = None,
) -> History:
    """Train one expert ``head`` on top of a frozen ``trunk`` with CKD.

    Parameters
    ----------
    oracle_logits:
        Pre-computed oracle logits over ``images`` (N, |C|).
    trunk:
        The frozen library component; only used to pre-compute features
        (pass ``features`` to skip even that).
    head:
        The expert component to train; must output ``len(class_ids)`` logits.
    class_ids:
        Global class ids of the primitive/composite task, in output order.
    eval_fn:
        Optional accuracy probe, called on the *head* with cached features
        unavailable — the caller usually wraps a full-model evaluation.
    """
    class_ids = np.asarray(class_ids, dtype=np.int64)
    teacher_sub = oracle_logits[:, class_ids]
    if features is None:
        trunk.requires_grad_(False)
        features = batched_forward(trunk, images)

    def loss_fn(model: Module, batch: np.ndarray, idx: np.ndarray) -> Tensor:
        logits = model(Tensor(batch))
        return ckd_loss(
            Tensor(teacher_sub[idx]),
            logits,
            class_ids=None,  # teacher already restricted
            temperature=settings.temperature,
            alpha=settings.alpha,
            soft_weight=settings.soft_weight,
            scale_norm=settings.scale_norm,
        )

    trainer = Trainer(head, loss_fn, config)
    return trainer.fit(features, eval_fn=eval_fn)
