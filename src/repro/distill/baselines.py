"""Training-based specialization baselines: Scratch and Transfer (§5.2).

Both train with the plain cross-entropy loss on the *task-specific* data
only — which is exactly why they produce overconfident experts (Figure 2):
they never see an out-of-distribution sample.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Module
from ..tensor import Tensor
from .caches import batched_forward
from .losses import cross_entropy
from .trainer import EvalFn, History, TrainConfig, Trainer

__all__ = ["train_scratch", "train_transfer"]


def train_scratch(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    config: TrainConfig = TrainConfig(),
    eval_fn: Optional[EvalFn] = None,
) -> History:
    """Train a randomly initialised model on task data with cross-entropy.

    The paper's **Scratch** baseline: no oracle, no library — the whole
    (tiny) architecture learns from the task's samples alone.
    """

    def loss_fn(m: Module, batch: np.ndarray, idx: np.ndarray) -> Tensor:
        return cross_entropy(m(Tensor(batch)), labels[idx])

    trainer = Trainer(model, loss_fn, config)
    return trainer.fit(images, eval_fn=eval_fn)


def train_transfer(
    trunk: Module,
    head: Module,
    images: np.ndarray,
    labels: np.ndarray,
    config: TrainConfig = TrainConfig(),
    eval_fn: Optional[EvalFn] = None,
    features: Optional[np.ndarray] = None,
) -> History:
    """Transfer learning from the library: frozen trunk, head on task data.

    The paper's **Transfer** baseline — same frozen library component as
    CKD, but learning from hard labels of the task-specific dataset instead
    of the oracle's conditional soft targets.
    """
    if features is None:
        trunk.requires_grad_(False)
        features = batched_forward(trunk, images)

    def loss_fn(m: Module, batch: np.ndarray, idx: np.ndarray) -> Tensor:
        return cross_entropy(m(Tensor(batch)), labels[idx])

    trainer = Trainer(head, loss_fn, config)
    return trainer.fit(features, eval_fn=eval_fn)
