"""Generic training loop with wall-clock learning-curve recording.

Every training-based method in the paper (Scratch, Transfer, KD, CKD, SD,
UHC) runs through :class:`Trainer`; the recorded :class:`History` powers the
learning-curve figure (Fig. 6) and the time-to-best-accuracy figure (Fig. 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..nn import Module
from ..optim import SGD, ConstantLR, CosineAnnealingLR, MultiStepLR
from ..tensor import Tensor, no_grad

__all__ = ["TrainConfig", "HistoryPoint", "History", "Trainer"]

# loss_fn(model, batch_images, batch_indices) -> scalar Tensor.
LossFn = Callable[[Module, np.ndarray, np.ndarray], Tensor]
# eval_fn(model) -> accuracy in [0, 1].
EvalFn = Callable[[Module], float]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters shared by all training methods.

    Paper defaults (§5.1): SGD momentum 0.9, weight decay 5e-4.  Batch size
    and epochs are scaled down with the substrate.
    """

    epochs: int = 15
    batch_size: int = 128
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    schedule: str = "cosine"  # 'cosine' | 'constant' | 'multistep'
    milestones: Sequence[int] = (8, 12)
    gamma: float = 0.1
    seed: int = 0
    eval_every: int = 1  # epochs between accuracy measurements
    shuffle: bool = True


@dataclass
class HistoryPoint:
    """One learning-curve sample."""

    epoch: int
    seconds: float  # cumulative wall-clock since fit() started
    loss: float
    accuracy: Optional[float] = None


@dataclass
class History:
    """Wall-clock learning curve of one training run."""

    points: List[HistoryPoint] = field(default_factory=list)

    def append(self, point: HistoryPoint) -> None:
        self.points.append(point)

    @property
    def total_seconds(self) -> float:
        return self.points[-1].seconds if self.points else 0.0

    @property
    def final_accuracy(self) -> Optional[float]:
        for point in reversed(self.points):
            if point.accuracy is not None:
                return point.accuracy
        return None

    @property
    def best_accuracy(self) -> Optional[float]:
        accs = [p.accuracy for p in self.points if p.accuracy is not None]
        return max(accs) if accs else None

    def time_to_best(self, tolerance: float = 0.0) -> Optional[float]:
        """Seconds until accuracy first reached ``best - tolerance``.

        This is the quantity Figure 7 plots per method and n(Q).
        """
        best = self.best_accuracy
        if best is None:
            return None
        for point in self.points:
            if point.accuracy is not None and point.accuracy >= best - tolerance:
                return point.seconds
        return None

    def curve(self) -> List[tuple]:
        """(seconds, accuracy) pairs for plotting (Fig. 6)."""
        return [(p.seconds, p.accuracy) for p in self.points if p.accuracy is not None]


class Trainer:
    """Runs SGD epochs of an arbitrary loss over an in-memory image array.

    The loss closure receives the raw batch *indices* so distillation losses
    can look up pre-computed teacher logits / cached library features — the
    trick that makes a numpy substrate fast enough for the full benchmark
    matrix (the fixed teacher is evaluated once, not once per epoch).
    """

    def __init__(
        self,
        model: Module,
        loss_fn: LossFn,
        config: TrainConfig = TrainConfig(),
        parameters=None,
    ) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self.config = config
        params = list(parameters) if parameters is not None else list(model.parameters())
        trainable = [p for p in params if p.requires_grad]
        self.optimizer = SGD(
            trainable,
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        if config.schedule == "cosine":
            self.scheduler = CosineAnnealingLR(self.optimizer, t_max=config.epochs)
        elif config.schedule == "multistep":
            self.scheduler = MultiStepLR(self.optimizer, config.milestones, config.gamma)
        elif config.schedule == "constant":
            self.scheduler = ConstantLR(self.optimizer)
        else:
            raise ValueError(f"unknown schedule {self.config.schedule!r}")

    def fit(
        self,
        images: np.ndarray,
        eval_fn: Optional[EvalFn] = None,
        epochs: Optional[int] = None,
    ) -> History:
        """Train for ``epochs`` over ``images`` and return the history.

        The model is left in eval mode so it is immediately servable.
        """
        cfg = self.config
        epochs = epochs if epochs is not None else cfg.epochs
        rng = np.random.default_rng(cfg.seed)
        n = images.shape[0]
        history = History()
        start = time.perf_counter()
        for epoch in range(1, epochs + 1):
            self.model.train()
            order = rng.permutation(n) if cfg.shuffle else np.arange(n)
            losses: List[float] = []
            for begin in range(0, n, cfg.batch_size):
                idx = order[begin : begin + cfg.batch_size]
                batch = images[idx]
                self.optimizer.zero_grad()
                loss = self.loss_fn(self.model, batch, idx)
                loss.backward()
                self.optimizer.step()
                losses.append(loss.item())
            self.scheduler.step()
            accuracy = None
            if eval_fn is not None and (epoch % cfg.eval_every == 0 or epoch == epochs):
                self.model.eval()
                with no_grad():
                    accuracy = float(eval_fn(self.model))
            history.append(
                HistoryPoint(
                    epoch=epoch,
                    seconds=time.perf_counter() - start,
                    loss=float(np.mean(losses)) if losses else float("nan"),
                    accuracy=accuracy,
                )
            )
        self.model.eval()
        return history
