"""Model-unification baselines: SD and UHC (Vongkulbhisal et al., CVPR'19).

Both merge ``n(Q)`` pre-built expert teachers — each covering one primitive
task ``H_i`` — into a single student for the composite task ``Q`` *by
training* (which is precisely the cost PoE's train-free consolidation
avoids, §5.3):

* **SD** ("standard distillation"): the teachers' raw logits are simply
  concatenated into one target vector and standard KD is applied over the
  union softmax.  Because the teachers' logits live in arbitrary scales,
  SD inherits the logit scale problem in full.
* **UHC**: the unified posterior over ``Q`` is reconstructed from the
  teachers and distilled into the student as two coupled terms:

  1. a per-teacher *conditional* KL — each teacher's distribution over its
     own classes vs. a softmax over the student's matching sub-logit block
     (a sub-logit softmax is exactly the conditional renormalisation the
     UHC paper derives); and
  2. a *block-mass* KL that assigns probability mass to each teacher's
     class set via the log-sum-exp of its (temperature-softened) logits —
     the probability-combination step that makes the per-block conditionals
     identifiable as one distribution over the union.

  The conditional terms are scale-invariant, but the block masses are not:
  they are only meaningful when the teachers' logits share a scale.  CKD
  experts inherit the oracle's scale (via ``L_scale``), Scratch experts do
  not — which is why UHC+CKD works so much better than UHC+Scratch in
  Table 3.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn import Module
from ..tensor import Tensor
from .caches import batched_forward
from .losses import kl_div_from_logits
from .trainer import EvalFn, History, TrainConfig, Trainer

__all__ = ["merge_sd", "merge_uhc", "teacher_logit_blocks"]


def teacher_logit_blocks(
    teachers: Sequence[Module], images: np.ndarray
) -> List[np.ndarray]:
    """Each teacher's logits over the merge dataset, in concatenation order."""
    return [batched_forward(t, images) for t in teachers]


def _block_slices(blocks: Sequence[np.ndarray]) -> List[slice]:
    slices = []
    offset = 0
    for block in blocks:
        width = block.shape[1]
        slices.append(slice(offset, offset + width))
        offset += width
    return slices


def merge_sd(
    teachers: Sequence[Module] | Sequence[np.ndarray],
    student: Module,
    images: np.ndarray,
    config: TrainConfig = TrainConfig(),
    temperature: float = 4.0,
    eval_fn: Optional[EvalFn] = None,
) -> History:
    """SD merging: standard KD against the concatenated teacher logits."""
    blocks = [
        t if isinstance(t, np.ndarray) else batched_forward(t, images) for t in teachers
    ]
    target = np.concatenate(blocks, axis=1)

    def loss_fn(model: Module, batch: np.ndarray, idx: np.ndarray) -> Tensor:
        logits = model(Tensor(batch))
        return kl_div_from_logits(Tensor(target[idx]), logits, temperature)

    trainer = Trainer(student, loss_fn, config)
    return trainer.fit(images, eval_fn=eval_fn)


def merge_uhc(
    teachers: Sequence[Module] | Sequence[np.ndarray],
    student: Module,
    images: np.ndarray,
    config: TrainConfig = TrainConfig(),
    temperature: float = 4.0,
    mass_weight: float = 1.0,
    eval_fn: Optional[EvalFn] = None,
) -> History:
    """UHC merging: per-block conditional KLs + a block-mass KL.

    See the module docstring for the decomposition; ``mass_weight`` balances
    the block-mass term against the conditionals.
    """
    from scipy.special import logsumexp

    blocks = [
        t if isinstance(t, np.ndarray) else batched_forward(t, images) for t in teachers
    ]
    slices = _block_slices(blocks)
    # Teacher block-mass logits: lse of each softened block, per sample.
    teacher_mass = np.stack(
        [logsumexp(block / temperature, axis=1) for block in blocks], axis=1
    )

    def loss_fn(model: Module, batch: np.ndarray, idx: np.ndarray) -> Tensor:
        logits = model(Tensor(batch))
        total = None
        for block, sl in zip(blocks, slices):
            term = kl_div_from_logits(Tensor(block[idx]), logits[:, sl], temperature)
            total = term if total is None else total + term
        total = total * (1.0 / len(blocks))
        student_mass = Tensor.stack(
            [(logits[:, sl] * (1.0 / temperature)).logsumexp(axis=1) for sl in slices],
            axis=1,
        )
        mass_term = kl_div_from_logits(
            Tensor(teacher_mass[idx]), student_mass, temperature=1.0
        )
        return total + mass_weight * mass_term

    trainer = Trainer(student, loss_fn, config)
    return trainer.fit(images, eval_fn=eval_fn)
