"""Post-training quantization of state dicts.

The paper's related work (§2) positions KD as *complementary* to
quantization and pruning: "these three schemes are often considered to be
orthogonal to each other and therefore collectively used".  This module
makes that claim executable for PoE: experts (and the library) can be
stored in affine uint8, shrinking the Table 4 volumes by ~4x on top of
the architectural savings, with a measurable (small) accuracy cost.

Scheme: symmetric-range affine per-tensor quantization,
``q = round((w - min) / scale)`` with ``scale = (max - min) / 255``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "QuantizedTensor",
    "quantize_tensor",
    "dequantize_tensor",
    "quantize_state",
    "dequantize_state",
    "quantized_nbytes",
    "quantization_error",
]


@dataclass(frozen=True)
class QuantizedTensor:
    """An affine-uint8 encoded array plus its reconstruction parameters."""

    values: np.ndarray  # uint8
    scale: float
    zero_point: float
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        # payload + scale/zero_point as float32 each
        return self.values.nbytes + 8


def quantize_tensor(array: np.ndarray) -> QuantizedTensor:
    """Encode a float array into affine uint8."""
    array = np.asarray(array, dtype=np.float32)
    lo, hi = float(array.min()), float(array.max())
    span = hi - lo
    if span == 0.0:
        values = np.zeros(array.shape, dtype=np.uint8)
        return QuantizedTensor(values, scale=1.0, zero_point=lo, shape=array.shape)
    scale = span / 255.0
    values = np.clip(np.round((array - lo) / scale), 0, 255).astype(np.uint8)
    return QuantizedTensor(values, scale=scale, zero_point=lo, shape=array.shape)


def dequantize_tensor(qt: QuantizedTensor) -> np.ndarray:
    """Reconstruct the float32 array (lossy)."""
    return (qt.values.astype(np.float32) * qt.scale + qt.zero_point).reshape(qt.shape)


def quantize_state(state: Dict[str, np.ndarray]) -> Dict[str, QuantizedTensor]:
    """Quantize every entry of a module state dict."""
    return {key: quantize_tensor(value) for key, value in state.items()}


def dequantize_state(qstate: Dict[str, QuantizedTensor]) -> Dict[str, np.ndarray]:
    """Reconstruct a float state dict loadable via ``load_state_dict``."""
    return {key: dequantize_tensor(qt) for key, qt in qstate.items()}


def quantized_nbytes(qstate: Dict[str, QuantizedTensor]) -> int:
    """Total bytes of the quantized representation."""
    return sum(qt.nbytes for qt in qstate.values())


def quantization_error(state: Dict[str, np.ndarray]) -> float:
    """Mean absolute reconstruction error over all parameters."""
    total, count = 0.0, 0
    for value in state.values():
        rebuilt = dequantize_tensor(quantize_tensor(value))
        total += float(np.abs(rebuilt - np.asarray(value, dtype=np.float32)).sum())
        count += value.size
    return total / max(1, count)
