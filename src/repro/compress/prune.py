"""Magnitude pruning of module weights.

The second of the paper's "orthogonal" compression axes (§2).  Global
unstructured magnitude pruning zeroes the smallest-|w| fraction of
convolution/linear weights; combined with sparse storage accounting it
quantifies how much further an expert could shrink.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..nn import Module

__all__ = ["magnitude_prune", "sparsity", "sparse_nbytes"]

_PRUNABLE_SUFFIXES = ("weight",)


def _prunable(name: str, array: np.ndarray) -> bool:
    # conv / linear weights only; BN scale vectors stay dense.
    return name.endswith(_PRUNABLE_SUFFIXES) and array.ndim >= 2


def magnitude_prune(module: Module, fraction: float) -> Dict[str, float]:
    """Zero the globally smallest ``fraction`` of prunable weights in place.

    Returns per-parameter achieved sparsity.  ``fraction`` is global: the
    threshold is computed over all prunable weights jointly, so layers with
    small weights are pruned harder (standard global magnitude pruning).
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    named = [
        (name, p) for name, p in module.named_parameters() if _prunable(name, p.data)
    ]
    if not named or fraction == 0.0:
        return {name: sparsity(p.data) for name, p in named}
    magnitudes = np.concatenate([np.abs(p.data).reshape(-1) for _, p in named])
    threshold = np.quantile(magnitudes, fraction)
    report: Dict[str, float] = {}
    for name, param in named:
        mask = np.abs(param.data) > threshold
        param.data = param.data * mask
        report[name] = sparsity(param.data)
    return report


def sparsity(array: np.ndarray) -> float:
    """Fraction of exactly-zero entries."""
    return float((array == 0).mean())


def sparse_nbytes(state: Dict[str, np.ndarray], index_bytes: int = 4) -> int:
    """Bytes of a COO-style sparse encoding (values + flat indices).

    Dense tensors whose sparse form would be larger are counted dense —
    i.e. this is the storage a simple format-picking serializer would use.
    """
    total = 0
    for value in state.values():
        nnz = int((value != 0).sum())
        sparse = nnz * (value.dtype.itemsize + index_bytes)
        total += min(sparse, value.nbytes)
    return total
