"""Orthogonal compression: quantization and pruning (paper §2).

The paper notes KD/quantization/pruning are complementary; these tools
apply the other two axes to PoE's experts and library, extending the
Table 4 storage accounting (see ``benchmarks/bench_ext_compression.py``).
"""

from .prune import magnitude_prune, sparse_nbytes, sparsity
from .quantize import (
    QuantizedTensor,
    dequantize_state,
    dequantize_tensor,
    quantization_error,
    quantize_state,
    quantize_tensor,
    quantized_nbytes,
)

__all__ = [
    "QuantizedTensor",
    "quantize_tensor",
    "dequantize_tensor",
    "quantize_state",
    "dequantize_state",
    "quantized_nbytes",
    "quantization_error",
    "magnitude_prune",
    "sparsity",
    "sparse_nbytes",
]
