"""Command-line interface for the PoE reproduction.

Subcommands::

    python -m repro.cli build   [--tracks ...] [--fast]   # train artifacts
    python -m repro.cli tables  [--tracks ...]            # print all tables
    python -m repro.cli query   --track T --tasks a,b     # serve one query
    python -m repro.cli serve-bench [--mode closed|open]  # gateway load test
    python -m repro.cli cluster-bench --shards 4          # sharded-pool load test
    python -m repro.cli cluster-bench --networked         # shards in worker processes
    python -m repro.cli cluster-bench --networked --replicas 2 --chaos  # failover drill
    python -m repro.cli shard-serve --port 7070           # host one shard over TCP
    python -m repro.cli predict-bench --heads 8           # fused-inference bench
    python -m repro.cli autotune-bench                    # self-tuning vs static budgets
    python -m repro.cli scrape  [--networked]             # Prometheus text scrape
    python -m repro.cli top     [--networked]             # live telemetry dashboard
    python -m repro.cli trace-dump --file trace.jsonl     # render recorded span trees
    python -m repro.cli report  [--out EXPERIMENTS.md]    # paper-vs-measured
    python -m repro.cli info                              # registry overview

The bench subcommands accept ``--trace FILE`` (JSONL span log, readable
by ``trace-dump``) and ``--slow-ms T`` (slow-query log at ``FILE.slow``);
``predict-bench --profile-ops`` prints the per-op profiling arena.

The CLI is a thin veneer over :mod:`repro.eval` so scripted and interactive
use share one code path.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .eval import (
    ArtifactStore,
    format_count,
    get_track,
    render_table,
    service_table,
    specialization_table,
)
from .models import EXPERIMENT_ARCHS, PAPER_ARCHS

__all__ = ["main"]

DEFAULT_TRACKS = "synth-cifar,synth-tiny"


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tracks", default=DEFAULT_TRACKS, help="comma-separated tracks")
    parser.add_argument("--fast", action="store_true", help="reduced budgets")
    parser.add_argument("--root", default=None, help="artifact store root")


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record request spans to this JSONL file (read with trace-dump)",
    )
    parser.add_argument(
        "--slow-ms", type=float, default=None, metavar="T",
        help="with --trace: log full span trees of requests slower than T ms "
        "to FILE.slow",
    )


def _enable_tracing(args: argparse.Namespace):
    """Light the process tracer per ``--trace``/``--slow-ms``; return the writer."""
    if not getattr(args, "trace", None):
        return None
    from .obs import TRACER, JsonlTraceWriter, SlowQueryLog

    writer = JsonlTraceWriter(args.trace)
    slow_log = None
    if args.slow_ms is not None:
        slow_log = SlowQueryLog(args.trace + ".slow", threshold_s=args.slow_ms / 1000.0)
    TRACER.enable(writer=writer, slow_log=slow_log, service="cli")
    return writer


def _finish_tracing(args: argparse.Namespace, writer) -> None:
    if writer is None:
        return
    from .obs import TRACER

    writer.close()
    print(f"\ntrace: {len(TRACER.collector)} span(s) recorded -> {args.trace}")
    if args.slow_ms is not None:
        slow = TRACER._slow_log
        count = slow.count if slow is not None else 0
        print(
            f"trace: {count} slow quer{'y' if count == 1 else 'ies'} "
            f"(> {args.slow_ms:g} ms) -> {args.trace}.slow"
        )


def cmd_build(args: argparse.Namespace) -> int:
    from .eval.runner import build_all

    build_all(args.tracks.split(","), fast=args.fast or None, root=args.root)
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.root)
    for name in args.tracks.split(","):
        track = get_track(name, fast=args.fast or None)
        rows = [
            [
                r["method"],
                r["type"],
                r["arch"],
                f"{100 * r['accuracy_mean']:.2f}±{100 * r['accuracy_std']:.1f}",
                format_count(r["params"]),
            ]
            for r in specialization_table(track, store)
        ]
        print(render_table(
            ["Method", "Type", "Arch", "Acc.", "Params"],
            rows,
            title=f"\nTable 2 — {track.name}",
        ))
        srows = service_table(track, store, methods=("ckd", "poe"))
        cells = [
            [r["method"], str(r["n_q"]), f"{100 * r['accuracy_mean']:.2f}", format_count(r["params"])]
            for r in srows
        ]
        print(render_table(
            ["Method", "n(Q)", "Acc.", "Params"],
            cells,
            title=f"\nTable 3 (ckd/poe excerpt) — {track.name}",
        ))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from .core import ModelQueryEngine

    store = ArtifactStore(args.root)
    track = get_track(args.track, fast=args.fast or None)
    pool = store.pool(track)
    engine = ModelQueryEngine(pool)
    tasks = args.tasks.split(",")
    start = time.perf_counter()
    model = engine.query(tasks)
    ms = 1000 * (time.perf_counter() - start)
    print(f"query {'+'.join(tasks)} served in {ms:.2f} ms")
    print(f"  architecture : {model.network.arch_name()}")
    print(f"  parameters   : {model.num_params():,}")
    print(f"  classes      : {', '.join(model.class_names)}")
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Load-test the serving gateway and print latency/cache statistics."""
    from .serving import (
        GatewayConfig,
        ServingGateway,
        ZipfianWorkload,
        build_demo_pool,
        run_closed_loop,
        run_open_loop,
    )

    from .core.server import TRANSPORTS

    transports = tuple(args.transports.split(","))
    unknown = [t for t in transports if t not in TRANSPORTS]
    if unknown:
        print(f"error: unknown transport(s) {unknown}; choose from {', '.join(TRANSPORTS)}")
        return 2

    writer = _enable_tracing(args)
    if args.track == "micro":
        print("building self-contained micro pool (seconds)...")
        pool, _ = build_demo_pool(num_tasks=args.micro_tasks, seed=args.seed)
    else:
        store = ArtifactStore(args.root)
        track = get_track(args.track, fast=args.fast or None)
        pool = store.pool(track)

    config = GatewayConfig(
        max_workers=args.workers,
        model_cache_bytes=0 if args.no_cache else args.model_cache_mb << 20,
        payload_cache_bytes=0 if args.no_cache else args.payload_cache_mb << 20,
    )
    workload = ZipfianWorkload(
        pool.expert_names(),
        max_query_size=min(args.max_tasks, len(pool.expert_names())),
        skew=args.skew,
        universe_size=args.universe,
        transports=transports,
        seed=args.seed,
    )
    with ServingGateway(pool, config) as gateway:
        if args.mode == "closed":
            report = run_closed_loop(
                gateway,
                workload,
                clients=args.clients,
                requests_per_client=args.requests,
                seed=args.seed,
            )
        else:
            report = run_open_loop(
                gateway,
                workload,
                rate_qps=args.rate,
                duration_seconds=args.duration,
                seed=args.seed,
            )
        print()
        print(report.render())
        print()
        print(gateway.render_stats())
        print()
        print(_codec_comparison(gateway, workload))
    _finish_tracing(args, writer)
    return 0


def _codec_comparison(gateway, workload) -> str:
    """Bytes + serialize latency of every payload codec, one hot query.

    Measures :func:`repro.core.serialize_task_model` directly (no caches)
    so the npz container vs. the flat ``raw+zlib`` codec compare cleanly.
    """
    from .core.server import TRANSPORTS, serialize_task_model

    tasks, _ = workload.sample(1, seed=5)[0]
    model = gateway.get_model(tasks)
    rows = []
    for transport in TRANSPORTS:
        start = time.perf_counter()
        payload = serialize_task_model(
            model.network, model.task, gateway.pool.config, transport=transport
        )
        elapsed = time.perf_counter() - start
        rows.append([transport, f"{len(payload):,}", f"{1e3 * elapsed:.2f}"])
    return render_table(
        ["Transport", "Bytes", "Serialize ms"],
        rows,
        title=f"Payload codecs for query {'+'.join(tasks)}",
    )


def cmd_cluster_bench(args: argparse.Namespace) -> int:
    """Load-test a sharded cluster and print per-shard/fan-out statistics.

    With ``--networked``, shards run as forked worker processes behind the
    ``repro.net`` socket protocol (optionally dispatching ``submit``
    through the asyncio transport); the command then also verifies a clean
    worker shutdown — no leaked processes, exit code 0 — and can append a
    JSON summary for CI artifacts via ``--out``.
    """
    from .cluster import ClusterConfig, ClusterGateway
    from .core.server import TRANSPORTS
    from .serving import ZipfianWorkload, build_demo_pool, run_closed_loop, run_open_loop

    transports = tuple(args.transports.split(","))
    unknown = [t for t in transports if t not in TRANSPORTS]
    if unknown:
        print(f"error: unknown transport(s) {unknown}; choose from {', '.join(TRANSPORTS)}")
        return 2
    if args.async_transport and not args.networked:
        print("error: --async-transport requires --networked")
        return 2
    if args.replicas > 1 and not args.networked:
        print("error: --replicas > 1 requires --networked (in-process shards have no replicas)")
        return 2
    if args.chaos and not args.networked:
        print("error: --chaos requires --networked")
        return 2
    if args.chaos and args.replicas < 2:
        print("error: --chaos needs --replicas >= 2 so siblings absorb the kill")
        return 2

    journal_writer = None
    if args.journal:
        from .obs import JOURNAL, RotatingJsonlWriter

        journal_writer = RotatingJsonlWriter(args.journal)
        JOURNAL.reset()
        JOURNAL.enable(writer=journal_writer, service="cli")

    writer = _enable_tracing(args)
    print("building self-contained micro pool (seconds)...")
    pool, _ = build_demo_pool(num_tasks=args.micro_tasks, seed=args.seed)
    config = ClusterConfig(
        num_shards=args.shards,
        replication=args.replication,
        workers_per_shard=args.workers_per_shard,
        replicas_per_shard=args.replicas,
        shard_model_cache_bytes=0 if args.no_cache else args.model_cache_mb << 20,
        shard_payload_cache_bytes=0 if args.no_cache else args.payload_cache_mb << 20,
        composite_model_cache_bytes=0 if args.no_cache else args.model_cache_mb << 20,
        composite_payload_cache_bytes=0 if args.no_cache else args.payload_cache_mb << 20,
    )
    workload = ZipfianWorkload(
        pool.expert_names(),
        max_query_size=min(args.max_tasks, len(pool.expert_names())),
        skew=args.skew,
        universe_size=args.universe,
        transports=transports,
        seed=args.seed,
    )
    networked = None
    if args.networked:
        from .net import NetworkedCluster

        networked = NetworkedCluster(
            pool, config, async_transport=args.async_transport
        )
        cluster = networked.gateway
    else:
        cluster = ClusterGateway(pool, config)
    chaos = None
    chaos_thread = None
    chaos_outcome: dict = {}
    reshard_thread = None
    reshard_outcome: dict = {}
    try:
        if getattr(args, "reshard_to", None):
            import threading

            def _reshard_mid_bench() -> None:
                time.sleep(args.reshard_delay)
                try:
                    report = cluster.reshard(args.reshard_to)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    reshard_outcome["error"] = f"{type(exc).__name__}: {exc}"
                else:
                    reshard_outcome["epoch"] = report.epoch
                    reshard_outcome["moved"] = len(report.moved)

            reshard_thread = threading.Thread(
                target=_reshard_mid_bench, name="bench-reshard", daemon=True
            )
            reshard_thread.start()
        if args.chaos:
            import random as random_mod
            import threading

            from .net import ChaosMonkey

            chaos = ChaosMonkey(networked.fleet, random_mod.Random(args.seed))

            def _unleash() -> None:
                time.sleep(args.chaos_delay)
                handle = chaos.kill_one()
                if handle is not None:
                    chaos_outcome["killed"] = [
                        handle.shard_id,
                        handle.replica_id,
                    ]
                    # generous deadline: on a small saturated runner the
                    # respawned fork competes with the bench for CPU
                    chaos_outcome["respawned"] = chaos.wait_respawned(
                        handle, timeout=60.0
                    )

            chaos_thread = threading.Thread(
                target=_unleash, name="chaos-monkey", daemon=True
            )
            chaos_thread.start()
        if args.mode == "closed":
            report = run_closed_loop(
                cluster,
                workload,
                clients=args.clients,
                requests_per_client=args.requests,
                seed=args.seed,
                via_submit=args.networked,
            )
        else:
            report = run_open_loop(
                cluster,
                workload,
                rate_qps=args.rate,
                duration_seconds=args.duration,
                seed=args.seed,
            )
        if chaos_thread is not None:
            # cover chaos_delay + the kill + the full respawn deadline
            chaos_thread.join(timeout=args.chaos_delay + 90.0)
        if reshard_thread is not None:
            reshard_thread.join(timeout=args.reshard_delay + 120.0)
        print()
        print(report.render())
        print()
        print(cluster.render_stats())
        fanout = cluster.metrics.fanout_histogram()
        snapshot = cluster.unified_snapshot()
    finally:
        if networked is not None:
            networked.close()
        else:
            cluster.close()

    if networked is not None:
        leaked = networked.fleet.leaked_processes()
        exit_codes = [h.process.exitcode for h in networked.fleet.workers]
        if leaked or any(code != 0 for code in exit_codes):
            print(
                f"error: unclean worker shutdown (leaked={len(leaked)}, "
                f"exit codes={exit_codes})"
            )
            return 1
        print(f"\nworkers exited cleanly (exit codes {exit_codes}, no leaks)")

    if args.journal:
        from .obs import JOURNAL

        print(f"journal: {len(JOURNAL)} event(s) -> {args.journal}")
        JOURNAL.disable()

    if getattr(args, "reshard_to", None):
        if "error" in reshard_outcome:
            print(f"error: mid-bench reshard failed: {reshard_outcome['error']}")
            return 1
        if "epoch" not in reshard_outcome:
            print("error: mid-bench reshard never completed")
            return 1
        print(
            f"reshard: {args.shards} -> {args.reshard_to} shards mid-bench "
            f"(epoch {reshard_outcome['epoch']}, "
            f"{reshard_outcome['moved']} expert(s) moved, "
            f"{report.errors} client-visible errors)"
        )

    if chaos is not None:
        if not chaos.kills:
            print("error: chaos monkey found no live worker to kill")
            return 1
        if not chaos_outcome.get("respawned"):
            print(f"error: killed worker {chaos_outcome.get('killed')} never respawned")
            return 1
        shard_id, replica_id = chaos_outcome["killed"]
        print(
            f"chaos: killed shard {shard_id} replica {replica_id} mid-bench; "
            f"supervisor respawned it ({report.errors} client-visible errors)"
        )

    if args.out:
        from .serving import append_benchmark_record, run_metadata

        append_benchmark_record(
            args.out,
            {
                "bench": "cluster",
                "networked": bool(args.networked),
                "async_transport": bool(args.async_transport),
                "shards": args.shards,
                "mode": args.mode,
                "requests": report.requests,
                "errors": report.errors,
                "throughput_qps": report.throughput_qps,
                "latency": report.latency,
                "payload_hit_rate": report.payload_hit_rate,
                "fanout": {str(k): v for k, v in fanout.items()},
                "snapshot": snapshot,
                "meta": run_metadata(
                    replicas_per_shard=args.replicas,
                    hedge_enabled=bool(args.networked) and args.replicas > 1,
                    chaos=bool(args.chaos),
                    chaos_kills=[list(k) for k in chaos.kills] if chaos else [],
                    reshard_to=getattr(args, "reshard_to", None),
                    # 1-core runners serialize the worker processes, so
                    # throughput comparisons against multi-core entries are
                    # noise — flag the entry instead of suppressing it
                    **(
                        {"skip_reason": "single-core runner: parallel shard "
                         "throughput not meaningful"}
                        if (os.cpu_count() or 1) < 2
                        else {}
                    ),
                ),
            },
            label=args.label,
        )
        print(f"appended run to {args.out}")
    _finish_tracing(args, writer)
    return 0 if report.errors == 0 else 1


def cmd_reshard(args: argparse.Namespace) -> int:
    """Grow/shrink a live cluster online and prove answers never change.

    Builds the self-contained micro pool, deploys it (in-process by
    default, forked worker processes with ``--networked``), snapshots
    every task's served payload, then reshards to ``--to`` shards while
    closed-loop driver threads keep querying.  Exits nonzero if any
    request failed during the move or any post-reshard payload differs
    from its pre-reshard bytes.
    """
    import threading

    from .cluster import ClusterConfig, ClusterGateway
    from .serving import build_demo_pool

    if args.journal:
        from .obs import JOURNAL, RotatingJsonlWriter

        JOURNAL.reset()
        JOURNAL.enable(writer=RotatingJsonlWriter(args.journal), service="cli")

    print("building self-contained micro pool (seconds)...", file=sys.stderr)
    pool, _data = build_demo_pool(num_tasks=args.micro_tasks, seed=args.seed)
    replicas = args.replicas if args.networked else 1
    config = ClusterConfig(
        num_shards=args.shards, workers_per_shard=2, replicas_per_shard=replicas
    )
    networked = None
    if args.networked:
        from .net import NetworkedCluster

        networked = NetworkedCluster(pool, config)
        cluster = networked.gateway
    else:
        cluster = ClusterGateway(pool, config)

    names = sorted(pool.expert_names())
    errors: List[str] = []
    stop = threading.Event()

    def drive(worker_id: int) -> None:
        i = worker_id
        while not stop.is_set():
            try:
                cluster.serve((names[i % len(names)],))
            except Exception as exc:  # noqa: BLE001 - tallied below
                if not stop.is_set():
                    errors.append(f"{type(exc).__name__}: {exc}")
            i += 1

    try:
        baseline = {name: cluster.serve((name,)).payload for name in names}
        threads = [
            threading.Thread(target=drive, args=(i,), daemon=True)
            for i in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        start = time.perf_counter()
        report = cluster.reshard(args.to)
        elapsed = time.perf_counter() - start
        time.sleep(0.2)  # let in-flight retries settle before stopping
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        mismatched = [
            name
            for name in names
            if cluster.serve((name,)).payload != baseline[name]
        ]
    finally:
        stop.set()
        if networked is not None:
            networked.close()
        else:
            cluster.close()

    print(
        f"reshard {args.shards} -> {args.to}: epoch {report.epoch}, "
        f"{len(report.moved)} expert(s) moved, {report.installs} install(s), "
        f"{report.drops} drop(s), {report.migrated_bytes} payload byte(s) "
        f"in {elapsed:.2f}s"
    )
    if errors:
        print(f"error: {len(errors)} request(s) failed mid-reshard: {errors[:3]}")
        return 1
    if mismatched:
        print(f"error: payload mismatch after reshard for {mismatched}")
        return 1
    print(f"all {len(names)} task payloads bit-identical; zero client-visible errors")
    if args.journal:
        from .obs import JOURNAL

        print(f"journal: {len(JOURNAL)} event(s) -> {args.journal}")
        JOURNAL.disable()
    return 0


def cmd_shard_serve(args: argparse.Namespace) -> int:
    """Host one PoolShard over TCP (the repro.net wire protocol).

    Builds the deterministic micro pool (same ``--micro-tasks``/``--seed``
    on every host gives every shard the same weights) and serves the
    requested task subset until the process is interrupted or a client
    sends DRAIN.
    """
    from .cluster import PoolShard
    from .net import ShardServer
    from .serving import GatewayConfig, build_demo_pool

    print("building self-contained micro pool (seconds)...")
    pool, _ = build_demo_pool(num_tasks=args.micro_tasks, seed=args.seed)
    names = sorted(pool.expert_names())
    tasks = args.tasks.split(",") if args.tasks else names
    unknown = [t for t in tasks if t not in names]
    if unknown:
        print(f"error: unknown task(s) {unknown}; available: {names}")
        return 2
    shard = PoolShard(
        args.shard_id, pool, tasks, GatewayConfig(max_workers=args.workers)
    )
    server = ShardServer(
        shard, host=args.host, port=args.port, request_workers=args.workers
    )
    host, port = server.start()
    # flush=True: the address line must reach pipes immediately, so
    # supervisors (and the tests) can connect without waiting on a buffer
    print(f"shard {args.shard_id} serving {len(tasks)} task(s) on {host}:{port}", flush=True)
    print("tasks: " + ", ".join(tasks), flush=True)
    print("waiting for requests (Ctrl-C or a DRAIN frame stops the server)", flush=True)
    try:
        server.wait_drained()
    except KeyboardInterrupt:
        print("\ninterrupt: draining")
        server.drain()
    server.close()
    # print the unified metrics snapshot before releasing the shard, so a
    # supervisor capturing stdout gets the final counters alongside DRAIN
    import json

    snap = shard.gateway.metrics.snapshot()
    print("final metrics snapshot:")
    print(json.dumps(snap, sort_keys=True))
    shard.close()
    print("drained cleanly")
    return 0


def cmd_predict_bench(args: argparse.Namespace) -> int:
    """Benchmark the fused prediction fast path; append to the trajectory."""
    from .serving import (
        append_benchmark_record,
        build_demo_pool,
        run_predict_benchmark,
    )

    if args.heads > args.micro_tasks:
        print(
            f"error: --heads {args.heads} exceeds --micro-tasks {args.micro_tasks}"
        )
        return 2
    writer = _enable_tracing(args)
    if args.profile_ops:
        from .obs import ARENA

        ARENA.enable()
    print("building self-contained micro pool (seconds)...")
    pool, data = build_demo_pool(num_tasks=args.micro_tasks, seed=args.seed)
    record = run_predict_benchmark(
        pool,
        data.test.images,
        n_heads=args.heads,
        batch_size=args.batch,
        reps=args.reps,
    )
    from .serving import predict_report_rows

    rows, title = predict_report_rows(record)
    print()
    print(render_table(["Path", "ms/call", "speedup"], rows, title=title))
    if args.profile_ops:
        from .obs import ARENA

        print()
        print(ARENA.render())
    _finish_tracing(args, writer)
    doc = append_benchmark_record(args.out, record, label=args.label)
    print(f"\nappended run {len(doc['runs'])} to {args.out}")
    if not record["allclose"]:
        print(
            "error: fused execution diverged from the reference path "
            f"(heads max abs diff {record['max_abs_diff']:.2e}, "
            f"trunk max abs diff {record['trunk']['max_abs_diff']:.2e})"
        )
        return 1
    # perf gate: the compiled trunk must beat the autograd trunk >=2.5x
    # (noisy shared runners relax to a >1x sanity floor, like the pytest
    # benchmarks)
    trunk_speedup = record["trunk"]["speedup"]
    floor = 1.0 if os.environ.get("REPRO_BENCH_RELAX") else 2.5
    if trunk_speedup < floor:
        print(
            f"error: compiled-trunk speedup {trunk_speedup:.2f}x below the "
            f"{floor:g}x gate"
        )
        return 1
    return 0


def cmd_autotune_bench(args: argparse.Namespace) -> int:
    """Self-tuning controller vs static budgets on a shifting workload."""
    from .control import run_self_tuning_benchmark, verify_report
    from .serving import append_benchmark_record, build_demo_pool, run_metadata

    print("building self-contained micro pool (seconds)...")
    pool, _data = build_demo_pool(num_tasks=args.micro_tasks, seed=args.seed)
    report = run_self_tuning_benchmark(
        pool,
        requests=args.requests,
        hot_size=args.hot_size,
        budget_payloads=args.budget_payloads,
        tick_every=args.tick_every,
        seed=args.seed,
    )
    print()
    print(report.render())
    relaxed = bool(os.environ.get("REPRO_BENCH_RELAX"))
    if args.out:
        doc = append_benchmark_record(
            args.out,
            {
                "bench": "self_tuning",
                **report.to_dict(),
                "meta": run_metadata(),
            },
            label=args.label,
        )
        print(f"\nappended run {len(doc['runs'])} to {args.out}")
    try:
        verify_report(report, relaxed=relaxed)
    except AssertionError as failure:
        print(f"error: {failure}")
        return 1
    print(
        f"controller beats static budgets: hit rate "
        f"{report.tuned.payload_hit_rate:.1%} vs "
        f"{report.static.payload_hit_rate:.1%}, qps {report.qps_ratio:.2f}x"
    )
    return 0


def cmd_trace_dump(args: argparse.Namespace) -> int:
    """Render the span trees recorded in a JSONL trace log."""
    from .obs import build_trace_tree, format_trace, load_jsonl_spans, select_traces

    spans = load_jsonl_spans(args.file)
    if not spans:
        print(f"no spans in {args.file}")
        return 1
    trees = build_trace_tree(spans)
    selected = select_traces(trees, trace_id=args.trace_id, limit=args.limit)
    for _trace_id, ordered in selected:
        print(format_trace(ordered))
        print()
    print(f"{len(selected)} trace(s) shown ({len(spans)} spans in {args.file})")
    return 0


def _cross_shard_query(cluster, names: List[str]) -> List[str]:
    """A task pair spanning two shards (first pair when single-sharded)."""
    first_on_shard = {}
    for name in names:
        first_on_shard.setdefault(cluster.router.shard_for(name), name)
    picks = sorted(first_on_shard.values())
    if len(picks) >= 2:
        return [picks[0], picks[1]]
    return names[: min(2, len(names))]


def cmd_scrape(args: argparse.Namespace) -> int:
    """Drive demo traffic through a cluster and emit a Prometheus scrape.

    Exercises every documented stage — ``submit`` serves for queue/total,
    a cross-shard serve for fetch/assemble/serialize, predictions for the
    ``predict_*`` family — then renders the cluster's **unified snapshot**
    (front-end metrics merged with every shard's, remote or in-process)
    as Prometheus text exposition.  CI parses the output back and asserts
    each documented stage is present.

    Status lines go to stderr so stdout stays a clean exposition when
    ``--out`` is omitted.
    """
    from .cluster import ClusterConfig, ClusterGateway
    from .obs import render_prometheus
    from .serving import build_demo_pool

    writer = _enable_tracing(args)
    print("building self-contained micro pool (seconds)...", file=sys.stderr)
    pool, data = build_demo_pool(num_tasks=args.micro_tasks, seed=args.seed)
    names = sorted(pool.expert_names())
    config = ClusterConfig(num_shards=args.shards, workers_per_shard=2)
    networked = None
    if args.networked:
        from .net import NetworkedCluster

        networked = NetworkedCluster(pool, config)
        cluster = networked.gateway
    else:
        cluster = ClusterGateway(pool, config)
    images = data.test.images[:8]
    try:
        cross = _cross_shard_query(cluster, names)
        for i in range(args.requests):
            single = [names[i % len(names)]]
            cluster.submit(single).result()
            cluster.serve(cross)
            cluster.predict(images, single)
            cluster.predict(images, cross)
        snapshot = cluster.unified_snapshot()
    finally:
        if networked is not None:
            networked.close()
        else:
            cluster.close()
    text = render_prometheus(snapshot)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote scrape to {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    _finish_tracing(args, writer)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live telemetry dashboard against a demo cluster (``repro top``).

    Builds the self-contained micro pool, deploys it as an in-process or
    networked cluster, drives background closed-loop traffic, and renders
    per-shard health, rolling rates, sparkline histories, and the recent
    event tail once per poll interval.  ``--frames N`` renders N frames
    then exits (headless CI uses ``--frames 1 --plain``); the default
    runs until Ctrl-C.  Exits nonzero if a finite run collected no
    telemetry — a frame of nothing is a failure, not a dashboard.
    """
    import threading

    from .cluster import ClusterConfig, ClusterGateway
    from .obs import (
        CLEAR_SCREEN,
        JOURNAL,
        HealthPolicy,
        HealthScorer,
        RotatingJsonlWriter,
        TelemetryPoller,
        render_dashboard,
    )
    from .serving import build_demo_pool

    journal_writer = RotatingJsonlWriter(args.journal) if args.journal else None
    JOURNAL.reset()
    JOURNAL.enable(writer=journal_writer, service="cli")

    print("building self-contained micro pool (seconds)...", file=sys.stderr)
    pool, data = build_demo_pool(num_tasks=args.micro_tasks, seed=args.seed)
    names = sorted(pool.expert_names())
    replicas = args.replicas if args.networked else 1
    config = ClusterConfig(
        num_shards=args.shards, workers_per_shard=2, replicas_per_shard=replicas
    )
    networked = None
    if args.networked:
        from .net import NetworkedCluster

        networked = NetworkedCluster(pool, config)
        cluster = networked.gateway
    else:
        cluster = ClusterGateway(pool, config)
    images = data.test.images[:4]
    stop = threading.Event()

    def drive(worker_id: int) -> None:
        cross = _cross_shard_query(cluster, names)
        i = worker_id
        while not stop.is_set():
            single = [names[i % len(names)]]
            try:
                cluster.serve(single)
                cluster.predict(images, single)
                if i % 5 == 0:
                    cluster.serve(cross)
            except Exception:
                if stop.is_set():
                    break  # shutdown races are not traffic errors
            i += 1

    poller = TelemetryPoller.for_gateway(cluster, interval_s=args.interval)
    scorer = HealthScorer(
        poller.store,
        JOURNAL,
        HealthPolicy(latency_slo_s=args.slo_ms / 1000.0),
    )
    threads = [
        threading.Thread(target=drive, args=(i,), daemon=True)
        for i in range(args.clients)
    ]
    rendered = 0
    try:
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + args.duration if args.duration else None
        while True:
            time.sleep(args.interval)
            poller.poll_once()
            frame = render_dashboard(
                poller.store,
                scorer,
                JOURNAL,
                sources=sorted(poller.sources),
                title="repro top" + (" (networked)" if args.networked else ""),
            )
            if args.plain:
                print(frame)
            else:
                print(CLEAR_SCREEN + frame, end="", flush=True)
            rendered += 1
            if args.frames and rendered >= args.frames:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        if networked is not None:
            networked.close()
        else:
            cluster.close()
    series = len(poller.store)
    events = len(JOURNAL)
    summary = (
        f"top: rendered {rendered} frame(s), {len(poller.sources)} source(s), "
        f"{series} series, {events} journal event(s)"
    )
    if args.journal:
        summary += f" -> {args.journal}"
    print(summary, file=sys.stderr)
    JOURNAL.disable()
    return 0 if series else 1


def cmd_report(args: argparse.Namespace) -> int:
    from .eval.report import generate_report

    generate_report(args.root, args.out)
    print(f"wrote {args.out}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    rows = [[name, cfg.name, str(cfg.num_classes), f"{cfg.image_size}px"]
            for name, cfg in PAPER_ARCHS.items()]
    print(render_table(["Registry", "Arch", "Classes", "Input"], rows,
                       title="Paper-scale architectures (Table 1 fidelity)"))
    rows = [[name, cfg.name, str(cfg.num_classes), f"{cfg.image_size}px"]
            for name, cfg in EXPERIMENT_ARCHS.items()]
    print(render_table(["Registry", "Arch", "Classes", "Input"], rows,
                       title="\nExperiment-scale architectures"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="train/cache all experiment artifacts")
    _add_common(p_build)
    p_build.set_defaults(fn=cmd_build)

    p_tables = sub.add_parser("tables", help="print headline tables from the cache")
    _add_common(p_tables)
    p_tables.set_defaults(fn=cmd_tables)

    p_query = sub.add_parser("query", help="serve one composite-task query")
    p_query.add_argument("--track", default="synth-cifar")
    p_query.add_argument("--tasks", required=True, help="comma-separated primitive tasks")
    p_query.add_argument("--fast", action="store_true")
    p_query.add_argument("--root", default=None)
    p_query.set_defaults(fn=cmd_query)

    p_bench = sub.add_parser(
        "serve-bench", help="load-test the serving gateway (Zipfian workload)"
    )
    p_bench.add_argument(
        "--track",
        default="micro",
        help="'micro' builds a tiny pool inline; otherwise an artifact-store track",
    )
    p_bench.add_argument("--fast", action="store_true")
    p_bench.add_argument("--root", default=None)
    p_bench.add_argument("--mode", choices=("closed", "open"), default="closed")
    p_bench.add_argument("--clients", type=int, default=8, help="closed-loop client threads")
    p_bench.add_argument("--requests", type=int, default=100, help="requests per client")
    p_bench.add_argument("--rate", type=float, default=200.0, help="open-loop offered qps")
    p_bench.add_argument("--duration", type=float, default=2.0, help="open-loop seconds")
    p_bench.add_argument("--workers", type=int, default=4, help="gateway worker threads")
    p_bench.add_argument("--skew", type=float, default=1.1, help="Zipf skew exponent")
    p_bench.add_argument("--max-tasks", type=int, default=3, help="max primitives per query")
    p_bench.add_argument("--universe", type=int, default=32, help="distinct queries in workload")
    p_bench.add_argument("--transports", default="float32", help="comma-separated transports")
    p_bench.add_argument("--model-cache-mb", type=int, default=128)
    p_bench.add_argument("--payload-cache-mb", type=int, default=128)
    p_bench.add_argument("--no-cache", action="store_true", help="disable both cache tiers")
    p_bench.add_argument("--micro-tasks", type=int, default=5, help="tasks in the micro pool")
    p_bench.add_argument("--seed", type=int, default=0)
    _add_trace_flags(p_bench)
    p_bench.set_defaults(fn=cmd_serve_bench)

    p_cluster = sub.add_parser(
        "cluster-bench", help="load-test a sharded pool cluster (Zipfian workload)"
    )
    p_cluster.add_argument("--shards", type=int, default=4, help="number of pool shards")
    p_cluster.add_argument("--replication", type=int, default=1, help="copies per expert")
    p_cluster.add_argument(
        "--replicas", type=int, default=1,
        help="worker replicas per shard slot (needs --networked for >1; "
        "enables failover + hedged reads)",
    )
    p_cluster.add_argument("--workers-per-shard", type=int, default=2)
    p_cluster.add_argument("--mode", choices=("closed", "open"), default="closed")
    p_cluster.add_argument("--clients", type=int, default=8, help="closed-loop client threads")
    p_cluster.add_argument("--requests", type=int, default=100, help="requests per client")
    p_cluster.add_argument("--rate", type=float, default=200.0, help="open-loop offered qps")
    p_cluster.add_argument("--duration", type=float, default=2.0, help="open-loop seconds")
    p_cluster.add_argument("--skew", type=float, default=1.1, help="Zipf skew exponent")
    p_cluster.add_argument("--max-tasks", type=int, default=3, help="max primitives per query")
    p_cluster.add_argument("--universe", type=int, default=32, help="distinct queries in workload")
    p_cluster.add_argument("--transports", default="float32", help="comma-separated transports")
    p_cluster.add_argument("--model-cache-mb", type=int, default=64)
    p_cluster.add_argument("--payload-cache-mb", type=int, default=64)
    p_cluster.add_argument("--no-cache", action="store_true", help="disable every cache tier")
    p_cluster.add_argument("--micro-tasks", type=int, default=8, help="tasks in the micro pool")
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument(
        "--networked",
        action="store_true",
        help="run each shard in a forked worker process behind repro.net sockets",
    )
    p_cluster.add_argument(
        "--async-transport",
        action="store_true",
        help="dispatch submit() through the asyncio event loop (needs --networked)",
    )
    p_cluster.add_argument(
        "--chaos",
        action="store_true",
        help="SIGKILL a random worker mid-bench and require a clean respawn "
        "(needs --networked and --replicas >= 2)",
    )
    p_cluster.add_argument(
        "--chaos-delay", type=float, default=0.5,
        help="seconds into the bench before the chaos kill fires",
    )
    p_cluster.add_argument(
        "--reshard-to", type=int, default=None, metavar="N",
        help="grow/shrink the cluster to N shards ONLINE mid-bench "
        "(two-phase epoch-fenced migration; requests must keep succeeding)",
    )
    p_cluster.add_argument(
        "--reshard-delay", type=float, default=1.0,
        help="seconds into the bench before the online reshard fires",
    )
    p_cluster.add_argument(
        "--journal", default=None, metavar="FILE",
        help="persist journal events (worker_death/worker_respawn/...) to "
        "this JSONL file",
    )
    p_cluster.add_argument(
        "--out", default=None, help="append a JSON summary record to this path"
    )
    p_cluster.add_argument("--label", default="cli", help="label stored with --out records")
    _add_trace_flags(p_cluster)
    p_cluster.set_defaults(fn=cmd_cluster_bench)

    p_reshard = sub.add_parser(
        "reshard",
        help="grow/shrink a live demo cluster online (two-phase epoch-fenced "
        "migration) and verify bit-identical answers",
    )
    p_reshard.add_argument("--shards", type=int, default=2, help="initial shard count")
    p_reshard.add_argument("--to", type=int, required=True, help="target shard count")
    p_reshard.add_argument(
        "--networked",
        action="store_true",
        help="run shards as forked worker processes (spawn/drain slots online)",
    )
    p_reshard.add_argument(
        "--replicas", type=int, default=1,
        help="worker replicas per shard slot (networked only)",
    )
    p_reshard.add_argument("--clients", type=int, default=4, help="driver threads during the move")
    p_reshard.add_argument("--micro-tasks", type=int, default=8, help="tasks in the micro pool")
    p_reshard.add_argument("--seed", type=int, default=0)
    p_reshard.add_argument(
        "--journal", default=None, metavar="FILE",
        help="persist journal events (reshard/mutation_applied/...) to this JSONL file",
    )
    p_reshard.set_defaults(fn=cmd_reshard)

    p_shard = sub.add_parser(
        "shard-serve", help="host one pool shard over TCP (repro.net protocol)"
    )
    p_shard.add_argument("--host", default="127.0.0.1")
    p_shard.add_argument("--port", type=int, default=0, help="0 picks an ephemeral port")
    p_shard.add_argument("--shard-id", type=int, default=0)
    p_shard.add_argument(
        "--tasks", default=None, help="comma-separated task subset (default: all)"
    )
    p_shard.add_argument("--workers", type=int, default=2, help="request worker threads")
    p_shard.add_argument("--micro-tasks", type=int, default=8, help="tasks in the micro pool")
    p_shard.add_argument("--seed", type=int, default=0)
    p_shard.set_defaults(fn=cmd_shard_serve)

    p_predict = sub.add_parser(
        "predict-bench", help="benchmark the fused prediction fast path"
    )
    p_predict.add_argument("--heads", type=int, default=8, help="n(Q): experts per query")
    p_predict.add_argument("--batch", type=int, default=64, help="images per prediction")
    p_predict.add_argument("--reps", type=int, default=30, help="timing repetitions (median)")
    p_predict.add_argument("--micro-tasks", type=int, default=8, help="tasks in the micro pool")
    p_predict.add_argument("--seed", type=int, default=13)
    p_predict.add_argument(
        "--out", default="BENCH_predict.json", help="JSON trajectory to append to"
    )
    p_predict.add_argument("--label", default="cli", help="label stored with this run")
    p_predict.add_argument(
        "--profile-ops",
        action="store_true",
        help="enable the per-op profiling arena and print its table",
    )
    _add_trace_flags(p_predict)
    p_predict.set_defaults(fn=cmd_predict_bench)

    p_autotune = sub.add_parser(
        "autotune-bench",
        help="self-tuning cache controller vs static budgets (shifting workload)",
    )
    p_autotune.add_argument("--micro-tasks", type=int, default=8, help="tasks in the micro pool")
    p_autotune.add_argument("--requests", type=int, default=600, help="trace length")
    p_autotune.add_argument("--hot-size", type=int, default=8, help="hot composites per phase")
    p_autotune.add_argument(
        "--budget-payloads", type=int, default=6,
        help="payload cache budget, in measured payloads (deliberately < hot size)",
    )
    p_autotune.add_argument("--tick-every", type=int, default=25, help="requests per controller tick")
    p_autotune.add_argument("--seed", type=int, default=0)
    p_autotune.add_argument(
        "--out", default="BENCH_self_tuning.json", help="JSON trajectory to append to"
    )
    p_autotune.add_argument("--label", default="cli", help="label stored with this run")
    p_autotune.set_defaults(fn=cmd_autotune_bench)

    p_trace = sub.add_parser(
        "trace-dump", help="render span trees from a JSONL trace log"
    )
    p_trace.add_argument("--file", required=True, help="JSONL trace log (from --trace)")
    p_trace.add_argument("--trace-id", default=None, help="show only this trace")
    p_trace.add_argument("--limit", type=int, default=0, help="max traces to show (0 = all)")
    p_trace.set_defaults(fn=cmd_trace_dump)

    p_scrape = sub.add_parser(
        "scrape", help="drive demo traffic and emit a Prometheus metrics scrape"
    )
    p_scrape.add_argument("--shards", type=int, default=2, help="number of pool shards")
    p_scrape.add_argument("--micro-tasks", type=int, default=6, help="tasks in the micro pool")
    p_scrape.add_argument("--requests", type=int, default=3, help="traffic rounds to drive")
    p_scrape.add_argument("--seed", type=int, default=0)
    p_scrape.add_argument(
        "--networked",
        action="store_true",
        help="run each shard in a forked worker process behind repro.net sockets",
    )
    p_scrape.add_argument("--out", default=None, help="write exposition here (default stdout)")
    _add_trace_flags(p_scrape)
    p_scrape.set_defaults(fn=cmd_scrape)

    p_top = sub.add_parser(
        "top", help="live telemetry dashboard over a demo cluster"
    )
    p_top.add_argument("--shards", type=int, default=2, help="number of pool shards")
    p_top.add_argument("--micro-tasks", type=int, default=6, help="tasks in the micro pool")
    p_top.add_argument("--seed", type=int, default=0)
    p_top.add_argument(
        "--networked",
        action="store_true",
        help="run each shard in a forked worker process behind repro.net sockets",
    )
    p_top.add_argument(
        "--replicas", type=int, default=1,
        help="worker replicas per shard slot (ignored without --networked)",
    )
    p_top.add_argument("--clients", type=int, default=2, help="background traffic threads")
    p_top.add_argument("--interval", type=float, default=1.0, help="poll/render interval (s)")
    p_top.add_argument(
        "--frames", type=int, default=0,
        help="render N frames then exit (0 = run until Ctrl-C / --duration)",
    )
    p_top.add_argument(
        "--duration", type=float, default=0.0, help="stop after this many seconds"
    )
    p_top.add_argument(
        "--plain",
        action="store_true",
        help="print frames sequentially without ANSI clear-screen (headless/CI)",
    )
    p_top.add_argument(
        "--slo-ms", type=float, default=250.0,
        help="latency objective (p95 of 'total') health scores burn against",
    )
    p_top.add_argument(
        "--journal", default=None, metavar="FILE",
        help="persist journal events to this JSONL file (size-rotated)",
    )
    p_top.set_defaults(fn=cmd_top)

    p_report = sub.add_parser("report", help="write EXPERIMENTS.md")
    p_report.add_argument("--root", default=None)
    p_report.add_argument("--out", default="EXPERIMENTS.md")
    p_report.set_defaults(fn=cmd_report)

    p_info = sub.add_parser("info", help="architecture registry overview")
    p_info.set_defaults(fn=cmd_info)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
