"""The length-prefixed binary frame protocol networked shards speak.

This is the wire layer under :mod:`repro.net`: every message between a
:class:`~repro.net.client.RemoteShardClient` (or the asyncio transport)
and a :class:`~repro.net.server.ShardServer` is one or more **frames**,
each a fixed 20-byte header followed by a payload:

.. code-block:: text

    offset  size  field
    0       4     magic          b"POEN"
    4       1     protocol version (currently 1)
    5       1     message type   (MsgType)
    6       1     flags          (bit 0 = FLAG_END: last frame of message)
    7       1     codec tag      (payload encoding, see below)
    8       8     request id     (u64 little-endian)
    16      4     payload length (u32 little-endian)
    20      N     payload bytes

A logical *message* is the concatenated payloads of all frames sharing a
request id up to (and including) the frame with ``FLAG_END`` set.  Small
messages are one frame; large ones (head payloads, composite models) are
**chunked** at ``DEFAULT_CHUNK_BYTES`` so a connection multiplexing many
requests can interleave a small response between the chunks of a big one
instead of head-of-line-blocking behind it.

Codec tags name the payload encoding: ``CODEC_JSON`` for control
payloads, ``CODEC_BINARY`` for mixed binary bodies (a u32-length JSON
meta header + raw tensor bytes, see :func:`pack_body`), and one tag per
entry of :data:`repro.core.server.TRANSPORTS` for model/head payloads —
the existing ``raw+zlib``/``zstd`` payload bytes travel unmodified, the
tag just says which decoder applies.

Hard limits are enforced at decode time: a frame whose declared length
exceeds ``MAX_PAYLOAD_BYTES``, whose magic or version byte is wrong, or
whose codec tag is unknown raises :class:`FrameError` (version mismatch
raises the :class:`ProtocolMismatch` subclass so handshakes can answer
it specifically).  ``docs/wire-protocol.md`` is the prose spec of this
module; keep the two in sync.

**Optional features** are negotiated in the HELLO exchange, not the
version byte: the client's HELLO may carry ``"features": [...]`` (a list
of :data:`SUPPORTED_FEATURES` names) and the server's HELLO_OK echoes
the intersection it accepted.  A peer that omits the key negotiates the
empty set — old clients and servers interoperate untouched because
unknown JSON keys are ignored on both sides.  The one feature today is
``"trace"`` (:data:`FEATURE_TRACE`): when negotiated, a SERVE request's
JSON (or a PREDICT request's meta header) may carry a ``"trace"`` object
``{"trace_id", "parent_id"}``, and the matching response's JSON/meta
carries ``"trace_spans"`` — the server-side span dicts for that request,
which the caller stitches into its own trace (see
``docs/observability.md``).  FETCH_HEADS responses are raw payload
codecs with no meta header, so they never carry spans.

**Mutation frames** (``INSTALL_HEADS``/``DROP_HEADS``/``REFRESH_LIBRARY``)
are the write path of the protocol: they carry expert-head and
library-state payloads *into* a running worker.  Every mutation body
names a **topology epoch** (monotonically increasing; a worker rejects
frames older than its current epoch with a typed ``StaleEpochError``)
and a **mutation id** (workers journal applied ids, so a retried or
replayed frame is acknowledged without re-applying — exactly-once
application over an at-least-once transport).  They are deliberately
absent from :data:`IDEMPOTENT_MSG_TYPES` — they must never be hedged —
but :data:`MUTATION_MSG_TYPES` marks them safely *retryable*, because
the id dedup makes a duplicate delivery a no-op.  Servers only accept
them from peers that negotiated the ``"mutations"`` feature, which is
granted iff the HELLO carried the server's shared auth token (see
``docs/resharding.md``).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "FEATURE_TRACE",
    "FEATURE_MUTATIONS",
    "SUPPORTED_FEATURES",
    "negotiate_features",
    "HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "DEFAULT_CHUNK_BYTES",
    "FLAG_END",
    "MsgType",
    "IDEMPOTENT_MSG_TYPES",
    "MUTATION_MSG_TYPES",
    "CODEC_JSON",
    "CODEC_BINARY",
    "CODEC_NAMES",
    "FrameError",
    "ProtocolMismatch",
    "Frame",
    "FrameDecoder",
    "MessageAssembler",
    "codec_for_transport",
    "transport_for_codec",
    "encode_frame",
    "encode_message",
    "json_payload",
    "parse_json",
    "pack_body",
    "unpack_body",
    "payload_digest",
]

MAGIC = b"POEN"
PROTOCOL_VERSION = 1

#: Optional-capability names negotiable in HELLO (see module docstring).
FEATURE_TRACE = "trace"
#: Mutation frames accepted; servers grant this only to authenticated
#: peers, so its presence in HELLO_OK doubles as the write-path probe.
FEATURE_MUTATIONS = "mutations"
SUPPORTED_FEATURES = (FEATURE_TRACE, FEATURE_MUTATIONS)


def negotiate_features(requested) -> Tuple[str, ...]:
    """The subset of ``requested`` feature names this side supports.

    Order follows :data:`SUPPORTED_FEATURES`; unknown names are silently
    dropped (that is the forward-compatibility contract), and a missing /
    malformed request negotiates the empty set.
    """
    if not isinstance(requested, (list, tuple)):
        return ()
    wanted = {str(name) for name in requested}
    return tuple(name for name in SUPPORTED_FEATURES if name in wanted)
#: magic(4) + version(1) + msg type(1) + flags(1) + codec(1) + id(8) + len(4)
HEADER_BYTES = 20
_HEADER = struct.Struct("<4sBBBBQI")

#: Hard cap on one frame's payload; a header declaring more is corrupt.
MAX_PAYLOAD_BYTES = 64 << 20
#: Messages larger than this are split into multiple frames.
DEFAULT_CHUNK_BYTES = 256 << 10

FLAG_END = 0x01


class MsgType:
    """Message-type byte values (one namespace, not an enum, for struct speed)."""

    HELLO = 1
    HELLO_OK = 2
    ERROR = 3
    PING = 4
    PONG = 5
    FETCH_HEADS = 6
    HEADS = 7
    SERVE = 8
    SERVED = 9
    PREDICT = 10
    PREDICTED = 11
    STATS = 12
    STATS_OK = 13
    DRAIN = 14
    DRAINED = 15
    INSTALL_HEADS = 16
    HEADS_INSTALLED = 17
    DROP_HEADS = 18
    HEADS_DROPPED = 19
    REFRESH_LIBRARY = 20
    LIBRARY_REFRESHED = 21


#: Request types safe to retry / fail over / hedge: re-executing them on
#: another replica cannot change shard state, so a client may re-issue
#: them after a connection error or alongside a slow first attempt.
#: Everything else — DRAIN, and the placement mutations below — must
#: never be hedged; DRAIN fails fast, mutations retry via id dedup.
IDEMPOTENT_MSG_TYPES = frozenset(
    {MsgType.PING, MsgType.FETCH_HEADS, MsgType.SERVE, MsgType.PREDICT, MsgType.STATS}
)

#: The write path: frames that mutate worker state.  Never hedged (a
#: hedge races two applications of one mutation), but safely retryable —
#: every mutation carries an id the worker journals, so a duplicate
#: delivery is acknowledged as a replay instead of re-applied.
MUTATION_MSG_TYPES = frozenset(
    {MsgType.INSTALL_HEADS, MsgType.DROP_HEADS, MsgType.REFRESH_LIBRARY}
)


#: Codec tags 1..4 mirror ``repro.core.server.TRANSPORTS`` order.
CODEC_JSON = 0
_TRANSPORT_CODECS: Dict[str, int] = {
    "float32": 1,
    "uint8": 2,
    "raw+zlib": 3,
    "zstd": 4,
}
CODEC_BINARY = 5
CODEC_NAMES: Dict[int, str] = {
    CODEC_JSON: "json",
    CODEC_BINARY: "binary",
    **{tag: name for name, tag in _TRANSPORT_CODECS.items()},
}


class FrameError(ValueError):
    """The byte stream is not a well-formed frame sequence."""


class ProtocolMismatch(FrameError):
    """The peer speaks a different protocol version."""


def codec_for_transport(transport: str) -> int:
    """The codec tag advertising a :data:`~repro.core.server.TRANSPORTS` payload."""
    try:
        return _TRANSPORT_CODECS[transport]
    except KeyError:
        raise FrameError(f"no codec tag for transport {transport!r}") from None


def transport_for_codec(codec: int) -> str:
    """Inverse of :func:`codec_for_transport`; raises on unknown tags."""
    for transport, tag in _TRANSPORT_CODECS.items():
        if tag == codec:
            return transport
    raise FrameError(f"unknown payload codec tag {codec}")


@dataclass(frozen=True)
class Frame:
    """One decoded frame (header fields + payload slice)."""

    msg_type: int
    request_id: int
    payload: bytes
    codec: int = CODEC_JSON
    flags: int = FLAG_END

    @property
    def last(self) -> bool:
        """Whether this frame ends its logical message."""
        return bool(self.flags & FLAG_END)


def encode_frame(
    msg_type: int,
    request_id: int,
    payload: bytes = b"",
    codec: int = CODEC_JSON,
    flags: int = FLAG_END,
) -> bytes:
    """Pack one frame; validates the payload size and codec tag."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte cap — chunk it (encode_message)"
        )
    if codec not in CODEC_NAMES:
        raise FrameError(f"unknown payload codec tag {codec}")
    return (
        _HEADER.pack(
            MAGIC, PROTOCOL_VERSION, msg_type, flags, codec, request_id, len(payload)
        )
        + payload
    )


def encode_message(
    msg_type: int,
    request_id: int,
    payload: bytes,
    codec: int = CODEC_JSON,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Iterator[bytes]:
    """Yield the frame(s) of one message, chunking large payloads.

    Every frame but the last has ``FLAG_END`` clear; an empty payload
    still yields exactly one (terminal) frame.  Writers should emit the
    chunks frame-by-frame under their connection write lock so concurrent
    responses interleave at chunk granularity.
    """
    if chunk_bytes < 1:
        raise ValueError("chunk_bytes must be >= 1")
    if not payload:
        yield encode_frame(msg_type, request_id, b"", codec, FLAG_END)
        return
    for start in range(0, len(payload), chunk_bytes):
        chunk = payload[start : start + chunk_bytes]
        last = start + chunk_bytes >= len(payload)
        yield encode_frame(
            msg_type, request_id, chunk, codec, FLAG_END if last else 0
        )


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte slices, pop whole frames.

    Handles the stream side of the protocol — partial headers and split
    payloads simply stay buffered until the rest arrives, so callers can
    feed whatever ``recv`` returned.  Corrupt input (bad magic, wrong
    version, oversized declared length) raises :class:`FrameError`
    immediately: a framing error is unrecoverable on a byte stream, so
    the connection must be dropped.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        """Append ``data`` and return every frame completed by it."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._try_pop()
            if frame is None:
                return frames
            frames.append(frame)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward a not-yet-complete frame."""
        return len(self._buffer)

    def _try_pop(self) -> Optional[Frame]:
        if len(self._buffer) < HEADER_BYTES:
            return None
        magic, version, msg_type, flags, codec, request_id, length = _HEADER.unpack_from(
            self._buffer
        )
        if magic != MAGIC:
            raise FrameError(f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r})")
        if version != PROTOCOL_VERSION:
            raise ProtocolMismatch(
                f"peer speaks protocol {version}, this side speaks {PROTOCOL_VERSION}"
            )
        if length > MAX_PAYLOAD_BYTES:
            raise FrameError(
                f"frame declares a {length}-byte payload, over the "
                f"{MAX_PAYLOAD_BYTES}-byte cap"
            )
        if codec not in CODEC_NAMES:
            raise FrameError(f"unknown payload codec tag {codec}")
        end = HEADER_BYTES + length
        if len(self._buffer) < end:
            return None
        payload = bytes(self._buffer[HEADER_BYTES:end])
        del self._buffer[:end]
        return Frame(msg_type, request_id, payload, codec, flags)


class MessageAssembler:
    """Reassemble chunked messages with aggregate limits enforced.

    The per-frame payload cap alone bounds nothing in aggregate — a peer
    could stream non-terminal frames forever, or open partial messages
    under unbounded request ids.  This tracks both: a *message* whose
    reassembled payload would exceed ``max_message_bytes`` and a
    connection holding more than ``max_partial_messages`` incomplete
    messages each raise :class:`FrameError` (the connection must then be
    dropped, like any other framing violation).
    """

    def __init__(
        self,
        max_message_bytes: int = MAX_PAYLOAD_BYTES,
        max_partial_messages: int = 256,
    ) -> None:
        self.max_message_bytes = max_message_bytes
        self.max_partial_messages = max_partial_messages
        # request id -> (msg type, codec, chunks, total bytes so far)
        self._partial: Dict[int, Tuple[int, int, List[bytes], int]] = {}

    def add(self, frame: Frame) -> Optional[Tuple[int, int, int, bytes]]:
        """Fold one frame in; return ``(msg_type, codec, request_id,
        payload)`` when it completes a message, else ``None``."""
        entry = self._partial.get(frame.request_id)
        if entry is None:
            if len(self._partial) >= self.max_partial_messages:
                raise FrameError(
                    f"more than {self.max_partial_messages} partial messages "
                    "in flight on one connection"
                )
            entry = (frame.msg_type, frame.codec, [], 0)
        msg_type, codec, chunks, total = entry
        total += len(frame.payload)
        if total > self.max_message_bytes:
            raise FrameError(
                f"reassembled message exceeds the {self.max_message_bytes}-byte "
                "cap (runaway chunk stream)"
            )
        chunks.append(frame.payload)
        if not frame.last:
            self._partial[frame.request_id] = (msg_type, codec, chunks, total)
            return None
        self._partial.pop(frame.request_id, None)
        # the terminal frame's header wins: all frames of a message carry
        # the same type/codec, and the final one is the authoritative copy
        return frame.msg_type, frame.codec, frame.request_id, b"".join(chunks)

    @property
    def partial_messages(self) -> int:
        return len(self._partial)


# ----------------------------------------------------------------------
# Payload helpers
# ----------------------------------------------------------------------
def json_payload(obj: object) -> bytes:
    """Encode a control payload (compact separators, stable key order)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def parse_json(payload: bytes) -> Dict:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"malformed JSON payload: {error}") from None


def pack_body(meta: Dict, blob: bytes = b"") -> bytes:
    """A ``CODEC_BINARY`` body: u32 meta length + JSON meta + raw blob.

    Used where a message carries both telemetry and tensor bytes (serve
    and predict responses, predict requests).  Chunking splits the packed
    bytes arbitrarily; :func:`unpack_body` parses the reassembled whole.
    """
    encoded = json_payload(meta)
    return struct.pack("<I", len(encoded)) + encoded + blob


def unpack_body(payload: bytes) -> Tuple[Dict, bytes]:
    """Split a ``CODEC_BINARY`` body back into ``(meta, blob)``."""
    if len(payload) < 4:
        raise FrameError("binary body shorter than its meta-length prefix")
    (meta_len,) = struct.unpack_from("<I", payload)
    if 4 + meta_len > len(payload):
        raise FrameError("binary body truncated inside its meta header")
    meta = parse_json(payload[4 : 4 + meta_len])
    return meta, payload[4 + meta_len :]


def payload_digest(blob: bytes) -> str:
    """Stable content digest of a mutation payload (hex blake2b-128).

    Mutation frames carry this in their meta and the worker recomputes it
    over the received blob before applying — a truncated or corrupted
    transfer is rejected before it can install partial heads.
    """
    import hashlib

    return hashlib.blake2b(blob, digest_size=16).hexdigest()
