"""The client half of ``repro.net``: a shard you talk to over a socket.

:class:`RemoteShardClient` implements the same surface the
:class:`~repro.cluster.gateway.ClusterGateway` consumes from an
in-process :class:`~repro.cluster.shard.PoolShard` — ``task_names`` /
``holds``, ``fetch_heads``, ``serve``, ``predict`` / ``submit_predict``
and ``cache_stats`` — by translating each call into one frame-protocol
request against a :class:`~repro.net.server.ShardServer`.  Because head
payloads travel in the same float-exact codecs the in-process boundary
already uses, a cluster running on remote shards is **bit-identical** to
one running on local shards; only the process hosting the work changes.

Thread safety: a client is safe to call from many gateway worker threads
at once.  Each request takes a pooled TCP connection exclusively (a small
idle pool, dialing extra connections under burst), so no multiplexing
state is shared between threads — the asyncio transport in
:mod:`repro.net.aio` is the multiplexed path.

Remote errors arrive as typed ``ERROR`` frames and are re-raised locally
with the originating shard id prefixed to the message.  ``KeyError`` and
``ValueError`` keep their type across the wire because the cluster's
retry-on-rebalance contract dispatches on them; everything else becomes
:class:`RemoteShardError`.

Placement mutations travel as wire-native batch frames —
:meth:`RemoteShardClient.install_heads`, :meth:`~RemoteShardClient.drop_heads`
and :meth:`~RemoteShardClient.push_library` — each **broadcast to every
replica** of the shard (each worker owns its own pool copy), fenced by a
topology epoch and deduplicated worker-side by mutation id, so the
per-replica retry loop here may deliver duplicates freely.  The
in-process-shaped single-head methods (``install_expert`` / ``drop_expert``
/ ``refresh_library``) still raise :class:`RemoteOperationUnsupported`:
they take live objects, which do not cross a socket — the gateway
serializes from its parent pool and uses the batch frames instead.
Mutations require the server's shared auth token (sent in ``HELLO``);
without it the peer is read-only and ``"mutations"`` is absent from the
negotiated features.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
    wait as futures_wait,
)
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs.trace import TRACER
from ..serving.cache import CacheStats
from ..serving.canonical import TaskQuery, canonical_tasks
from ..serving.gateway import GatewayResponse, PredictionResponse
from .frame import (
    CODEC_BINARY,
    CODEC_JSON,
    FEATURE_MUTATIONS,
    FEATURE_TRACE,
    FrameDecoder,
    FrameError,
    IDEMPOTENT_MSG_TYPES,
    MessageAssembler,
    MsgType,
    PROTOCOL_VERSION,
    SUPPORTED_FEATURES,
    codec_for_transport,
    encode_message,
    json_payload,
    pack_body,
    parse_json,
    payload_digest,
    unpack_body,
)
from .retry import (
    BreakerOpenError,
    CircuitBreaker,
    HedgePolicy,
    LatencyTracker,
    RETRYABLE_EXCEPTIONS,
    RetryPolicy,
    ShardDrainingError,
    StaleEpochError,
)

__all__ = [
    "RemoteShardClient",
    "RemoteShardError",
    "RemoteOperationUnsupported",
    "raise_remote_error",
    "gateway_response_from_body",
    "prediction_response_from_body",
]

#: Exception types that keep their identity across the wire (the cluster's
#: replan-and-retry contract dispatches on KeyError specifically, and the
#: failover path on ShardDrainingError).
_WIRE_EXCEPTIONS = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
    "FrameError": FrameError,
    "ShardDrainingError": ShardDrainingError,
    # mutation-path rejections: fencing (never retry) and auth (read-only peer)
    "StaleEpochError": StaleEpochError,
    "PermissionError": PermissionError,
}


class RemoteShardError(RuntimeError):
    """A shard worker failed in a way with no local exception equivalent."""

    def __init__(self, message: str, shard_id: Optional[int] = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class RemoteOperationUnsupported(RuntimeError):
    """The remote worker cannot perform the requested mutation.

    Raised by the in-process-shaped signatures (live objects do not
    cross a socket — use the serialized batch frames instead) and by the
    gateway when a worker did not negotiate the ``"mutations"`` feature
    (old server, or this client holds no auth token).
    """


def raise_remote_error(info: Dict) -> None:
    """Re-raise a decoded ``ERROR`` payload with its shard id attached."""
    shard_id = info.get("shard_id")
    prefix = f"[shard {shard_id}] " if shard_id is not None else ""
    message = f"{prefix}{info.get('message', 'remote failure')}"
    exc_type = _WIRE_EXCEPTIONS.get(info.get("type", ""))
    if exc_type is not None:
        raise exc_type(message)
    raise RemoteShardError(
        f"{message} (remote type {info.get('type', '?')})", shard_id=shard_id
    )


def gateway_response_from_body(meta: Dict, blob: bytes) -> GatewayResponse:
    """Rebuild a :class:`GatewayResponse` from a ``SERVED`` body."""
    return GatewayResponse(
        payload=blob,
        tasks=tuple(meta["tasks"]),
        transport=meta["transport"],
        payload_bytes=len(blob),
        queue_seconds=float(meta["queue_seconds"]),
        service_seconds=float(meta["service_seconds"]),
        model_cache_hit=bool(meta["model_cache_hit"]),
        payload_cache_hit=bool(meta["payload_cache_hit"]),
        coalesced=bool(meta["coalesced"]),
    )


def prediction_response_from_body(meta: Dict, blob: bytes) -> PredictionResponse:
    """Rebuild a :class:`PredictionResponse` from a ``PREDICTED`` body."""
    # .copy(): frombuffer over received bytes is read-only, but in-process
    # shards hand out writable arrays — the backends must not diverge
    class_ids = (
        np.frombuffer(blob, dtype=meta["dtype"]).reshape(meta["shape"]).copy()
    )
    return PredictionResponse(
        class_ids=class_ids,
        tasks=tuple(meta["tasks"]),
        batch_size=int(meta["batch_size"]),
        queue_seconds=float(meta["queue_seconds"]),
        service_seconds=float(meta["service_seconds"]),
        model_cache_hit=bool(meta["model_cache_hit"]),
        trunk_cache_hit=bool(meta["trunk_cache_hit"]),
        coalesced=bool(meta["coalesced"]),
        result_cache_hit=bool(meta["result_cache_hit"]),
    )


class _SyncChannel:
    """One handshaken TCP connection, used by one request at a time."""

    _ids = itertools.count(1)

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float,
        auth_token: Optional[str] = None,
    ) -> None:
        self.sock = socket.create_connection(address, timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder()
        self.dirty = False
        # stamped by the pooling client: channels dialed before a replica
        # was replaced (respawn) must not be re-pooled afterwards
        self.generation = 0
        hello: Dict[str, object] = {
            "protocol": PROTOCOL_VERSION,
            "features": list(SUPPORTED_FEATURES),
        }
        if auth_token is not None:
            hello["auth"] = auth_token
        try:
            msg_type, _codec, payload = self.request(
                MsgType.HELLO, json_payload(hello)
            )
            if msg_type != MsgType.HELLO_OK:
                raise FrameError(f"handshake got unexpected message type {msg_type}")
            self.info = parse_json(payload)
        except BaseException:
            # a failed handshake (ERROR reply, version mismatch, draining
            # server) has no owner to close the socket — do it here
            self.close()
            raise

    def request(
        self,
        msg_type: int,
        payload: bytes,
        codec: int = CODEC_JSON,
        timeout: Optional[float] = None,
    ) -> Tuple[int, int, bytes]:
        """Send one message, block for its response message.

        Returns ``(msg_type, codec, payload)``; an ``ERROR`` response is
        raised through :func:`raise_remote_error`.  The channel carries one
        request at a time, so every incoming frame belongs to it.
        ``self.dirty`` stays True until a complete response message was
        consumed off the stream — a channel that raised while dirty has
        undefined buffered state and must be closed, never re-pooled.
        ``timeout`` (when given) bounds this one request — the per-op
        deadline from the client's :class:`~repro.net.retry.RetryPolicy`.
        """
        if timeout is not None:
            self.sock.settimeout(timeout)
        self.dirty = True
        request_id = next(self._ids)
        for frame_bytes in encode_message(msg_type, request_id, payload, codec):
            self.sock.sendall(frame_bytes)
        # one request in flight per channel, so one partial message max;
        # the assembler still caps the reassembled response size
        assembler = MessageAssembler(max_partial_messages=1)
        while True:
            for frame in self._decoder.feed(self._recv()):
                if frame.request_id != request_id:
                    raise FrameError(
                        f"response for request {frame.request_id} on a channel "
                        f"awaiting request {request_id}"
                    )
                message = assembler.add(frame)
                if message is None:
                    continue
                response_type, response_codec, _rid, body = message
                self.dirty = False  # full message consumed: stream is clean
                if response_type == MsgType.ERROR:
                    raise_remote_error(parse_json(body))
                return response_type, response_codec, body

    def _recv(self) -> bytes:
        data = self.sock.recv(1 << 16)
        if not data:
            raise ConnectionError("shard connection closed mid-response")
        return data

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


class _ReplicaEndpoint:
    """One replica's address, idle-channel pool, and circuit breaker."""

    def __init__(
        self, replica_id: int, address: Tuple[str, int], breaker: CircuitBreaker
    ) -> None:
        self.replica_id = replica_id
        self.address = (address[0], int(address[1]))
        self.breaker = breaker
        self.idle: List[_SyncChannel] = []
        # bumped on replace(): channels from older generations are corpses
        self.generation = 0


def _swallow_future(future: "Future") -> None:
    """Done-callback for hedge losers: consume the exception, if any."""
    if not future.cancelled():
        future.exception()


class RemoteShardClient:
    """A :class:`~repro.cluster.shard.PoolShard` look-alike over TCP.

    ``address`` is either one ``(host, port)`` pair (a lone worker — the
    pre-replica construction, unchanged) or a list of pairs, one per
    replica of the same shard.  With multiple replicas the client fails
    idempotent requests over on connection errors/timeouts, keeps a
    :class:`~repro.net.retry.CircuitBreaker` per replica, and — when the
    :class:`~repro.net.retry.HedgePolicy` allows — hedges slow reads
    against a sibling, taking the first answer.
    """

    def __init__(
        self,
        address: Union[Tuple[str, int], Sequence[Tuple[str, int]]],
        connections: int = 2,
        timeout: float = 120.0,
        metrics=None,
        retry: Optional[RetryPolicy] = None,
        hedge: Optional[HedgePolicy] = None,
        auth_token: Optional[str] = None,
    ) -> None:
        if address and isinstance(address[0], str):
            addresses = [address]  # single (host, port) pair
        else:
            addresses = list(address)
        if not addresses:
            raise ValueError("RemoteShardClient needs at least one address")
        self.timeout = timeout
        self.metrics = metrics
        self.auth_token = auth_token
        # replica_id -> last epoch acknowledged by that replica's worker
        # (fed by mutation acks; the snapshot's epoch-skew gauge reads it)
        self._replica_epochs: Dict[int, int] = {}
        self.retry = retry or RetryPolicy()
        self.hedge = hedge or HedgePolicy()
        self._latency = LatencyTracker()
        self._replicas = [
            _ReplicaEndpoint(i, addr, CircuitBreaker())
            for i, addr in enumerate(addresses)
        ]
        self._max_idle = max(1, connections)
        self._pool_lock = threading.Lock()
        self._info: Optional[Dict] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._hedge_executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The primary replica's address (pre-replica callers use this)."""
        return self._replicas[0].address

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        """Every replica's current address, primary first."""
        return [endpoint.address for endpoint in self._replicas]

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def breaker_states(self) -> Dict[int, str]:
        """Circuit-breaker state per replica (for the unified snapshot)."""
        return {ep.replica_id: ep.breaker.state for ep in self._replicas}

    def replace_replica(self, replica_id: int, address: Tuple[str, int]) -> None:
        """Repoint one replica slot after a respawn: new address, clean pool.

        Idle channels of the old generation are corpses (their worker is
        gone) and are closed; in-flight requests on them fail and follow
        the normal failover path.  The breaker resets so the fresh worker
        gets traffic immediately.
        """
        endpoint = self._replicas[replica_id]
        with self._pool_lock:
            endpoint.address = (address[0], int(address[1]))
            endpoint.generation += 1
            idle, endpoint.idle = endpoint.idle, []
            if replica_id == 0:
                self._info = None  # primary identity (pid) changed
            # the fresh fork starts at epoch 0 with current state; its
            # real epoch is unknown until the next mutation ack
            self._replica_epochs.pop(replica_id, None)
        for channel in idle:
            channel.close()
        endpoint.breaker.reset()

    # ------------------------------------------------------------------
    # Connection pool (per replica endpoint)
    # ------------------------------------------------------------------
    def _channel_alive(self, channel: _SyncChannel) -> bool:
        """Cheap liveness probe before reusing a pooled channel.

        A healthy idle channel has nothing to read — a non-blocking peek
        raises ``BlockingIOError``.  EOF (``b""``), unsolicited bytes, or
        any other socket error mean the worker died or the stream is
        corrupt: evict instead of poisoning the next request.  Mirrors
        the corpse-eviction in ``aio.AsyncShardPool``.
        """
        sock = channel.sock
        try:
            sock.setblocking(False)
            try:
                sock.recv(1, socket.MSG_PEEK)
            except (BlockingIOError, InterruptedError):
                return True
            return False
        except OSError:
            return False
        finally:
            try:
                sock.settimeout(self.timeout)
            except OSError:
                pass

    def _acquire(self, endpoint: _ReplicaEndpoint) -> _SyncChannel:
        while True:
            with self._pool_lock:
                if self._closed:
                    raise RuntimeError("remote shard client is closed")
                channel = endpoint.idle.pop() if endpoint.idle else None
            if channel is None:
                break
            if channel.generation == endpoint.generation and self._channel_alive(
                channel
            ):
                return channel
            channel.close()  # corpse (dead worker or stale generation)
        with self._pool_lock:
            address, generation = endpoint.address, endpoint.generation
        channel = _SyncChannel(address, self.timeout, auth_token=self.auth_token)
        channel.generation = generation
        with self._pool_lock:
            if self._info is None and endpoint.replica_id == 0:
                self._info = channel.info
        return channel

    def _release(self, endpoint: _ReplicaEndpoint, channel: _SyncChannel) -> None:
        with self._pool_lock:
            if (
                not self._closed
                and channel.generation == endpoint.generation
                and len(endpoint.idle) < self._max_idle
            ):
                endpoint.idle.append(channel)
                return
        channel.close()

    # ------------------------------------------------------------------
    # Requests: one attempt, then the retry/failover/hedge layers
    # ------------------------------------------------------------------
    def _request_on(
        self,
        endpoint: _ReplicaEndpoint,
        msg_type: int,
        payload: bytes,
        codec: int,
        timeout: float,
    ) -> Tuple[int, int, bytes]:
        """One delivery attempt against one replica; feeds its breaker."""
        channel = self._acquire(endpoint)
        start = perf_counter()
        try:
            response = channel.request(msg_type, payload, codec, timeout=timeout)
        except BaseException as error:
            if channel.dirty:
                # mid-stream failure (socket error, corrupt frame, local
                # interrupt): buffered state is undefined, drop the channel
                channel.close()
            else:
                # a complete (typed ERROR) response was consumed: clean
                self._release(endpoint, channel)
            # transport-level failures (and drain rejections) count
            # against the replica; typed application errors prove the
            # replica is healthy
            if isinstance(error, RETRYABLE_EXCEPTIONS):
                endpoint.breaker.record_failure()
            else:
                endpoint.breaker.record_success()
            raise
        else:
            self._release(endpoint, channel)
        endpoint.breaker.record_success()
        elapsed = perf_counter() - start
        self._latency.observe(elapsed)
        if self.metrics is not None:
            self.metrics.observe("net_roundtrip", elapsed)
            self.metrics.increment("net_requests")
            self.metrics.increment("net_bytes_tx", len(payload))
            self.metrics.increment("net_bytes_rx", len(response[2]))
        return response

    def _pick_endpoint(
        self, offset: int = 0, exclude: Optional[_ReplicaEndpoint] = None
    ) -> Optional[_ReplicaEndpoint]:
        """First replica (rotated by ``offset``) whose breaker admits us."""
        count = len(self._replicas)
        for step in range(count):
            endpoint = self._replicas[(offset + step) % count]
            if endpoint is exclude:
                continue
            if endpoint.breaker.allow():
                return endpoint
        return None

    def _request(
        self, msg_type: int, payload: bytes, codec: int = CODEC_JSON
    ) -> Tuple[int, int, bytes]:
        timeout = self.retry.timeout_for(msg_type)
        if (
            self.hedge.enabled
            and len(self._replicas) > 1
            and msg_type in IDEMPOTENT_MSG_TYPES
        ):
            return self._hedged_request(msg_type, payload, codec, timeout)
        attempts = self.retry.attempts_for(msg_type)
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            endpoint = self._pick_endpoint(attempt)
            if endpoint is None:
                if last_error is not None:
                    raise last_error
                raise BreakerOpenError(
                    f"all {len(self._replicas)} replica breakers are open"
                )
            try:
                return self._request_on(endpoint, msg_type, payload, codec, timeout)
            except BaseException as error:
                last_error = error
                if attempt + 1 >= attempts or not self.retry.retryable(
                    msg_type, error
                ):
                    raise
                if self.metrics is not None:
                    self.metrics.increment("net_retries")
                time.sleep(self.retry.backoff(attempt + 1))
        raise last_error  # pragma: no cover - loop always returns or raises

    def _hedged_request(
        self, msg_type: int, payload: bytes, codec: int, timeout: float
    ) -> Tuple[int, int, bytes]:
        """First answer wins: primary attempt, sibling hedge after a delay.

        The hedge fires once the primary has been in flight longer than
        the policy's trailing-quantile delay.  The loser keeps running on
        its own thread and releases its channel normally — there is no
        wire-level cancel — but its result (or error) is discarded.
        """
        primary = self._pick_endpoint(0)
        if primary is None:
            raise BreakerOpenError(
                f"all {len(self._replicas)} replica breakers are open"
            )
        executor = self._ensure_hedge_executor()
        first = executor.submit(
            self._request_on, primary, msg_type, payload, codec, timeout
        )
        try:
            return first.result(timeout=self._latency.hedge_delay(self.hedge))
        except FutureTimeoutError:
            pass  # primary is slow: hedge below
        except BaseException as error:
            # primary failed fast — this is failover, not hedging
            if not self.retry.retryable(msg_type, error):
                raise
            sibling = self._pick_endpoint(1, exclude=primary)
            if sibling is None:
                raise
            if self.metrics is not None:
                self.metrics.increment("net_failovers")
            return self._request_on(sibling, msg_type, payload, codec, timeout)
        if self.metrics is not None:
            self.metrics.increment("hedge_fired")
        sibling = self._pick_endpoint(1, exclude=primary)
        if sibling is None:
            return first.result(timeout=timeout)
        second = executor.submit(
            self._request_on, sibling, msg_type, payload, codec, timeout
        )
        hedges = {second}
        pending = {first, second}
        deadline = time.monotonic() + timeout
        last_error: Optional[BaseException] = None
        while pending:
            done, pending = futures_wait(
                pending,
                timeout=max(0.0, deadline - time.monotonic()),
                return_when=FIRST_COMPLETED,
            )
            if not done:
                for future in pending:
                    future.cancel()
                    future.add_done_callback(_swallow_future)
                raise TimeoutError(
                    f"hedged request (msg type {msg_type}) missed its "
                    f"{timeout:.0f}s deadline on both replicas"
                )
            for future in done:
                try:
                    result = future.result()
                except BaseException as error:
                    last_error = error
                    continue
                if future in hedges and self.metrics is not None:
                    self.metrics.increment("hedge_won")
                for loser in pending:
                    loser.cancel()
                    loser.add_done_callback(_swallow_future)
                return result
        assert last_error is not None  # both attempts failed
        raise last_error

    # ------------------------------------------------------------------
    # PoolShard surface
    # ------------------------------------------------------------------
    @property
    def info(self) -> Dict:
        if self._info is None:
            primary = self._replicas[0]
            # dial once for the handshake info
            self._release(primary, self._acquire(primary))
        assert self._info is not None
        return self._info

    @property
    def shard_id(self) -> int:
        return int(self.info["shard_id"])

    @property
    def worker_pid(self) -> int:
        return int(self.info["pid"])

    def task_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.info["tasks"]))

    def holds(self, task: str) -> bool:
        return task in self.info["tasks"]

    def local_heads(self) -> None:
        """Remote shards have no in-process head references (see gateway)."""
        return None

    def is_remote(self) -> bool:
        """Capability probe: this shard lives behind a socket."""
        return True

    def ping(self) -> float:
        """Health probe: one PING round trip, returns its latency."""
        start = perf_counter()
        self._request(MsgType.PING, b"")
        return perf_counter() - start

    def fetch_heads(self, names: Sequence[str], transport: str = "raw+zlib") -> bytes:
        # client-side span only: HEADS responses are raw payload codecs
        # with no meta header to carry server-side spans (see frame.py)
        with TRACER.span("net.fetch_heads", {"heads": len(names)}):
            _msg, codec, payload = self._request(
                MsgType.FETCH_HEADS,
                json_payload({"names": list(names), "transport": transport}),
            )
            if codec != codec_for_transport(transport):
                raise FrameError(
                    f"HEADS response advertised codec {codec}, expected "
                    f"{codec_for_transport(transport)} for transport {transport!r}"
                )
            return payload

    def _trace_ctx(self) -> Optional[Dict[str, str]]:
        """Wire trace context, only when tracing is live AND negotiated.

        ``inject()`` is checked first so untraced requests never pay the
        (possibly dialing) ``info`` lookup; a peer that didn't negotiate
        ``"trace"`` (an older server) gets no trace key at all.
        """
        ctx = TRACER.inject()
        if ctx is None:
            return None
        if FEATURE_TRACE not in (self.info.get("features") or ()):
            return None
        return ctx

    def serve(self, tasks: TaskQuery, transport: str = "float32") -> GatewayResponse:
        with TRACER.span("net.serve", {"shard": self.address[1]}):
            request: Dict[str, object] = {
                "tasks": list(canonical_tasks(tasks)),
                "transport": transport,
            }
            ctx = self._trace_ctx()
            if ctx is not None:
                request["trace"] = ctx
            _msg, _codec, payload = self._request(MsgType.SERVE, json_payload(request))
            meta, blob = unpack_body(payload)
            if meta.get("trace_spans"):
                TRACER.attach(meta["trace_spans"])
            return gateway_response_from_body(meta, blob)

    def predict(self, images: np.ndarray, tasks: TaskQuery) -> PredictionResponse:
        images = np.ascontiguousarray(images, dtype=np.float32)
        with TRACER.span("net.predict", {"shard": self.address[1]}):
            request: Dict[str, object] = {
                "tasks": list(canonical_tasks(tasks)),
                "dtype": str(images.dtype),
                "shape": list(images.shape),
            }
            ctx = self._trace_ctx()
            if ctx is not None:
                request["trace"] = ctx
            body = pack_body(request, images.tobytes())
            _msg, _codec, payload = self._request(MsgType.PREDICT, body, CODEC_BINARY)
            meta, blob = unpack_body(payload)
            if meta.get("trace_spans"):
                TRACER.attach(meta["trace_spans"])
            return prediction_response_from_body(meta, blob)

    def submit_predict(
        self, images: np.ndarray, tasks: TaskQuery
    ) -> "Future[PredictionResponse]":
        """Async-shaped predict: runs on the client's small dispatch pool.

        Cross-request micro-batching happens **worker-side** only for
        requests that land on the worker concurrently; the client does not
        batch (that is the asyncio transport's territory).
        """
        return self._ensure_executor().submit(self.predict, images, tasks)

    def cache_stats(self) -> Dict[str, CacheStats]:
        return {
            tier: CacheStats(**fields)
            for tier, fields in self.stats()["cache_stats"].items()
        }

    def stats(self, journal_since: int = 0) -> Dict:
        """The worker's raw stats payload (cache tiers, counters, pid).

        ``journal_since`` is a cursor into the worker's event journal:
        only events with a strictly greater ``seq`` ride back under the
        payload's ``"journal"`` key (0 — the default — ships the whole
        bounded ring).  Old servers simply omit the key.
        """
        _msg, _codec, payload = self._request(
            MsgType.STATS, json_payload({"journal_since": int(journal_since)})
        )
        info = parse_json(payload)
        with self._pool_lock:
            # negotiated features (and the replica id) come from the
            # handshake, not STATS — carry them over so tracing keeps
            # working after a stats sweep
            previous = self._info or {}
            self._info = {
                "shard_id": info["shard_id"],
                "tasks": info["tasks"],
                "pid": info["pid"],
                "protocol": PROTOCOL_VERSION,
                "features": previous.get("features", []),
                "replica": previous.get("replica", 0),
            }
        return info

    # ------------------------------------------------------------------
    # Placement mutations: fenced, idempotent wire frames
    # ------------------------------------------------------------------
    @property
    def supports_mutations(self) -> bool:
        """Whether the worker negotiated the ``"mutations"`` feature.

        False means the peer is either an old (v1-read-only) server or
        this client did not present the server's auth token — either way
        the gateway must not plan mutations against this shard.
        """
        return FEATURE_MUTATIONS in (self.info.get("features") or ())

    def replica_epochs(self) -> Dict[int, int]:
        """Last acknowledged topology epoch per replica (mutation acks)."""
        with self._pool_lock:
            return dict(self._replica_epochs)

    def _mutate_replica(
        self,
        endpoint: _ReplicaEndpoint,
        msg_type: int,
        payload: bytes,
        codec: int,
        deadline: float,
    ) -> Dict:
        """Deliver one mutation to one replica, retrying until ``deadline``.

        Deliberately *not* ``_request``: mutations never hedge and never
        fail over (every replica must apply), and they ignore the breaker
        — a replica mid-respawn is exactly the one we must keep trying,
        because ``replace_replica`` repoints ``endpoint.address`` under
        us and the next dial reaches the fresh worker.  Duplicates are
        safe: the worker's mutation-id journal answers them as replays.
        """
        timeout = self.retry.timeout_for(msg_type)
        attempt = 0
        while True:
            try:
                _msg, _codec, body = self._request_on(
                    endpoint, msg_type, payload, codec, timeout
                )
            except BaseException as error:
                if not self.retry.retryable(msg_type, error):
                    raise
                if time.monotonic() >= deadline:
                    raise
                if self.metrics is not None:
                    self.metrics.increment("net_retries")
                attempt += 1
                # floor the sleep: the common failure here is a SIGKILLed
                # worker whose respawn takes ~1s — pure jittered backoff
                # from zero would burn attempts into a dead address
                time.sleep(min(0.2 + self.retry.backoff(attempt), 1.0))
                continue
            ack = parse_json(body)
            with self._pool_lock:
                self._replica_epochs[endpoint.replica_id] = int(
                    ack.get("epoch", 0)
                )
            if ack.get("replayed") and self.metrics is not None:
                self.metrics.increment("net_mutation_replays")
            return ack

    def _broadcast_mutation(
        self,
        msg_type: int,
        payload: bytes,
        codec: int = CODEC_JSON,
        deadline_seconds: float = 60.0,
    ) -> List[Dict]:
        """Apply one mutation on **every** replica of this shard.

        Reads pick any replica; mutations must land on all of them (each
        worker owns a full pool copy).  Raises on the first replica that
        cannot be reached within the deadline — the caller (the gateway's
        two-phase plan) treats that as a failed prepare.
        """
        deadline = time.monotonic() + deadline_seconds
        return [
            self._mutate_replica(endpoint, msg_type, payload, codec, deadline)
            for endpoint in list(self._replicas)
        ]

    def install_heads(
        self, payload: bytes, *, epoch: int, mutation_id: str
    ) -> List[Dict]:
        """Install serialized expert heads on every replica (INSTALL_HEADS).

        ``payload`` is ``serialize_expert_heads`` output; its blake2b
        digest rides in the frame so a worker never installs a corrupted
        payload.  Returns one ack dict per replica.
        """
        meta = {
            "mutation_id": str(mutation_id),
            "epoch": int(epoch),
            "digest": payload_digest(payload),
        }
        return self._broadcast_mutation(
            MsgType.INSTALL_HEADS, pack_body(meta, payload), CODEC_BINARY
        )

    def drop_heads(
        self, names: Sequence[str], *, epoch: int, mutation_id: str
    ) -> List[Dict]:
        """Drop named heads on every replica (DROP_HEADS).

        An empty ``names`` list is a pure epoch fence: workers advance
        their epoch without touching the pool — the commit broadcast of a
        two-phase rebalance uses this to fence shards that moved nothing.
        """
        body = json_payload(
            {
                "mutation_id": str(mutation_id),
                "epoch": int(epoch),
                "names": list(names),
            }
        )
        return self._broadcast_mutation(MsgType.DROP_HEADS, body)

    def push_library(
        self, payload: bytes, *, epoch: int, mutation_id: str
    ) -> List[Dict]:
        """Replace the library trunk on every replica (REFRESH_LIBRARY)."""
        meta = {
            "mutation_id": str(mutation_id),
            "epoch": int(epoch),
            "digest": payload_digest(payload),
        }
        return self._broadcast_mutation(
            MsgType.REFRESH_LIBRARY, pack_body(meta, payload), CODEC_BINARY
        )

    # ------------------------------------------------------------------
    # In-process-shaped mutation signatures: still unsupported — they
    # take live objects, which do not cross a socket.  The gateway
    # serializes from its parent pool and calls the batch frames above.
    # ------------------------------------------------------------------
    def install_expert(self, name: str, head, version: int) -> None:
        raise RemoteOperationUnsupported(
            f"install_expert({name!r}) takes a live head object; remote "
            "shards install serialized payloads via install_heads()"
        )

    def drop_expert(self, name: str) -> None:
        raise RemoteOperationUnsupported(
            f"drop_expert({name!r}) is the in-process signature; remote "
            "shards drop heads via the fenced drop_heads() frame"
        )

    def refresh_library(self, library, library_student, version: int) -> None:
        raise RemoteOperationUnsupported(
            "refresh_library takes live trunk objects; remote shards "
            "install serialized library state via push_library()"
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        orphans: List[_SyncChannel] = []
        with self._pool_lock:
            self._closed = True
            for endpoint in self._replicas:
                orphans.extend(endpoint.idle)
                endpoint.idle = []
        for channel in orphans:
            channel.close()
        with self._executor_lock:
            executors = (self._executor, self._hedge_executor)
            self._executor = self._hedge_executor = None
        for executor in executors:
            if executor is not None:
                executor.shutdown(wait=True)

    def __enter__(self) -> "RemoteShardClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def drain_address(address: Tuple[str, int], timeout: float = 20.0) -> None:
        """Ask the worker at ``address`` to drain and wait for DRAINED."""
        channel = _SyncChannel(address, timeout)
        try:
            msg_type, _codec, _payload = channel.request(MsgType.DRAIN, json_payload({}))
            if msg_type != MsgType.DRAINED:
                raise FrameError(f"drain got unexpected message type {msg_type}")
        finally:
            channel.close()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("remote shard client is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_idle, thread_name_prefix="poe-net-predict"
                )
            return self._executor

    def _ensure_hedge_executor(self) -> ThreadPoolExecutor:
        # deliberately separate from the submit_predict pool: a hedged
        # request issued *from* that pool would deadlock waiting for a
        # worker slot its own caller occupies
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("remote shard client is closed")
            if self._hedge_executor is None:
                self._hedge_executor = ThreadPoolExecutor(
                    max_workers=max(4, 2 * len(self._replicas)),
                    thread_name_prefix="poe-net-hedge",
                )
            return self._hedge_executor

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RemoteShardClient(address={self.address}, "
            f"replicas={len(self._replicas)})"
        )
