"""Shard workers behind sockets: the server half of ``repro.net``.

Three layers, innermost first:

* :class:`ShardServer` — a TCP server around one
  :class:`~repro.cluster.shard.PoolShard`.  Each connection gets a reader
  thread; each request is dispatched to a small worker pool so multiple
  requests on one connection execute concurrently and their chunked
  responses interleave on the wire (no head-of-line blocking behind a big
  head payload).  Speaks the :mod:`repro.net.frame` protocol: handshake
  (``HELLO``/``HELLO_OK`` with version check), ``FETCH_HEADS``, ``SERVE``,
  ``PREDICT``, ``STATS``, ``PING`` and a graceful ``DRAIN``.
* :func:`_shard_worker_main` / :class:`ShardWorkerFleet` — the
  multiprocess deployment: one **forked worker process per shard**, each
  hosting a ``PoolShard`` + ``ShardServer`` with its own GIL.  Workers
  report readiness (their bound port) over a pipe before the fleet hands
  out clients; shutdown drains each worker over the wire and joins the
  process, escalating to ``terminate()`` only on timeout.  The fleet can
  also :meth:`~ShardWorkerFleet.retire_shard` a slot online (drain +
  join, client closed) and :meth:`~ShardWorkerFleet.update_assignment`
  so respawns fork with the *current* placement — the fleet half of
  online resharding.
* :class:`NetworkedCluster` — the one-call deployment: spawns a fleet,
  builds a :class:`~repro.cluster.gateway.ClusterGateway` whose
  ``shard_factory`` returns :class:`~repro.net.client.RemoteShardClient`\\ s,
  optionally attaches the asyncio transport, and tears everything down in
  order on ``close()``.

Worker processes are created with the ``fork`` start method so the
already-preprocessed pool is inherited copy-on-write — nothing re-trains
and expert weights are bit-identical across the process boundary.  Spawn
workers **before** serving traffic (fork duplicates only the calling
thread).  Pool mutations propagate to running workers over the wire:
``INSTALL_HEADS`` / ``DROP_HEADS`` / ``REFRESH_LIBRARY`` frames, fenced
by a topology epoch and deduplicated by mutation id, carry
re-extractions, rebalances, and online reshards without a restart (see
``docs/resharding.md``).
"""

from __future__ import annotations

import dataclasses
import hmac
import multiprocessing
import os
import secrets
import socket
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from contextlib import contextmanager

from ..cluster.gateway import ClusterConfig, ClusterGateway
from ..cluster.metrics import ClusterMetrics
from ..cluster.shard import PoolShard
from ..core.server import deserialize_expert_heads, deserialize_library_state
from ..obs.journal import JOURNAL
from ..obs.trace import TRACER
from ..serving.gateway import GatewayConfig
from .client import RemoteShardClient
from .retry import HedgePolicy, RetryPolicy, ShardDrainingError, StaleEpochError
from .frame import (
    CODEC_BINARY,
    CODEC_JSON,
    DEFAULT_CHUNK_BYTES,
    FEATURE_MUTATIONS,
    FrameDecoder,
    FrameError,
    MessageAssembler,
    MsgType,
    PROTOCOL_VERSION,
    codec_for_transport,
    encode_message,
    json_payload,
    negotiate_features,
    pack_body,
    parse_json,
    payload_digest,
    unpack_body,
)

#: Upper bound on remembered mutation ids per worker.  A rebalance emits a
#: handful of mutations per shard; 1024 comfortably covers every retry
#: window while keeping the dedup journal O(small).
_MUTATION_JOURNAL_CAP = 1024

__all__ = ["ShardServer", "ShardWorkerFleet", "NetworkedCluster"]


class ShardServer:
    """Serve one :class:`PoolShard` over TCP (the worker-side event loop).

    Thread model: one acceptor thread, one reader thread per connection,
    and a shared ``request_workers``-wide pool executing request handlers.
    Responses are written frame-by-frame under a per-connection lock, so
    chunked payloads from concurrent requests interleave cleanly.
    ``DRAIN`` and ``HELLO`` are handled outside the pool (a drain must be
    able to wait for the pool to empty without occupying it).

    Mutation frames (``INSTALL_HEADS`` / ``DROP_HEADS`` /
    ``REFRESH_LIBRARY``) are fenced and idempotent: each carries a
    topology ``epoch`` (frames older than the worker's current epoch are
    rejected with :class:`StaleEpochError`) and a ``mutation_id`` that is
    journaled on apply, so a retried duplicate is acknowledged as a
    *replay* without touching the pool.  When ``auth_token`` is set, only
    connections that presented the matching token in ``HELLO``
    (constant-time compare) may mutate; everyone else keeps the read-only
    v1 surface.
    """

    def __init__(
        self,
        shard: PoolShard,
        host: str = "127.0.0.1",
        port: int = 0,
        request_workers: int = 2,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        replica_id: int = 0,
        auth_token: Optional[str] = None,
    ) -> None:
        self.shard = shard
        self.host = host
        self.port = port
        self.chunk_bytes = chunk_bytes
        self.replica_id = replica_id
        self.auth_token = auth_token
        #: Current topology epoch (grows monotonically via mutation frames).
        self.epoch = 0
        # mutation_id -> epoch, insertion-ordered so the cap evicts oldest
        self._applied_mutations: "OrderedDict[str, int]" = OrderedDict()
        self._mutation_lock = threading.Lock()
        # id(conn) -> authenticated?, maintained by HELLO / connection close
        self._conn_auth: Dict[int, bool] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, request_workers), thread_name_prefix="poe-net-req"
        )
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._connections: List[socket.socket] = []
        self._conn_lock = threading.Lock()
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._drain_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, listen, and start accepting; returns the bound address."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.host, self.port = listener.getsockname()
        self._listener = listener
        acceptor = threading.Thread(
            target=self._accept_loop, name="poe-net-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        return self.host, self.port

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until a ``DRAIN`` completed (worker main loops on this)."""
        return self._drained.wait(timeout)

    def drain(self, on_drained=None) -> None:
        """Stop accepting, let in-flight requests finish, then signal done.

        Idempotent *and* synchronous for every caller: a second concurrent
        drain (two supervisors, or SIGTERM racing a wire DRAIN) blocks
        until the first one actually finishes — returning means all
        accepted work completed, never merely that a drain had started.
        Also the SIGTERM handler's path, so a killed worker still answers
        everything it already accepted.

        ``on_drained`` (initiator only) runs after in-flight work completed
        but *before* ``_drained`` is signalled — the wire DRAIN handler
        sends its DRAINED ack there, so a worker main loop waking on
        ``wait_drained()`` cannot close the connection under the ack.
        """
        with self._drain_lock:
            initiator = not self._draining.is_set()
            if initiator:
                self._draining.set()
        if not initiator:
            self._drained.wait()
            return
        if JOURNAL.enabled:
            JOURNAL.emit(
                "worker_drain",
                shard_id=self.shard.shard_id,
                replica=self.replica_id,
                pid=os.getpid(),
            )
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._inflight_cond:
            while self._inflight > 0:
                self._inflight_cond.wait(timeout=0.5)
        try:
            if on_drained is not None:
                on_drained()
        finally:
            self._drained.set()

    def close(self) -> None:
        """Force-close everything (after :meth:`drain` for a graceful exit)."""
        self._closed = True
        self._draining.set()
        self._drained.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        with self._conn_lock:
            conns, self._connections = self._connections, []
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Accept / read loops
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: drain or shutdown
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conn_lock:
                self._connections.append(conn)
            # daemon reader, not tracked: it exits with its connection, and
            # holding references would grow without bound on a long-lived
            # worker accepting many short connections
            threading.Thread(
                target=self._connection_loop, args=(conn,),
                name="poe-net-conn", daemon=True,
            ).start()

    def _connection_loop(self, conn: socket.socket) -> None:
        decoder = FrameDecoder()
        # the assembler bounds reassembled-message size and the number of
        # concurrent partial messages, so a runaway chunk stream cannot
        # balloon worker memory past the advertised payload cap
        assembler = MessageAssembler()
        write_lock = threading.Lock()
        try:
            while True:
                data = conn.recv(1 << 16)
                if not data:
                    return
                for frame in decoder.feed(data):
                    message = assembler.add(frame)
                    if message is None:
                        continue
                    msg_type, codec, request_id, payload = message
                    self._dispatch(conn, write_lock, msg_type, request_id, payload, codec)
        except (OSError, FrameError):
            return  # connection torn down or peer sent garbage: drop it
        finally:
            with self._conn_lock:
                if conn in self._connections:
                    self._connections.remove(conn)
                self._conn_auth.pop(id(conn), None)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        conn: socket.socket,
        write_lock: threading.Lock,
        msg_type: int,
        request_id: int,
        payload: bytes,
        codec: int,
    ) -> None:
        if msg_type == MsgType.HELLO:
            # inline: the handshake must precede any pooled response
            self._handle_hello(conn, write_lock, request_id, payload)
            return
        if msg_type == MsgType.DRAIN:
            # dedicated thread: drain waits for the request pool to empty,
            # so it must never occupy a slot in that pool
            threading.Thread(
                target=self._handle_drain, args=(conn, write_lock, request_id),
                name="poe-net-drain", daemon=True,
            ).start()
            return
        with self._inflight_cond:
            if self._draining.is_set():
                # typed so replica-aware clients fail over instead of
                # surfacing an error; subclasses RuntimeError, so old
                # clients see exactly what they used to
                self._send_error(
                    conn, write_lock, request_id,
                    ShardDrainingError("shard server is draining"),
                )
                return
            self._inflight += 1
        try:
            self._executor.submit(
                self._run_request, conn, write_lock, msg_type, request_id, payload, codec
            )
        except RuntimeError:  # executor shut down under us
            self._finish_request()

    def _finish_request(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    def _run_request(
        self,
        conn: socket.socket,
        write_lock: threading.Lock,
        msg_type: int,
        request_id: int,
        payload: bytes,
        codec: int,
    ) -> None:
        try:
            try:
                handler = self._HANDLERS[msg_type]
            except KeyError:
                raise FrameError(f"unsupported message type {msg_type}") from None
            handler(self, conn, write_lock, request_id, payload, codec)
        except BaseException as error:
            try:
                self._send_error(conn, write_lock, request_id, error)
            except OSError:
                pass  # peer is gone; nothing to report to
        finally:
            self._finish_request()

    def _send(
        self,
        conn: socket.socket,
        write_lock: threading.Lock,
        msg_type: int,
        request_id: int,
        payload: bytes,
        codec: int = CODEC_JSON,
    ) -> None:
        # lock per *frame*, not per message: concurrent responses on the
        # same connection interleave at chunk granularity
        for frame in encode_message(
            msg_type, request_id, payload, codec, self.chunk_bytes
        ):
            with write_lock:
                conn.sendall(frame)

    def _send_error(
        self, conn, write_lock, request_id: int, error: BaseException
    ) -> None:
        message = str(error.args[0]) if error.args else str(error)
        self._send(
            conn,
            write_lock,
            MsgType.ERROR,
            request_id,
            json_payload(
                {
                    "type": type(error).__name__,
                    "message": message,
                    "shard_id": self.shard.shard_id,
                }
            ),
        )

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_hello(self, conn, write_lock, request_id: int, payload: bytes) -> None:
        request = parse_json(payload) if payload else {}
        theirs = request.get("protocol")
        if theirs != PROTOCOL_VERSION:
            # version-mismatch contract: answer with a typed ERROR naming
            # both versions, then hang up — never guess at framing
            self._send_error(
                conn,
                write_lock,
                request_id,
                FrameError(
                    f"protocol mismatch: client speaks {theirs!r}, "
                    f"server speaks {PROTOCOL_VERSION}"
                ),
            )
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:  # pragma: no cover
                pass
            return
        # shared-token auth: constant-time compare; a server with no token
        # configured trusts every local peer (the single-host default).
        # Wrong or absent tokens are NOT an error — the peer simply stays
        # read-only, and "mutations" is withheld from its feature set.
        presented = request.get("auth")
        authed = self.auth_token is None or (
            isinstance(presented, str)
            and hmac.compare_digest(presented, self.auth_token)
        )
        with self._conn_lock:
            self._conn_auth[id(conn)] = authed
        features = list(negotiate_features(request.get("features")))
        if not authed and FEATURE_MUTATIONS in features:
            features.remove(FEATURE_MUTATIONS)
        self._send(
            conn,
            write_lock,
            MsgType.HELLO_OK,
            request_id,
            json_payload(
                {
                    "protocol": PROTOCOL_VERSION,
                    "shard_id": self.shard.shard_id,
                    # replica index within the shard slot (0 for a lone
                    # worker); a plain JSON addition — old clients ignore it
                    "replica": self.replica_id,
                    "tasks": list(self.shard.task_names()),
                    "pid": os.getpid(),
                    # optional-capability intersection (empty for a client
                    # that sent no "features" key — old peers interop)
                    "features": features,
                    "epoch": self.epoch,
                }
            ),
        )

    @contextmanager
    def _traced(self, ctx, name: str, spans_out: List[Dict]):
        """Continue a caller's trace around one shard call.

        ``ctx`` is the request's ``"trace"`` object (or None/absent for an
        untraced request — then this is a no-op).  On exit the request's
        server-side spans are pulled out of the collector into
        ``spans_out`` for the response to carry back.
        """
        if not ctx:
            yield
            return
        tags = {"shard_id": self.shard.shard_id, "pid": os.getpid()}
        with TRACER.continue_from(ctx, name, tags) as span:
            yield
        spans_out.extend(TRACER.collector.take_trace(span.trace_id))

    def _handle_drain(self, conn, write_lock, request_id: int) -> None:
        acked = []

        def ack() -> None:
            self._send(conn, write_lock, MsgType.DRAINED, request_id, json_payload({}))
            acked.append(True)

        try:
            self.drain(on_drained=ack)
        except OSError:  # pragma: no cover - peer vanished mid-drain
            return
        if not acked:
            # a concurrent drain beat us to initiating: ack best-effort
            # (the worker main loop may already be tearing connections down)
            try:
                ack()
            except OSError:
                pass

    def _handle_ping(self, conn, write_lock, request_id, payload, codec) -> None:
        self._send(conn, write_lock, MsgType.PONG, request_id, payload, codec)

    def _handle_fetch_heads(self, conn, write_lock, request_id, payload, codec) -> None:
        request = parse_json(payload)
        transport = request.get("transport", "raw+zlib")
        raw = self.shard.fetch_heads(tuple(request["names"]), transport)
        self._send(
            conn, write_lock, MsgType.HEADS, request_id, raw,
            codec_for_transport(transport),
        )

    def _handle_serve(self, conn, write_lock, request_id, payload, codec) -> None:
        request = parse_json(payload)
        spans: List[Dict] = []
        with self._traced(request.get("trace"), "shard.serve", spans):
            response = self.shard.serve(
                tuple(request["tasks"]), request.get("transport", "float32")
            )
        meta = {
            "tasks": list(response.tasks),
            "transport": response.transport,
            "payload_bytes": response.payload_bytes,
            "queue_seconds": response.queue_seconds,
            "service_seconds": response.service_seconds,
            "model_cache_hit": response.model_cache_hit,
            "payload_cache_hit": response.payload_cache_hit,
            "coalesced": response.coalesced,
        }
        if spans:
            meta["trace_spans"] = spans
        body = pack_body(meta, response.payload)
        self._send(conn, write_lock, MsgType.SERVED, request_id, body, CODEC_BINARY)

    def _handle_predict(self, conn, write_lock, request_id, payload, codec) -> None:
        meta, blob = unpack_body(payload)
        images = (
            np.frombuffer(blob, dtype=meta["dtype"]).reshape(meta["shape"]).copy()
        )
        spans: List[Dict] = []
        with self._traced(meta.get("trace"), "shard.predict", spans):
            response = self.shard.predict(images, tuple(meta["tasks"]))
        ids = np.ascontiguousarray(response.class_ids)
        out_meta = {
            "tasks": list(response.tasks),
            "batch_size": response.batch_size,
            "queue_seconds": response.queue_seconds,
            "service_seconds": response.service_seconds,
            "model_cache_hit": response.model_cache_hit,
            "trunk_cache_hit": response.trunk_cache_hit,
            "coalesced": response.coalesced,
            "result_cache_hit": response.result_cache_hit,
            "dtype": str(ids.dtype),
            "shape": list(ids.shape),
        }
        if spans:
            out_meta["trace_spans"] = spans
        body = pack_body(out_meta, ids.tobytes())
        self._send(conn, write_lock, MsgType.PREDICTED, request_id, body, CODEC_BINARY)

    # ------------------------------------------------------------------
    # Mutation handlers: fenced, idempotent, auth-gated
    # ------------------------------------------------------------------
    def _require_mutation_auth(self, conn) -> None:
        with self._conn_lock:
            authed = self._conn_auth.get(id(conn), self.auth_token is None)
        if not authed:
            raise PermissionError(
                "mutation frames require an authenticated peer "
                "(send the shared auth token in HELLO)"
            )

    def _fence_and_dedup(self, mutation_id: str, epoch: int) -> bool:
        """Under the mutation lock: answer ``True`` for a replay.

        Replay is checked *before* the epoch fence: a duplicate of a
        mutation that already applied must be acknowledged even if later
        mutations have since advanced the epoch — the retrying client is
        owed its ack, and re-applying is the thing being prevented.
        Unknown ids with an epoch below the worker's are fenced out.
        """
        if mutation_id in self._applied_mutations:
            return True
        if epoch < self.epoch:
            metrics = self.shard.gateway.metrics
            if metrics is not None:
                metrics.increment("stale_epoch_rejects")
            raise StaleEpochError(
                f"mutation epoch {epoch} is stale: shard {self.shard.shard_id} "
                f"replica {self.replica_id} is at epoch {self.epoch}"
            )
        return False

    def _record_applied(self, mutation_id: str, epoch: int, kind: str, **detail) -> None:
        self._applied_mutations[mutation_id] = epoch
        while len(self._applied_mutations) > _MUTATION_JOURNAL_CAP:
            self._applied_mutations.popitem(last=False)
        self.epoch = max(self.epoch, epoch)
        metrics = self.shard.gateway.metrics
        if metrics is not None:
            metrics.increment("mutations_applied")
        if JOURNAL.enabled:
            JOURNAL.emit(
                "mutation_applied",
                op=kind,
                mutation_id=mutation_id,
                epoch=epoch,
                shard_id=self.shard.shard_id,
                replica=self.replica_id,
                **detail,
            )

    def _record_replayed(self, mutation_id: str, kind: str) -> None:
        metrics = self.shard.gateway.metrics
        if metrics is not None:
            metrics.increment("mutations_replayed")
        if JOURNAL.enabled:
            JOURNAL.emit(
                "mutation_replayed",
                op=kind,
                mutation_id=mutation_id,
                epoch=self.epoch,
                shard_id=self.shard.shard_id,
                replica=self.replica_id,
            )

    def _handle_install_heads(self, conn, write_lock, request_id, payload, codec) -> None:
        self._require_mutation_auth(conn)
        meta, blob = unpack_body(payload)
        mutation_id = str(meta["mutation_id"])
        epoch = int(meta["epoch"])
        installed: List[str] = []
        with self._mutation_lock:
            replayed = self._fence_and_dedup(mutation_id, epoch)
            if not replayed:
                digest = meta.get("digest")
                if digest is not None and payload_digest(blob) != digest:
                    raise FrameError(
                        "INSTALL_HEADS payload digest mismatch: "
                        "refusing to install corrupted heads"
                    )
                for name, remote in deserialize_expert_heads(blob).items():
                    # attach overwrites an existing head of the same name,
                    # so a crash-and-retry mid-apply converges (idempotent)
                    self.shard.install_expert(name, remote.head, remote.version)
                    installed.append(name)
                self._record_applied(
                    mutation_id, epoch, "install_heads", tasks=len(installed)
                )
            else:
                self._record_replayed(mutation_id, "install_heads")
            out = {
                "applied": not replayed,
                "replayed": replayed,
                "epoch": self.epoch,
                "installed": installed,
            }
        self._send(
            conn, write_lock, MsgType.HEADS_INSTALLED, request_id, json_payload(out)
        )

    def _handle_drop_heads(self, conn, write_lock, request_id, payload, codec) -> None:
        self._require_mutation_auth(conn)
        request = parse_json(payload)
        mutation_id = str(request["mutation_id"])
        epoch = int(request["epoch"])
        names = [str(n) for n in request.get("names", ())]
        dropped: List[str] = []
        with self._mutation_lock:
            replayed = self._fence_and_dedup(mutation_id, epoch)
            if not replayed:
                held = set(self.shard.local_heads())
                for name in names:
                    # tolerate absent names: a respawned worker may have
                    # forked past the drop already, and the commit
                    # broadcast uses an empty list as a pure epoch fence
                    if name in held:
                        self.shard.drop_expert(name)
                        dropped.append(name)
                self._record_applied(
                    mutation_id, epoch, "drop_heads",
                    tasks=len(dropped), requested=len(names),
                )
            else:
                self._record_replayed(mutation_id, "drop_heads")
            out = {
                "applied": not replayed,
                "replayed": replayed,
                "epoch": self.epoch,
                "dropped": dropped,
            }
        self._send(
            conn, write_lock, MsgType.HEADS_DROPPED, request_id, json_payload(out)
        )

    def _handle_refresh_library(self, conn, write_lock, request_id, payload, codec) -> None:
        self._require_mutation_auth(conn)
        meta, blob = unpack_body(payload)
        mutation_id = str(meta["mutation_id"])
        epoch = int(meta["epoch"])
        version = None
        with self._mutation_lock:
            replayed = self._fence_and_dedup(mutation_id, epoch)
            if not replayed:
                digest = meta.get("digest")
                if digest is not None and payload_digest(blob) != digest:
                    raise FrameError(
                        "REFRESH_LIBRARY payload digest mismatch: "
                        "refusing to install a corrupted trunk"
                    )
                library, version = deserialize_library_state(blob)
                # the student stays behind the gateway that distilled it;
                # workers only ever serve through the consolidated trunk
                self.shard.refresh_library(library, None, version)
                self._record_applied(
                    mutation_id, epoch, "refresh_library", version=version
                )
            else:
                self._record_replayed(mutation_id, "refresh_library")
            out = {
                "applied": not replayed,
                "replayed": replayed,
                "epoch": self.epoch,
                "version": version,
            }
        self._send(
            conn, write_lock, MsgType.LIBRARY_REFRESHED, request_id, json_payload(out)
        )

    def _handle_stats(self, conn, write_lock, request_id, payload, codec) -> None:
        try:
            request = parse_json(payload) if payload else {}
        except Exception:  # legacy/foreign payloads: serve the full view
            request = {}
        journal_since = int(request.get("journal_since", 0) or 0)
        stats = {
            tier: dataclasses.asdict(s) for tier, s in self.shard.cache_stats().items()
        }
        # the full unified snapshot (schema/kind/stages/counters + full
        # histogram state) rides at the top level so the cluster front end
        # can merge per-worker snapshots losslessly; the identity keys and
        # "cache_stats"/"counters" stay where existing clients expect them
        response = self.shard.gateway.metrics.snapshot(include_histograms=True)
        response.update(
            {
                "shard_id": self.shard.shard_id,
                "pid": os.getpid(),
                "tasks": list(self.shard.task_names()),
                "cache_stats": stats,
                "epoch": self.epoch,
            }
        )
        # journal events ride in the response like trace_spans do: the
        # worker's bounded ring, cursored by seq so a poller that passes
        # ``journal_since`` ships each event across the wire once
        if JOURNAL.enabled:
            response["journal"] = JOURNAL.since(journal_since)
        self._send(conn, write_lock, MsgType.STATS_OK, request_id, json_payload(response))

    _HANDLERS = {
        MsgType.PING: _handle_ping,
        MsgType.FETCH_HEADS: _handle_fetch_heads,
        MsgType.SERVE: _handle_serve,
        MsgType.PREDICT: _handle_predict,
        MsgType.STATS: _handle_stats,
        MsgType.INSTALL_HEADS: _handle_install_heads,
        MsgType.DROP_HEADS: _handle_drop_heads,
        MsgType.REFRESH_LIBRARY: _handle_refresh_library,
    }


# ----------------------------------------------------------------------
# Worker processes
# ----------------------------------------------------------------------
def _shard_worker_main(
    control,
    shard_id: int,
    task_names: Tuple[str, ...],
    pool,
    gateway_config: Optional[GatewayConfig],
    host: str,
    request_workers: int,
    replica_id: int = 0,
    auth_token: Optional[str] = None,
) -> None:
    """Entry point of one forked shard worker (readiness → serve → drain)."""
    import signal

    # Fork copies the parent's tracer — including any open JSONL writer fd.
    # Server-side spans must travel back over the wire (``trace_spans``),
    # not race the client into a shared file, so start from a clean tracer
    # and name this process's spans after the shard.
    TRACER.reset()
    TRACER.service = f"shard{shard_id}"
    # Same story for the journal, except workers keep theirs *enabled*
    # (memory ring only, no file): lifecycle/eviction events buffer here
    # and ride back to the poller in STATS responses.
    JOURNAL.reset()
    JOURNAL.enable(service=f"shard{shard_id}")
    JOURNAL.emit(
        "worker_start",
        shard_id=shard_id,
        replica=replica_id,
        pid=os.getpid(),
        tasks=len(task_names),
    )

    try:
        shard = PoolShard(shard_id, pool, task_names, gateway_config)
        server = ShardServer(
            shard,
            host=host,
            port=0,
            request_workers=request_workers,
            replica_id=replica_id,
            auth_token=auth_token,
        )
        _host, port = server.start()
    except BaseException as error:  # report startup failure, don't hang the parent
        try:
            control.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            control.close()
        os._exit(1)
    control.send(("ready", port))
    control.close()
    signal.signal(signal.SIGTERM, lambda *_args: server.drain())
    server.wait_drained()
    server.close()
    shard.close()


@dataclasses.dataclass
class _WorkerHandle:
    """One worker process plus the spawn spec needed to respawn it."""

    shard_id: int
    process: "multiprocessing.process.BaseProcess"
    address: Tuple[str, int]
    replica_id: int = 0
    task_names: Tuple[str, ...] = ()
    gateway_config: Optional[GatewayConfig] = None


class ShardWorkerFleet:
    """Spawn, supervise, and retire shard worker processes.

    Workers are spawned lazily as :meth:`shard_factory` is called (the
    :class:`~repro.cluster.gateway.ClusterGateway` constructor drives it,
    handing over each shard's task assignment), so the fleet needs no
    routing knowledge of its own.  With ``replicas_per_shard > 1`` each
    shard slot gets N identical worker processes and the returned client
    holds one connection pool per replica, failing over and hedging
    between them.  A supervisor thread (started on first spawn) watches
    child processes: a worker that dies without being asked is journaled
    as ``worker_death`` and respawned from its stored spawn spec (fork of
    the same pool + task assignment — the pool *is* the serialized shard
    state), then the owning client is repointed at the new address
    (``worker_respawn``).  ``shutdown()`` stops supervision first, then
    drains every worker over the wire, joins it, and only terminates on
    timeout; :meth:`leaked_processes` is the post-shutdown leak check the
    CI smoke asserts on.
    """

    def __init__(
        self,
        pool,
        host: str = "127.0.0.1",
        connections_per_shard: int = 2,
        startup_timeout: float = 60.0,
        metrics: Optional[ClusterMetrics] = None,
        replicas_per_shard: int = 1,
        retry: Optional[RetryPolicy] = None,
        hedge: Optional[HedgePolicy] = None,
        supervise: bool = True,
        supervision_interval: float = 0.1,
        auth_token: Optional[str] = None,
    ) -> None:
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "networked shards need the 'fork' start method to inherit "
                "the preprocessed pool; this platform does not support it"
            ) from None
        if replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be >= 1")
        self.pool = pool
        self.host = host
        self.connections_per_shard = connections_per_shard
        self.startup_timeout = startup_timeout
        self.metrics = metrics
        self.replicas_per_shard = replicas_per_shard
        self.retry = retry
        self.hedge = hedge
        self.supervise = supervise
        self.supervision_interval = supervision_interval
        self.auth_token = auth_token
        self.workers: List[_WorkerHandle] = []
        self._clients: List[RemoteShardClient] = []
        self._clients_by_shard: Dict[int, RemoteShardClient] = {}
        self._supervisor: Optional[threading.Thread] = None
        self._stop_supervision = threading.Event()
        self._fleet_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _spawn_process(
        self,
        shard_id: int,
        replica_id: int,
        task_names: Tuple[str, ...],
        gateway_config: Optional[GatewayConfig],
    ) -> Tuple["multiprocessing.process.BaseProcess", Tuple[str, int]]:
        """Fork one worker process; block until it reports readiness."""
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        request_workers = gateway_config.max_workers if gateway_config else 2
        process = self._context.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                shard_id,
                task_names,
                self.pool,
                gateway_config,
                self.host,
                request_workers,
                replica_id,
                self.auth_token,
            ),
            name=f"poe-shard-{shard_id}r{replica_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.startup_timeout):
            process.terminate()
            raise RuntimeError(
                f"shard worker {shard_id}/r{replica_id} did not report "
                f"readiness within {self.startup_timeout:.0f}s"
            )
        status, value = parent_conn.recv()
        parent_conn.close()
        if status != "ready":
            process.join(timeout=5.0)
            raise RuntimeError(
                f"shard worker {shard_id}/r{replica_id} failed to start: {value}"
            )
        return process, (self.host, int(value))

    def spawn(
        self,
        shard_id: int,
        task_names: Sequence[str],
        gateway_config: Optional[GatewayConfig] = None,
        replica_id: int = 0,
    ) -> Tuple[str, int]:
        """Fork one worker for ``task_names``; block until it is ready."""
        names = tuple(task_names)
        process, address = self._spawn_process(
            shard_id, replica_id, names, gateway_config
        )
        with self._fleet_lock:
            self.workers.append(
                _WorkerHandle(
                    shard_id, process, address, replica_id, names, gateway_config
                )
            )
        self._ensure_supervisor()
        return address

    def shard_factory(
        self,
        shard_id: int,
        task_names: Sequence[str],
        gateway_config: Optional[GatewayConfig] = None,
        trunk_cache=None,
    ) -> RemoteShardClient:
        """The ``ClusterGateway`` shard-factory hook: one replica *group*
        of worker processes per shard.

        ``trunk_cache`` is accepted for signature compatibility and
        ignored — a worker process owns its own trunk-feature cache (the
        cluster front end keeps a separate one for cross-shard predicts).
        """
        addresses = [
            self.spawn(shard_id, task_names, gateway_config, replica_id=replica)
            for replica in range(self.replicas_per_shard)
        ]
        client = RemoteShardClient(
            addresses,
            connections=self.connections_per_shard,
            metrics=self.metrics,
            retry=self.retry,
            hedge=self.hedge,
            auth_token=self.auth_token,
        )
        self._clients.append(client)
        self._clients_by_shard[shard_id] = client
        return client

    # ------------------------------------------------------------------
    # Supervision: death detection + respawn
    # ------------------------------------------------------------------
    def _ensure_supervisor(self) -> None:
        if not self.supervise or self._supervisor is not None:
            return
        self._stop_supervision.clear()
        self._supervisor = threading.Thread(
            target=self._supervision_loop, name="poe-fleet-supervisor", daemon=True
        )
        self._supervisor.start()

    def _supervision_loop(self) -> None:
        while not self._stop_supervision.wait(self.supervision_interval):
            with self._fleet_lock:
                handles = list(self.workers)
            for handle in handles:
                if self._stop_supervision.is_set():
                    return
                if handle.process.is_alive():
                    continue
                self._respawn(handle)

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker in place; the handle keeps its slot."""
        with self._fleet_lock:
            if handle not in self.workers:
                return  # slot retired (online shrink) between scan and respawn
        dead_pid = handle.process.pid
        if JOURNAL.enabled:
            JOURNAL.emit(
                "worker_death",
                shard_id=handle.shard_id,
                replica=handle.replica_id,
                pid=dead_pid,
                exitcode=handle.process.exitcode,
            )
        if self.metrics is not None:
            self.metrics.increment("worker_deaths")
        try:
            process, address = self._spawn_process(
                handle.shard_id,
                handle.replica_id,
                handle.task_names,
                handle.gateway_config,
            )
        except Exception as error:
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "worker_respawn_failed",
                    shard_id=handle.shard_id,
                    replica=handle.replica_id,
                    error=f"{type(error).__name__}: {error}",
                )
            return
        handle.process = process
        handle.address = address
        client = self._clients_by_shard.get(handle.shard_id)
        if client is not None:
            client.replace_replica(handle.replica_id, address)
        if self.metrics is not None:
            self.metrics.increment("worker_respawns")
        if JOURNAL.enabled:
            JOURNAL.emit(
                "worker_respawn",
                shard_id=handle.shard_id,
                replica=handle.replica_id,
                pid=process.pid,
                old_pid=dead_pid,
            )

    def stop_supervision(self) -> None:
        self._stop_supervision.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None

    # ------------------------------------------------------------------
    # Online topology changes (the fleet half of resharding)
    # ------------------------------------------------------------------
    def update_assignment(self, shard_id: int, task_names: Sequence[str]) -> None:
        """Record a shard slot's new task assignment in its spawn spec.

        Respawns fork from the *parent* pool with the stored assignment,
        so after a rebalance/reshard moved heads this must be updated or a
        crashed worker would come back serving the pre-move placement.
        """
        names = tuple(task_names)
        with self._fleet_lock:
            for handle in self.workers:
                if handle.shard_id == shard_id:
                    handle.task_names = names

    def retire_shard(self, shard_id: int, timeout: float = 20.0) -> None:
        """Drain and retire every worker of one shard slot (online shrink).

        Handles leave ``self.workers`` under the fleet lock *before* any
        worker is touched, so the supervisor cannot respawn a slot that is
        being retired; the client is closed before the drain so no new
        requests race the teardown.
        """
        with self._fleet_lock:
            retiring = [h for h in self.workers if h.shard_id == shard_id]
            self.workers = [h for h in self.workers if h.shard_id != shard_id]
        client = self._clients_by_shard.pop(shard_id, None)
        if client is not None:
            if client in self._clients:
                self._clients.remove(client)
            client.close()
        for handle in retiring:
            if not handle.process.is_alive():
                continue
            try:
                RemoteShardClient.drain_address(handle.address, timeout=timeout)
            except OSError:
                pass  # already exiting; join below decides
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():  # pragma: no cover - unresponsive
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "worker_exit",
                    shard_id=handle.shard_id,
                    replica=handle.replica_id,
                    pid=handle.process.pid,
                    exitcode=handle.process.exitcode,
                )

    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 20.0) -> None:
        """Drain + join every worker; terminate only the unresponsive."""
        # stop the supervisor first or it would dutifully respawn every
        # worker this very loop is about to retire
        self.stop_supervision()
        for client in self._clients:
            client.close()
        self._clients = []
        self._clients_by_shard = {}
        for handle in self.workers:
            if not handle.process.is_alive():
                # a worker that died before we asked it to is news
                if JOURNAL.enabled and handle.process.exitcode not in (0, None):
                    JOURNAL.emit(
                        "worker_death",
                        shard_id=handle.shard_id,
                        replica=handle.replica_id,
                        pid=handle.process.pid,
                        exitcode=handle.process.exitcode,
                    )
                continue
            try:
                RemoteShardClient.drain_address(handle.address, timeout=timeout)
            except OSError:
                pass  # worker already exiting; join below decides
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():  # pragma: no cover - unresponsive worker
                handle.process.terminate()
                handle.process.join(timeout=5.0)
                if JOURNAL.enabled:
                    JOURNAL.emit(
                        "worker_death",
                        shard_id=handle.shard_id,
                        replica=handle.replica_id,
                        pid=handle.process.pid,
                        exitcode=handle.process.exitcode,
                    )
            elif JOURNAL.enabled:
                JOURNAL.emit(
                    "worker_exit",
                    shard_id=handle.shard_id,
                    replica=handle.replica_id,
                    pid=handle.process.pid,
                    exitcode=handle.process.exitcode,
                )

    def leaked_processes(self) -> List["multiprocessing.process.BaseProcess"]:
        """Workers still alive (should be empty after :meth:`shutdown`)."""
        return [h.process for h in self.workers if h.process.is_alive()]

    def __enter__(self) -> "ShardWorkerFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover
        return f"ShardWorkerFleet(workers={len(self.workers)}, host={self.host!r})"


# ----------------------------------------------------------------------
# One-call deployment
# ----------------------------------------------------------------------
class NetworkedCluster:
    """A :class:`ClusterGateway` whose shards live in worker processes.

    Construction spawns ``config.num_shards`` forked workers (readiness-
    gated), wires the gateway's ``shard_factory`` to return
    :class:`RemoteShardClient`\\ s, and — with ``async_transport=True`` —
    attaches the :class:`~repro.net.aio.AsyncClusterTransport` so
    ``gateway.submit`` dispatches through the asyncio event loop instead
    of the thread pool.  ``close()`` tears down in dependency order:
    transport, gateway (client sockets), then the fleet (drain + join).
    """

    def __init__(
        self,
        pool,
        config: Optional[ClusterConfig] = None,
        host: str = "127.0.0.1",
        connections_per_shard: int = 2,
        async_transport: bool = False,
        startup_timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        hedge: Optional[HedgePolicy] = None,
        auth_token: Optional[str] = None,
    ) -> None:
        self.metrics = ClusterMetrics()
        # every mutation frame is auth-gated; a fresh random token per
        # cluster keeps the gateway the only peer that can mutate workers
        self.auth_token = auth_token or secrets.token_hex(16)
        replicas = getattr(config, "replicas_per_shard", 1) if config else 1
        self.fleet = ShardWorkerFleet(
            pool,
            host=host,
            connections_per_shard=connections_per_shard,
            startup_timeout=startup_timeout,
            metrics=self.metrics,
            replicas_per_shard=replicas,
            retry=retry,
            hedge=hedge,
            auth_token=self.auth_token,
        )
        try:
            self.gateway = ClusterGateway(
                pool,
                config,
                metrics=self.metrics,
                shard_factory=self.fleet.shard_factory,
            )
            self.gateway.attach_fleet(self.fleet)
        except BaseException:
            self.fleet.shutdown()
            raise
        if async_transport:
            from .aio import AsyncClusterTransport

            try:
                transport = AsyncClusterTransport(
                    self.gateway, connections_per_shard=connections_per_shard
                )
                transport.start()
            except BaseException:
                self.close()
                raise
            self.gateway.async_transport = transport

    def close(self) -> None:
        self.gateway.close()
        self.fleet.shutdown()

    def __enter__(self) -> "NetworkedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"NetworkedCluster(workers={len(self.fleet.workers)})"
