"""Asyncio transport for networked clusters: multiplexed, streaming I/O.

The thread-pool path (:class:`~repro.net.client.RemoteShardClient`) holds
one connection per in-flight request; under high fan-out that costs a
thread *and* a socket per concurrent call.  This module is the event-loop
alternative the ROADMAP's "async transport" item asks for:

* :class:`AsyncShardChannel` — one connection carrying **many** requests
  at once, matched to responses by request id.  Large responses arrive as
  chunked frames (the server interleaves them between other responses),
  so a small serve is never stuck behind a big head payload on the same
  connection.
* :class:`AsyncShardPool` — ``connections_per_shard`` channels per shard,
  round-robin, opened lazily inside the loop.
* :class:`AsyncClusterTransport` — a background event-loop thread exposed
  through :meth:`submit`, the drop-in alternative to
  :class:`~repro.cluster.gateway.ClusterGateway.submit`'s thread-pool
  executor (the gateway delegates when its ``async_transport`` attribute
  is set, which :class:`~repro.net.server.NetworkedCluster` does for
  ``async_transport=True``).  Single-shard queries are forwarded to the
  owning worker and await only network I/O; cross-shard queries check the
  cluster's composite caches, ``gather`` the remote head fetches
  **concurrently**, and run assembly/serialization in the loop's default
  executor so the event loop never blocks on CPU work.

Concurrency notes: all channel state lives on the loop thread; the
cluster caches and metrics the coroutines touch are the same thread-safe
objects the sync path uses, so both transports can run side by side.
Duplicate concurrent cross-shard builds coalesce on an asyncio future per
payload key (the loop-native analogue of the gateway's
:class:`~repro.serving.gateway.SingleFlight`).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import Future
from dataclasses import replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.gateway import _tag_shard_error
from ..obs.trace import TRACER
from ..serving.canonical import TaskQuery, canonical_tasks, payload_key
from ..serving.gateway import GatewayResponse, expert_versions
from .client import gateway_response_from_body, raise_remote_error
from .frame import (
    CODEC_JSON,
    FEATURE_TRACE,
    FrameDecoder,
    FrameError,
    IDEMPOTENT_MSG_TYPES,
    MessageAssembler,
    MsgType,
    PROTOCOL_VERSION,
    SUPPORTED_FEATURES,
    codec_for_transport,
    encode_message,
    json_payload,
    parse_json,
    unpack_body,
)
from .retry import (
    BreakerOpenError,
    CircuitBreaker,
    HedgePolicy,
    LatencyTracker,
    RETRYABLE_EXCEPTIONS,
    RetryPolicy,
)

__all__ = [
    "AsyncShardChannel",
    "AsyncShardPool",
    "AsyncReplicaGroup",
    "AsyncClusterTransport",
]


class AsyncShardChannel:
    """One multiplexed connection to a shard worker (loop-thread only)."""

    _ids = itertools.count(1)

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float = 120.0,
        auth_token: Optional[str] = None,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.auth_token = auth_token
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._reader_task: Optional["asyncio.Task"] = None
        self.info: Dict = {}
        #: True once the read loop exited (connection dead) or close() ran;
        #: the pool evicts closed channels instead of round-robining onto
        #: a connection no reader will ever answer on.
        self.closed = False

    async def open(self) -> None:
        # bounded like the sync client's socket timeout: a worker that
        # accepts but never answers must not wedge the event loop's traffic
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(*self.address), self.timeout
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())
        hello: Dict[str, object] = {
            "protocol": PROTOCOL_VERSION,
            "features": list(SUPPORTED_FEATURES),
        }
        if self.auth_token is not None:
            hello["auth"] = self.auth_token
        msg_type, _codec, payload = await self.request(
            MsgType.HELLO, json_payload(hello)
        )
        if msg_type != MsgType.HELLO_OK:
            raise FrameError(f"handshake got unexpected message type {msg_type}")
        self.info = parse_json(payload)

    async def request(
        self,
        msg_type: int,
        payload: bytes,
        codec: int = CODEC_JSON,
        timeout: Optional[float] = None,
    ) -> Tuple[int, int, bytes]:
        """Send one message; await its (reassembled) response message.

        ``timeout`` overrides the channel default for this one request
        (the per-op deadline from a :class:`~repro.net.retry.RetryPolicy`).
        """
        if self._writer is None or self.closed:
            raise ConnectionError("channel is not open")
        bound = self.timeout if timeout is None else timeout
        request_id = next(self._ids)
        future: "asyncio.Future" = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        # no await between writes: the message's frames hit the transport
        # buffer contiguously, so concurrent requests cannot interleave
        # *requests* (responses interleave server-side, by design)
        for frame_bytes in encode_message(msg_type, request_id, payload, codec):
            self._writer.write(frame_bytes)
        try:
            await asyncio.wait_for(self._writer.drain(), bound)
            response_type, response_codec, body = await asyncio.wait_for(
                future, bound
            )
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise ConnectionError(
                f"shard at {self.address} did not answer within "
                f"{bound:.0f}s"
            ) from None
        if response_type == MsgType.ERROR:
            raise_remote_error(parse_json(body))
        return response_type, response_codec, body

    async def _read_loop(self) -> None:
        assert self._reader is not None
        decoder = FrameDecoder()
        # multiplexed channel: many legitimate partials at once, but each
        # reassembled message stays under the payload cap
        assembler = MessageAssembler(max_partial_messages=65536)
        error: BaseException = ConnectionError("shard connection closed")
        try:
            while True:
                data = await self._reader.read(1 << 16)
                if not data:
                    break
                for frame in decoder.feed(data):
                    # feed the assembler even for abandoned requests (e.g.
                    # a timed-out caller popped its pending entry): the
                    # terminal frame then clears the partial state instead
                    # of leaking it for the connection's lifetime
                    message = assembler.add(frame)
                    if message is None:
                        continue
                    msg_type, codec, request_id, body = message
                    future = self._pending.pop(request_id, None)
                    if future is not None and not future.done():
                        future.set_result((msg_type, codec, body))
        except (OSError, FrameError) as caught:
            error = caught
        except asyncio.CancelledError:
            error = ConnectionError("channel closed")
        self.closed = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def close(self) -> None:
        self.closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover
                pass


class AsyncShardPool:
    """Round-robin over up to ``size`` channels to one shard replica.

    ``address`` may be a static ``(host, port)`` pair or a zero-argument
    callable returning one — the callable form re-resolves on every dial,
    so a replica respawned at a new port is picked up as soon as its dead
    channels are evicted from the rotation.
    """

    def __init__(
        self,
        address,
        size: int = 2,
        timeout: float = 120.0,
        auth_token: Optional[str] = None,
    ) -> None:
        self._address = address
        self.size = max(1, size)
        self.timeout = timeout
        self.auth_token = auth_token
        self._channels: List[AsyncShardChannel] = []
        self._cursor = 0
        self._lock = asyncio.Lock()

    @property
    def address(self) -> Tuple[str, int]:
        return self._address() if callable(self._address) else self._address

    async def channel(self) -> AsyncShardChannel:
        async with self._lock:
            # evict dead channels first: one transient reset must not leave
            # a corpse in the rotation soaking up requests until timeout
            self._channels = [c for c in self._channels if not c.closed]
            if len(self._channels) < self.size:
                # dialing under the lock serializes ramp-up, but open() is
                # timeout-bounded, so a dead worker delays — never wedges —
                # traffic to this shard
                channel = AsyncShardChannel(
                    self.address, self.timeout, auth_token=self.auth_token
                )
                await channel.open()
                self._channels.append(channel)
                return channel
            self._cursor = (self._cursor + 1) % len(self._channels)
            return self._channels[self._cursor]

    async def request(
        self,
        msg_type: int,
        payload: bytes,
        codec: int = CODEC_JSON,
        timeout: Optional[float] = None,
    ) -> Tuple[int, int, bytes]:
        channel = await self.channel()
        return await channel.request(msg_type, payload, codec, timeout=timeout)

    async def close(self) -> None:
        channels, self._channels = self._channels, []
        for channel in channels:
            await channel.close()


class AsyncReplicaGroup:
    """Failover + hedging across one shard's replica pools (loop-thread).

    The asyncio mirror of the sync client's replica layer: idempotent
    requests (:data:`~repro.net.frame.IDEMPOTENT_MSG_TYPES`) fail over to
    a sibling replica on transport errors, each replica has its own
    :class:`~repro.net.retry.CircuitBreaker`, and slow reads are hedged —
    a second attempt fires on a sibling after the trailing-quantile delay
    and the first answer wins (the loser task is cancelled).
    """

    def __init__(
        self,
        shard_id: int,
        pools: List[AsyncShardPool],
        retry: RetryPolicy,
        hedge: HedgePolicy,
        metrics=None,
    ) -> None:
        self.shard_id = shard_id
        self.pools = pools
        self.retry = retry
        self.hedge = hedge
        self.metrics = metrics
        self.breakers = [CircuitBreaker() for _ in pools]
        self.latency = LatencyTracker()
        self._features: Optional[Tuple[str, ...]] = None

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.increment(name)

    async def features(self) -> Tuple[str, ...]:
        """Negotiated features of this shard (from the primary handshake)."""
        if self._features is None:
            channel = await self.pools[0].channel()
            self._features = tuple(channel.info.get("features") or ())
        return self._features

    def _pick(self, offset: int = 0, exclude: Optional[int] = None) -> Optional[int]:
        count = len(self.pools)
        for step in range(count):
            index = (offset + step) % count
            if index == exclude:
                continue
            if self.breakers[index].allow():
                return index
        return None

    async def _once(
        self, index: int, msg_type: int, payload: bytes, codec: int, timeout: float
    ) -> Tuple[int, int, bytes]:
        start = perf_counter()
        try:
            result = await self.pools[index].request(
                msg_type, payload, codec, timeout=timeout
            )
        except asyncio.CancelledError:
            raise  # a cancelled hedge loser says nothing about the replica
        except BaseException as error:
            if isinstance(error, RETRYABLE_EXCEPTIONS):
                self.breakers[index].record_failure()
            else:
                self.breakers[index].record_success()
            raise
        self.breakers[index].record_success()
        self.latency.observe(perf_counter() - start)
        return result

    async def request(
        self, msg_type: int, payload: bytes, codec: int = CODEC_JSON
    ) -> Tuple[int, int, bytes]:
        timeout = self.retry.timeout_for(msg_type)
        if (
            self.hedge.enabled
            and len(self.pools) > 1
            and msg_type in IDEMPOTENT_MSG_TYPES
        ):
            return await self._hedged(msg_type, payload, codec, timeout)
        attempts = self.retry.attempts_for(msg_type)
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            index = self._pick(attempt)
            if index is None:
                if last_error is not None:
                    raise last_error
                raise BreakerOpenError(
                    f"all {len(self.pools)} replica breakers are open "
                    f"for shard {self.shard_id}"
                )
            try:
                return await self._once(index, msg_type, payload, codec, timeout)
            except asyncio.CancelledError:
                raise
            except BaseException as error:
                last_error = error
                if attempt + 1 >= attempts or not self.retry.retryable(
                    msg_type, error
                ):
                    raise
                self._count("net_retries")
                await asyncio.sleep(self.retry.backoff(attempt + 1))
        raise last_error  # pragma: no cover - loop always returns or raises

    async def _hedged(
        self, msg_type: int, payload: bytes, codec: int, timeout: float
    ) -> Tuple[int, int, bytes]:
        primary = self._pick(0)
        if primary is None:
            raise BreakerOpenError(
                f"all {len(self.pools)} replica breakers are open "
                f"for shard {self.shard_id}"
            )
        first = asyncio.ensure_future(
            self._once(primary, msg_type, payload, codec, timeout)
        )
        try:
            return await asyncio.wait_for(
                asyncio.shield(first), self.latency.hedge_delay(self.hedge)
            )
        except asyncio.TimeoutError:
            pass  # primary is slow: hedge below
        except BaseException as error:
            # primary failed fast — failover, not hedging
            if not self.retry.retryable(msg_type, error):
                raise
            sibling = self._pick(1, exclude=primary)
            if sibling is None:
                raise
            self._count("net_failovers")
            return await self._once(sibling, msg_type, payload, codec, timeout)
        self._count("hedge_fired")
        sibling = self._pick(1, exclude=primary)
        if sibling is None:
            return await first
        second = asyncio.ensure_future(
            self._once(sibling, msg_type, payload, codec, timeout)
        )
        pending = {first, second}
        last_error: Optional[BaseException] = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                try:
                    result = task.result()
                except BaseException as error:
                    last_error = error
                    continue
                if task is second:
                    self._count("hedge_won")
                for loser in pending:
                    loser.cancel()
                return result
        assert last_error is not None  # both attempts failed
        raise last_error

    async def close(self) -> None:
        for pool in self.pools:
            await pool.close()


class AsyncClusterTransport:
    """Event-loop request dispatch for a networked :class:`ClusterGateway`."""

    def __init__(
        self,
        cluster,
        connections_per_shard: int = 2,
        timeout: float = 120.0,
        retry: Optional[RetryPolicy] = None,
        hedge: Optional[HedgePolicy] = None,
    ) -> None:
        self.cluster = cluster
        self._retry = retry or RetryPolicy()
        self._hedge = hedge or HedgePolicy()
        self._connections_per_shard = connections_per_shard
        self._timeout = timeout
        self._retired_groups: List[AsyncReplicaGroup] = []
        self._groups: List[AsyncReplicaGroup] = self._build_groups()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        # payload key -> in-flight build (the loop-native single flight)
        self._inflight: Dict[object, "asyncio.Future"] = {}

    def _build_groups(self) -> List[AsyncReplicaGroup]:
        groups: List[AsyncReplicaGroup] = []
        for shard_index, shard in enumerate(self.cluster.shards):
            if getattr(shard, "address", None) is None:
                raise ValueError(
                    "the async transport needs networked shards "
                    "(RemoteShardClient); in-process shards dispatch through "
                    "the cluster executor"
                )
            replica_count = getattr(shard, "replica_count", 1)
            # address *providers*, not snapshots: a respawned replica's new
            # port is re-resolved from the shard client on the next dial
            pools = [
                AsyncShardPool(
                    self._address_provider(shard, replica),
                    self._connections_per_shard,
                    self._timeout,
                    auth_token=getattr(shard, "auth_token", None),
                )
                for replica in range(replica_count)
            ]
            groups.append(
                AsyncReplicaGroup(
                    shard_index, pools, self._retry, self._hedge,
                    metrics=self.cluster.metrics,
                )
            )
        return groups

    def refresh_topology(self) -> None:
        """Re-derive replica groups from ``cluster.shards`` after a reshard.

        Pools dial lazily, so this is cheap and thread-safe: the new group
        list is swapped in atomically; superseded groups are *parked*, not
        closed — an in-flight request may still be awaiting on one of
        their channels — and are torn down with the transport (workers of
        retired shards drain their connections anyway).
        """
        self._retired_groups.extend(self._groups)
        self._groups = self._build_groups()

    @staticmethod
    def _address_provider(shard, replica: int):
        def resolve() -> Tuple[str, int]:
            addresses = getattr(shard, "addresses", None)
            if addresses is None:
                return shard.address
            return addresses[min(replica, len(addresses) - 1)]

        return resolve

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._loop is not None:
            return
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="poe-net-aio", daemon=True
        )
        self._thread.start()

    def submit(
        self, tasks: TaskQuery, transport: str = "float32"
    ) -> "Future[GatewayResponse]":
        """Dispatch one query onto the event loop; returns a future.

        The drop-in alternative to the cluster executor:
        ``run_coroutine_threadsafe`` hands back the same
        ``concurrent.futures.Future`` contract ``submit`` always had.
        """
        if self._loop is None:
            raise RuntimeError("async transport is not started")
        return asyncio.run_coroutine_threadsafe(
            self._serve(tasks, transport, perf_counter()), self._loop
        )

    def close(self) -> None:
        loop, self._loop = self._loop, None
        if loop is None:
            return
        asyncio.run_coroutine_threadsafe(self._close_pools(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        loop.close()

    async def _close_pools(self) -> None:
        for group in self._groups + self._retired_groups:
            await group.close()

    # ------------------------------------------------------------------
    async def _serve(
        self, tasks: TaskQuery, transport: str, enqueued_at: float
    ) -> GatewayResponse:
        from ..core.server import TRANSPORTS

        cluster = self.cluster
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        start = perf_counter()
        queue_seconds = start - enqueued_at
        cluster.metrics.observe("queue", queue_seconds)
        cluster.metrics.increment("requests")
        # each submitted query is its own asyncio task with its own
        # contextvars copy, so the ambient span nests correctly even with
        # many queries in flight on the one loop
        with TRACER.span("cluster.serve", {"transport": transport}) as span:
            try:
                names = canonical_tasks(tasks)
                span.tag("tasks", len(names))
                # same one-retry contract as the sync path: a rebalance can
                # move a task between planning and serving, and a reshard
                # can retire the planned shard outright (transport errors
                # and a shrunk group list replan iff the epoch moved)
                for attempt in (0, 1):
                    epoch_before = cluster._epoch
                    try:
                        return await self._serve_planned(
                            names, transport, start, queue_seconds
                        )
                    except KeyError:
                        with cluster._placement_lock:
                            still_placed = all(
                                name in cluster._placement for name in names
                            )
                        if attempt == 1 or not still_placed:
                            raise
                        cluster.metrics.increment("plan_retries")
                    except (ConnectionError, OSError, RuntimeError, IndexError):
                        if attempt == 1 or cluster._epoch == epoch_before:
                            raise
                        cluster.metrics.increment("plan_retries")
            except BaseException:
                cluster.metrics.increment("errors")
                raise
            raise AssertionError("unreachable")  # pragma: no cover

    async def _serve_planned(
        self,
        names: Tuple[str, ...],
        transport: str,
        start: float,
        queue_seconds: float,
    ) -> GatewayResponse:
        cluster = self.cluster
        plan = cluster._plan(names)
        cluster.metrics.record_fanout(len(plan))

        if len(plan) == 1:
            (shard_id,) = plan
            cluster.metrics.record_shard_requests((shard_id,))
            with TRACER.span("net.serve", {"shard_id": shard_id}):
                request: Dict[str, object] = {
                    "tasks": list(names),
                    "transport": transport,
                }
                group = self._groups[shard_id]
                try:
                    ctx = TRACER.inject()
                    if ctx is not None and FEATURE_TRACE in await group.features():
                        request["trace"] = ctx
                    _msg, _codec, payload = await group.request(
                        MsgType.SERVE, json_payload(request)
                    )
                except BaseException as error:
                    # same [shard N] attribution contract as the sync path
                    raise _tag_shard_error(error, shard_id)
                meta, blob = unpack_body(payload)
                if meta.get("trace_spans"):
                    TRACER.attach(meta["trace_spans"])
            response = gateway_response_from_body(meta, blob)
            if response.coalesced:
                cluster.metrics.increment("coalesced")
            response = replace(response, queue_seconds=queue_seconds)
            cluster.metrics.observe("total", perf_counter() - start)
            return response

        cluster.metrics.increment("cross_shard")
        key = payload_key(names, transport)
        payload = cluster.payload_cache.get(key)
        model_hit, coalesced, payload_hit = False, False, payload is not None
        if payload is None:
            flight = self._inflight.get(key)
            if flight is not None:
                coalesced = True
                cluster.metrics.increment("coalesced")
                payload, model_hit = await asyncio.shield(flight)
            else:
                flight = asyncio.get_event_loop().create_future()
                # retrieve the exception eagerly so an unawaited flight
                # (no followers) never logs "exception was never retrieved"
                flight.add_done_callback(
                    lambda f: f.exception() if not f.cancelled() else None
                )
                self._inflight[key] = flight
                try:
                    payload, model_hit = await self._build_cross_shard(
                        names, plan, transport, key
                    )
                except BaseException as error:
                    flight.set_exception(error)
                    raise
                else:
                    flight.set_result((payload, model_hit))
                finally:
                    self._inflight.pop(key, None)

        service_seconds = perf_counter() - start
        cluster.metrics.observe("total", service_seconds)
        return GatewayResponse(
            payload=payload,
            tasks=names,
            transport=transport,
            payload_bytes=len(payload),
            queue_seconds=queue_seconds,
            service_seconds=service_seconds,
            model_cache_hit=model_hit,
            payload_cache_hit=payload_hit,
            coalesced=coalesced,
        )

    async def _build_cross_shard(
        self,
        names: Tuple[str, ...],
        plan: Dict[int, Tuple[str, ...]],
        transport: str,
        key,
    ) -> Tuple[bytes, bool]:
        """Concurrent head gather → executor-side assemble + serialize.

        Mirrors the sync ``_build_payload`` pipeline (same version-guarded
        cache puts, same metrics stages) with the network part replaced by
        an ``asyncio.gather`` across shards.
        """
        cluster = self.cluster
        loop = asyncio.get_event_loop()
        versions = expert_versions(cluster.pool, names)
        cluster.metrics.record_shard_requests(list(plan))
        model = cluster.model_cache.get(names)
        model_hit = model is not None
        if model is None:
            heads: Dict[str, object] = {}
            fetch_start = perf_counter()

            async def fetch_group(shard_id: int, group: Sequence[str]) -> None:
                cached, missing = cluster._cached_remote_heads(group)
                heads.update(cached)
                if not missing:
                    return
                try:
                    _msg, _codec, raw = await self._groups[shard_id].request(
                        MsgType.FETCH_HEADS,
                        json_payload(
                            {
                                "names": list(missing),
                                "transport": cluster.config.fetch_transport,
                            }
                        ),
                    )
                except BaseException as error:
                    # same [shard N] attribution contract as the sync path
                    raise _tag_shard_error(error, shard_id)
                expected = codec_for_transport(cluster.config.fetch_transport)
                if _codec != expected:
                    raise FrameError(
                        f"HEADS response advertised codec {_codec}, expected {expected}"
                    )
                cluster.metrics.increment("remote_fetches")
                cluster.metrics.increment("remote_fetch_bytes", len(raw))
                heads.update(
                    await loop.run_in_executor(
                        None, cluster._ingest_head_payload, raw
                    )
                )

            await asyncio.gather(
                *(fetch_group(sid, group) for sid, group in plan.items())
            )
            fetch_seconds = perf_counter() - fetch_start
            cluster.metrics.observe("fetch", fetch_seconds)
            if TRACER.enabled:
                TRACER.record_stage("fetch", fetch_seconds)
            model = await loop.run_in_executor(
                None, cluster._assemble_composite, names, heads, versions
            )
        payload = await loop.run_in_executor(
            None,
            cluster._serialize_composite,
            model,
            names,
            versions,
            transport,
            key,
        )
        return payload, model_hit

    def __repr__(self) -> str:  # pragma: no cover
        return f"AsyncClusterTransport(shards={len(self._groups)})"
