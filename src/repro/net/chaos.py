"""Chaos testing helpers: kill workers on purpose, prove nobody notices.

:class:`ChaosMonkey` SIGKILLs a random live worker of a
:class:`~repro.net.server.ShardWorkerFleet` — no drain, no warning, the
process is simply gone mid-request.  The fleet's supervisor is expected
to notice the death, journal it, and respawn the replica while sibling
replicas absorb the traffic.  The chaos CI job and
``tests/net/test_fault_tolerance.py`` drive query load across the kill
window and assert zero client-visible errors with bit-identical
results.
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import Optional

__all__ = ["ChaosMonkey"]


class ChaosMonkey:
    """SIGKILL random fleet workers; deterministic under a seeded rng."""

    def __init__(self, fleet, rng: Optional[random.Random] = None) -> None:
        self.fleet = fleet
        self.rng = rng or random.Random()
        self.kills: list = []

    def live_workers(self):
        return [h for h in self.fleet.workers if h.process.is_alive()]

    def kill_one(self):
        """SIGKILL one random live worker; returns its handle (or None).

        Uses SIGKILL specifically — SIGTERM would trigger the worker's
        graceful-drain handler, which is not chaos, it's a deploy.
        """
        victims = self.live_workers()
        if not victims:
            return None
        handle = self.rng.choice(victims)
        pid = handle.process.pid
        os.kill(pid, signal.SIGKILL)
        self.kills.append((handle.shard_id, handle.replica_id, pid))
        return handle

    def wait_respawned(self, handle, timeout: float = 15.0) -> bool:
        """Block until the fleet replaced ``handle``'s slot with a live pid.

        The dead pid comes from :attr:`kills`, not from ``handle`` — the
        supervisor refills the slot by mutating the handle in place, so by
        the time anyone polls, ``handle.process`` may already *be* the
        replacement.
        """
        killed = [
            pid
            for shard_id, replica_id, pid in self.kills
            if shard_id == handle.shard_id and replica_id == handle.replica_id
        ]
        dead_pid = killed[-1] if killed else handle.process.pid
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for current in self.fleet.workers:
                if (
                    current.shard_id == handle.shard_id
                    and current.replica_id == handle.replica_id
                    and current.process.pid != dead_pid
                    and current.process.is_alive()
                ):
                    return True
            time.sleep(0.05)
        return False
