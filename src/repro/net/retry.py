"""Fault-tolerance policy objects shared by the sync and async clients.

Three small, independently testable pieces sit between a shard client
and its replica endpoints:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  full jitter, plus a **per-operation timeout table** replacing the old
  single 120 s socket timeout (a PING should never wait two minutes; a
  cold cross-shard SERVE legitimately might).  The policy is
  idempotency-aware: the message types in
  :data:`~repro.net.frame.IDEMPOTENT_MSG_TYPES` are retried and failed
  over freely; :data:`~repro.net.frame.MUTATION_MSG_TYPES` are retried
  (their mutation-id dedup makes duplicates safe) but never hedged or
  failed over mid-flight; everything else gets exactly one delivery
  attempt.  A :class:`StaleEpochError` is a *fencing* rejection — the
  frame lost a topology race — and is deliberately not retryable:
  re-sending the same stale epoch can never succeed.
* :class:`CircuitBreaker` — per-replica closed → open → half-open state
  machine.  After ``failure_threshold`` *consecutive* failures the
  breaker opens and the replica stops soaking requests; after
  ``cooldown`` seconds one half-open probe is admitted, and its outcome
  either closes the breaker or re-opens it for another cooldown.
* :class:`HedgePolicy` + :class:`LatencyTracker` — hedged reads fire a
  second attempt on a sibling replica once the first has been in flight
  longer than a trailing latency quantile (clamped to
  ``[min_delay, max_delay]``), absorbing tail latency without doubling
  steady-state load.

Everything here is transport-agnostic: the sync client drives it with
threads, the asyncio transport with tasks.  See
``docs/fault-tolerance.md`` for the end-to-end semantics.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from .frame import IDEMPOTENT_MSG_TYPES, MUTATION_MSG_TYPES, MsgType

__all__ = [
    "BreakerOpenError",
    "ShardDrainingError",
    "StaleEpochError",
    "RETRYABLE_EXCEPTIONS",
    "DEFAULT_OP_TIMEOUTS",
    "RetryPolicy",
    "CircuitBreaker",
    "HedgePolicy",
    "LatencyTracker",
]


class ShardDrainingError(RuntimeError):
    """The replica is draining and refused a new request.

    Crosses the wire as a typed ERROR so clients can distinguish "this
    replica is going away, fail over" from a genuine server-side
    failure.  Subclasses :class:`RuntimeError` for compatibility with
    pre-replica clients, which mapped the drain rejection to a plain
    ``RuntimeError``.
    """


class BreakerOpenError(ConnectionError):
    """Every candidate replica's circuit breaker is open.

    Subclasses :class:`ConnectionError` because that is what it means:
    nothing is reachable right now.  Carries no partial result.
    """


class StaleEpochError(RuntimeError):
    """A mutation frame carried an epoch older than the worker's.

    The topology-epoch fence: the worker has already applied a newer
    placement, so this frame belongs to a superseded plan.  Crosses the
    wire as a typed ERROR.  Never retryable — the epoch in the frame
    cannot grow by re-sending it; the *sender* must re-plan.
    """


#: Errors that mean "the *transport* failed" — the request may never have
#: reached the shard, so re-issuing an idempotent operation is safe.
#: Typed application errors (KeyError and friends) and framing errors
#: are deliberately absent: those prove the request executed (or the
#: stream is corrupt), and retrying would duplicate work or loop.
RETRYABLE_EXCEPTIONS: Tuple[type, ...] = (
    ConnectionError,
    TimeoutError,
    OSError,
    ShardDrainingError,
)

#: Per-operation deadlines (seconds).  Control traffic is fast or dead;
#: payload-bearing operations get room for cold consolidation + transfer.
DEFAULT_OP_TIMEOUTS: Mapping[int, float] = {
    MsgType.PING: 5.0,
    MsgType.STATS: 10.0,
    MsgType.FETCH_HEADS: 60.0,
    MsgType.SERVE: 120.0,
    MsgType.PREDICT: 120.0,
    MsgType.DRAIN: 30.0,
    MsgType.INSTALL_HEADS: 60.0,
    MsgType.DROP_HEADS: 30.0,
    MsgType.REFRESH_LIBRARY: 120.0,
}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff + full jitter.

    ``max_attempts`` counts total tries (1 = no retry).  Sleep before
    attempt ``k`` (k >= 1) is uniformly drawn from
    ``[0, min(base_delay * 2**(k-1), max_delay)]`` — full jitter, so a
    fleet of clients hammered by the same dead replica doesn't
    resynchronize into retry waves.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    op_timeouts: Mapping[int, float] = field(
        default_factory=lambda: dict(DEFAULT_OP_TIMEOUTS)
    )
    default_timeout: float = 30.0

    def timeout_for(self, msg_type: int) -> float:
        """The deadline for one attempt of ``msg_type``."""
        return float(self.op_timeouts.get(msg_type, self.default_timeout))

    def attempts_for(self, msg_type: int) -> int:
        """Total delivery attempts allowed: 1 unless idempotent or a
        dedup-protected mutation."""
        if msg_type in IDEMPOTENT_MSG_TYPES or msg_type in MUTATION_MSG_TYPES:
            return max(1, int(self.max_attempts))
        return 1

    def retryable(self, msg_type: int, error: BaseException) -> bool:
        """Whether ``error`` on ``msg_type`` permits another attempt.

        Mutations retry on transport failures like idempotent reads do —
        the worker's mutation-id journal turns a duplicate delivery into
        an acknowledged replay — but a :class:`StaleEpochError` proves
        the frame is fenced out and can never succeed.
        """
        if (
            msg_type not in IDEMPOTENT_MSG_TYPES
            and msg_type not in MUTATION_MSG_TYPES
        ):
            return False
        from .frame import FrameError  # framing is never retryable

        # PermissionError subclasses OSError but proves the peer is
        # read-only (no auth token): re-sending can never succeed
        if isinstance(error, (FrameError, StaleEpochError, PermissionError)):
            return False
        return isinstance(error, RETRYABLE_EXCEPTIONS)

    def backoff(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Sleep before retry number ``attempt`` (1-based); full jitter."""
        if attempt < 1:
            return 0.0
        ceiling = min(self.base_delay * (2.0 ** (attempt - 1)), self.max_delay)
        draw = (rng or random).uniform(0.0, ceiling)
        return draw


class CircuitBreaker:
    """Per-replica breaker: open after K consecutive failures, probe later.

    States:

    * **closed** — requests flow; consecutive failures are counted.
    * **open** — :meth:`allow` answers ``False`` until ``cooldown``
      seconds have passed since the breaker opened.
    * **half-open** — exactly one probe request is admitted; its
      :meth:`record_success` closes the breaker, its
      :meth:`record_failure` re-opens it for another cooldown.

    Thread-safe; the clock is injectable for tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a request may be sent to this replica right now."""
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                if self._probe_inflight:
                    return False
                self._state = self.HALF_OPEN
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self._probe_inflight = False
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()

    def reset(self) -> None:
        """Force-close (e.g. after the replica was respawned)."""
        self.record_success()


@dataclass(frozen=True)
class HedgePolicy:
    """When and how to hedge an idempotent read.

    The hedge fires once the first attempt has been in flight longer
    than the ``quantile`` of recently observed latencies (clamped to
    ``[min_delay, max_delay]``); before ``min_samples`` observations the
    clamp floor is used.  ``enabled=False`` turns hedging off without
    ripping out the call sites.
    """

    enabled: bool = True
    quantile: float = 0.95
    min_delay: float = 0.01
    max_delay: float = 1.0
    min_samples: int = 8


class LatencyTracker:
    """Bounded ring of recent latencies with cheap quantile reads.

    Feeds the hedge delay: :meth:`hedge_delay` answers the policy's
    quantile over the last ``capacity`` observations.  Thread-safe.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(8, capacity)
        self._lock = threading.Lock()
        self._samples: list = []
        self._cursor = 0

    def observe(self, seconds: float) -> None:
        with self._lock:
            if len(self._samples) < self.capacity:
                self._samples.append(float(seconds))
            else:
                self._samples[self._cursor] = float(seconds)
                self._cursor = (self._cursor + 1) % self.capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def quantile(self, q: float) -> Optional[float]:
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        q = min(1.0, max(0.0, q))
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def hedge_delay(self, policy: HedgePolicy) -> float:
        """The in-flight duration after which a hedge should fire."""
        if len(self) < policy.min_samples:
            return policy.min_delay
        value = self.quantile(policy.quantile)
        if value is None:
            return policy.min_delay
        return min(policy.max_delay, max(policy.min_delay, value))
