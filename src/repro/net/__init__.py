"""repro.net — networked shards: sockets and processes under the cluster.

:mod:`repro.cluster` (PR 2) already pushed every cross-shard interaction
through a serialized-bytes boundary; this package puts real transport
under that boundary so shard fan-out escapes the GIL:

* :mod:`~repro.net.frame` — the length-prefixed binary frame protocol
  (msg type + request id + codec tag, chunked streaming for large
  payloads); ``docs/wire-protocol.md`` is its prose spec.
* :mod:`~repro.net.server` — :class:`ShardServer` (one
  :class:`~repro.cluster.shard.PoolShard` behind a TCP socket),
  :class:`ShardWorkerFleet` (one forked worker **process** per shard,
  readiness handshake, graceful drain) and :class:`NetworkedCluster`
  (fleet + gateway in one context manager).
* :mod:`~repro.net.client` — :class:`RemoteShardClient`: the same
  ``fetch_heads``/``serve``/``predict`` surface as an in-process shard,
  over pooled connections, so :class:`~repro.cluster.ClusterGateway`
  runs **bit-identical** against either backend via its
  ``shard_factory``.
* :mod:`~repro.net.aio` — :class:`AsyncClusterTransport`: an asyncio
  event-loop dispatcher (multiplexed connections, concurrent head
  gathers, chunk-interleaved streaming) as ``ClusterGateway.submit``'s
  executor alternative.
"""

from .chaos import ChaosMonkey
from .client import (
    RemoteOperationUnsupported,
    RemoteShardClient,
    RemoteShardError,
)
from .frame import (
    DEFAULT_CHUNK_BYTES,
    FEATURE_MUTATIONS,
    FEATURE_TRACE,
    FLAG_END,
    Frame,
    FrameDecoder,
    FrameError,
    HEADER_BYTES,
    IDEMPOTENT_MSG_TYPES,
    MAX_PAYLOAD_BYTES,
    MUTATION_MSG_TYPES,
    MsgType,
    PROTOCOL_VERSION,
    ProtocolMismatch,
    SUPPORTED_FEATURES,
    codec_for_transport,
    encode_frame,
    encode_message,
    negotiate_features,
    payload_digest,
    transport_for_codec,
)
from .retry import (
    BreakerOpenError,
    CircuitBreaker,
    HedgePolicy,
    LatencyTracker,
    RetryPolicy,
    ShardDrainingError,
    StaleEpochError,
)
from .server import NetworkedCluster, ShardServer, ShardWorkerFleet

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "FEATURE_MUTATIONS",
    "FEATURE_TRACE",
    "FLAG_END",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "HEADER_BYTES",
    "IDEMPOTENT_MSG_TYPES",
    "MAX_PAYLOAD_BYTES",
    "MUTATION_MSG_TYPES",
    "MsgType",
    "PROTOCOL_VERSION",
    "ProtocolMismatch",
    "SUPPORTED_FEATURES",
    "codec_for_transport",
    "encode_frame",
    "encode_message",
    "negotiate_features",
    "payload_digest",
    "transport_for_codec",
    "BreakerOpenError",
    "ChaosMonkey",
    "CircuitBreaker",
    "HedgePolicy",
    "LatencyTracker",
    "RetryPolicy",
    "ShardDrainingError",
    "StaleEpochError",
    "RemoteOperationUnsupported",
    "RemoteShardClient",
    "RemoteShardError",
    "NetworkedCluster",
    "ShardServer",
    "ShardWorkerFleet",
]
