"""repro — reproduction of "Pool of Experts: Realtime Querying Specialized
Knowledge in Massive Neural Networks" (Kim & Choi, SIGMOD 2021).

Layered architecture (see DESIGN.md):

* ``repro.tensor``  — numpy autograd engine (PyTorch substitute)
* ``repro.nn``      — layers / modules / serialization
* ``repro.optim``   — SGD + schedules
* ``repro.data``    — class hierarchies + synthetic hierarchical datasets
* ``repro.models``  — WRN-l-(k_c, k_s) zoo + branched PoE architecture
* ``repro.distill`` — KD / CKD / Transfer / Scratch / SD / UHC
* ``repro.core``    — Pool of Experts (the paper's contribution)
* ``repro.serving`` — realtime serving gateway: caches, coalescing, loadgen
* ``repro.cluster`` — sharded pools: routing, cross-shard consolidation
* ``repro.net``     — networked shards: wire protocol, worker processes,
  asyncio transport (imported on demand; see ``docs/architecture.md``)
* ``repro.eval``    — metrics, experiment tracks, benchmark runners
"""

from . import core, data, distill, eval, models, nn, optim, serving, tensor
from .core import ModelQueryEngine, PoEConfig, PoolOfExperts, TaskSpecificModel
from .serving import ServingGateway

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "nn",
    "optim",
    "data",
    "models",
    "distill",
    "core",
    "serving",
    "eval",
    "PoolOfExperts",
    "ServingGateway",
    "PoEConfig",
    "ModelQueryEngine",
    "TaskSpecificModel",
    "__version__",
]
