"""The branched task-specific architecture of PoE (paper Figure 3).

A consolidated model ``M(Q)`` is a single shared library trunk feeding
``n(Q)`` expert heads whose sub-logits are concatenated into one unified
logit vector.  Assembly is purely structural — modules are *shared by
reference* with the pool, so building ``M(Q)`` moves no weights and takes
microseconds; that is the train-free property the paper's service phase
depends on.

The paper denotes this architecture ``WRN-l-(k_c, [k_s^(1..n(Q))]^T)`` and
notes its parameter advantage: n(Q) separate conv4 blocks of width 64·k_s
cost n(Q)× the parameters of one such block, whereas a single conv4 block
with n(Q)·64·k_s channels would cost n(Q)²× (§5.1, Table 3).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..nn import Module, ModuleList
from ..nn.fused import FusedTrunk, fused_trunk_for, invalidate_fused_trunk
from ..tensor import Tensor
from .fused_head import FusedHeadBank
from .wrn import WRNHead, WRNTrunk

__all__ = ["BranchedSpecialistNet"]


class BranchedSpecialistNet(Module):
    """Library trunk + several expert heads with concatenated logits.

    Parameters
    ----------
    trunk:
        The shared library component (frozen; shared by reference).
    heads:
        ``(name, head)`` pairs in concatenation order.  The output logit
        layout is ``[head_0's classes | head_1's classes | ...]``.
    """

    def __init__(self, trunk: WRNTrunk, heads: Sequence[Tuple[str, WRNHead]]) -> None:
        super().__init__()
        if not heads:
            raise ValueError("a branched model needs at least one expert head")
        self.trunk = trunk
        self.head_names: Tuple[str, ...] = tuple(name for name, _ in heads)
        if len(set(self.head_names)) != len(self.head_names):
            raise ValueError(f"duplicate expert names in {self.head_names}")
        self.heads = ModuleList([head for _, head in heads])
        self.num_classes = sum(head.num_classes for head in self.heads)
        self._fused: Optional[FusedHeadBank] = None

    @property
    def n_branches(self) -> int:
        """The paper's ``n(Q)``."""
        return len(self.head_names)

    def forward(self, x: Tensor) -> Tensor:
        """Unified logits ``s_Q``: expert sub-logits concatenated (Fig. 3)."""
        features = self.trunk(x)
        sub_logits = [head(features) for head in self.heads]
        if len(sub_logits) == 1:
            return sub_logits[0]
        return Tensor.concatenate(sub_logits, axis=1)

    def fused_bank(self) -> FusedHeadBank:
        """The stacked-weight fast path over this model's heads (lazy).

        Built on first use and kept for the model's lifetime: heads are
        shared by reference with the pool but never mutated in place — a
        re-extraction installs a *new* head object and invalidates every
        cached model, so a freshly consolidated model always stacks current
        weights.  Call :meth:`invalidate_fused` after mutating head weights
        directly (e.g. ``load_state_dict``) to force a restack.
        """
        if self._fused is None:
            self._fused = FusedHeadBank(list(self.heads))
        return self._fused

    def fused_trunk(self) -> FusedTrunk:
        """The compiled eval-mode trunk program (memoized on the trunk).

        Memoization lives on the shared trunk *module*, not on this
        wrapper: every composite model over one library shares a single
        compiled program, and a library re-extraction (which installs a
        new trunk object and bumps ``LIBRARY_TASK``) invalidates it by
        construction.  Verified ``allclose`` against the autograd trunk
        at compile time.
        """
        return fused_trunk_for(self.trunk)

    def fused_forward(self, images: np.ndarray) -> np.ndarray:
        """Unified logits from raw NCHW images, fully fused (no autograd).

        Compiled trunk + stacked head bank; matches :meth:`forward` to
        float32 round-off.
        """
        return self.fused_bank()(self.fused_trunk()(images))

    def invalidate_fused(self) -> None:
        """Drop the stacked bank (and the trunk compile) so the next
        fast-path call rebuilds them — required after mutating weights in
        place (e.g. ``load_state_dict``)."""
        self._fused = None
        invalidate_fused_trunk(self.trunk)

    def fused_logits(self, features: np.ndarray) -> np.ndarray:
        """Unified logits from precomputed trunk features, fused path.

        ``features`` is the raw array output of :attr:`trunk` (NCHW).
        Matches :meth:`forward` on those features to float32 round-off —
        one vectorized pass instead of ``n(Q)`` per-head loop iterations.
        """
        return self.fused_bank()(features)

    def sub_logits(self, x: Tensor) -> Dict[str, Tensor]:
        """Per-expert sub-logits keyed by expert name (diagnostics)."""
        features = self.trunk(x)
        return {
            name: head(features) for name, head in zip(self.head_names, self.heads)
        }

    def logit_slices(self) -> Dict[str, slice]:
        """Position of each expert's block inside the unified logit."""
        slices: Dict[str, slice] = {}
        offset = 0
        for name, head in zip(self.head_names, self.heads):
            slices[name] = slice(offset, offset + head.num_classes)
            offset += head.num_classes
        return slices

    def arch_name(self) -> str:
        trunk = self.trunk
        ks = ", ".join(f"{h.out_channels / 64:g}" for h in self.heads)
        return f"WRN-{trunk.depth}-({trunk.k_c:g}, [{ks}]^T)"
