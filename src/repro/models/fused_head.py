"""Batched execution of a bank of same-shaped :class:`WRNHead` experts.

A consolidated ``M(Q)`` runs one frozen trunk and then ``n(Q)`` expert
heads over the *same* feature map.  The straightforward loop executes each
head through the autograd tensor engine — ``n(Q)`` × (im2col + GEMM +
Python-composed batch norm) per block.  :class:`FusedHeadBank` stacks the
heads' weights once and replays the identical computation with the head
index folded into the batch dimension (:mod:`repro.nn.fused`): one im2col
and one stacked GEMM per conv layer, batch norm folded to a per-channel
affine, one padded GEMM for all classifiers.

The bank is a *derived* artifact: it copies weights at build time, so a
re-extracted expert must invalidate it (the serving tiers do this through
the same version listeners that drop their model caches;
:meth:`BranchedSpecialistNet.fused_bank` builds lazily per consolidated
model, and consolidation always sees current heads).  Numerically the bank
matches the per-head loop to float32 round-off (``allclose``), not bit
exactness — folding BN reorders a handful of multiplies.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..nn.fused import (
    FusedAffine,
    FusedBlock,
    FusedLinearBank,
    stack_affine,
    stack_linear,
)
from ..obs.arena import ARENA
from .wrn import WRNHead

__all__ = ["FusedHeadBank"]


class FusedHeadBank:
    """``n`` same-shape expert heads executed as one vectorized pass.

    Parameters
    ----------
    heads:
        The expert components, in concatenation order.  All heads must
        share conv/BN geometry (guaranteed for heads extracted from one
        pool config); class counts may differ.
    """

    def __init__(self, heads: Sequence[WRNHead]) -> None:
        if not heads:
            raise ValueError("a fused bank needs at least one head")
        depth = len(heads[0].groups)
        blocks_per_group = [len(g.blocks) for g in heads[0].groups]
        for head in heads[1:]:
            if len(head.groups) != depth or [
                len(g.blocks) for g in head.groups
            ] != blocks_per_group:
                raise ValueError("cannot stack heads with differing block structure")
        self.n_heads = len(heads)
        self._blocks: List[FusedBlock] = []
        for gi in range(depth):
            for bi in range(blocks_per_group[gi]):
                self._blocks.append(
                    FusedBlock([head.groups[gi].blocks[bi] for head in heads])
                )
        self._final_bn: FusedAffine = stack_affine([head.bn for head in heads])
        self._fc: FusedLinearBank = stack_linear([head.fc for head in heads])
        self.class_widths: Tuple[int, ...] = self._fc.widths
        self.num_classes = sum(self.class_widths)

    # ------------------------------------------------------------------
    def __call__(self, features: np.ndarray) -> np.ndarray:
        """Unified logits (N, Σ classes) from trunk features (N, C, H, W).

        Matches ``concat([head(features) for head in heads], axis=1)`` up
        to float32 round-off.
        """
        features = np.asarray(features, dtype=np.float32)
        if features.ndim != 4:
            raise ValueError(f"expected NCHW features, got shape {features.shape}")
        # one NCHW -> NHWC transpose at the boundary; everything after is
        # channels-last so GEMM outputs feed the next layer copy-free
        with ARENA.scope("heads"):
            h = np.ascontiguousarray(features.transpose(0, 2, 3, 1))[None]
            for block in self._blocks:
                h = block(h)
            h = self._final_bn(h, relu=True)
            feats = h.mean(axis=(2, 3))  # global average pool -> (n, N, C)
            return self._fc.concatenate(self._fc(feats))

    def logits_per_head(self, features: np.ndarray) -> List[np.ndarray]:
        """Per-head sub-logit blocks (diagnostics), in bank order."""
        unified = self(features)
        out, offset = [], 0
        for width in self.class_widths:
            out.append(unified[:, offset : offset + width])
            offset += width
        return out

    def nbytes(self) -> int:
        """Approximate resident size of the stacked weights."""
        total = self._final_bn.scale.nbytes + self._final_bn.shift.nbytes
        total += self._fc.weight.nbytes + self._fc.bias.nbytes
        return total + sum(block.nbytes() for block in self._blocks)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FusedHeadBank(heads={self.n_heads}, blocks={len(self._blocks)}, "
            f"classes={self.class_widths})"
        )
