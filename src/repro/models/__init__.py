"""Model zoo: wide residual networks and the PoE branched architecture."""

from .branched import BranchedSpecialistNet
from .flops import count_flops, count_params, profile
from .fused_head import FusedHeadBank
from .wrn import (
    BasicBlock,
    WideResNet,
    WRNGroup,
    WRNHead,
    WRNTrunk,
    scaled_channels,
    wrn_group_widths,
)
from .zoo import EXPERIMENT_ARCHS, PAPER_ARCHS, WRNConfig, build_wrn, get_config

__all__ = [
    "WideResNet",
    "WRNTrunk",
    "WRNHead",
    "WRNGroup",
    "BasicBlock",
    "BranchedSpecialistNet",
    "FusedHeadBank",
    "scaled_channels",
    "wrn_group_widths",
    "count_flops",
    "count_params",
    "profile",
    "WRNConfig",
    "PAPER_ARCHS",
    "EXPERIMENT_ARCHS",
    "build_wrn",
    "get_config",
]
