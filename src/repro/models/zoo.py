"""Architecture registry: paper-scale configs and experiment-scale configs.

``PAPER_ARCHS`` mirrors Table 1/2 of the paper exactly (for fidelity tests
of the parameter/FLOPs accounting).  ``EXPERIMENT_ARCHS`` are the scaled-down
counterparts actually trained on the numpy substrate — same family, same
(k_c, k_s) relationships, smaller depth/width/resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .wrn import WideResNet

__all__ = ["WRNConfig", "PAPER_ARCHS", "EXPERIMENT_ARCHS", "build_wrn", "get_config"]


@dataclass(frozen=True)
class WRNConfig:
    """A WRN-depth-(k_c, k_s) blueprint plus its intended input resolution."""

    depth: int
    k_c: float
    k_s: float
    num_classes: int
    image_size: int
    in_channels: int = 3

    @property
    def name(self) -> str:
        return f"WRN-{self.depth}-({self.k_c:g}, {self.k_s:g})"

    def build(
        self,
        num_classes: Optional[int] = None,
        library_level: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> WideResNet:
        return WideResNet(
            self.depth,
            self.k_c,
            self.k_s,
            num_classes if num_classes is not None else self.num_classes,
            library_level=library_level,
            in_channels=self.in_channels,
            rng=rng,
        )


# Paper §5.1 / Table 1-2: exact architectures of the original evaluation.
PAPER_ARCHS: Dict[str, WRNConfig] = {
    "cifar100/oracle": WRNConfig(40, 4, 4, 100, 32),
    "cifar100/library": WRNConfig(16, 1, 1, 100, 32),
    "cifar100/expert": WRNConfig(16, 1, 0.25, 5, 32),
    "tiny-imagenet/oracle": WRNConfig(16, 10, 10, 200, 32),
    "tiny-imagenet/library": WRNConfig(16, 2, 2, 200, 32),
    "tiny-imagenet/expert": WRNConfig(16, 2, 0.25, 5, 32),
}

# Scaled-down counterparts used by the experiments on the numpy substrate.
# Relationships preserved: oracle k = 4x library k; expert k_s = library k_s/4
# (CIFAR track) resp. /8 (Tiny track); library shares (k_c) with experts.
EXPERIMENT_ARCHS: Dict[str, WRNConfig] = {
    "synth-cifar/oracle": WRNConfig(10, 4, 4, 30, 8),
    "synth-cifar/library": WRNConfig(10, 1, 1, 30, 8),
    "synth-cifar/expert": WRNConfig(10, 1, 0.25, 3, 8),
    "synth-tiny/oracle": WRNConfig(10, 4, 4, 48, 8),
    "synth-tiny/library": WRNConfig(10, 2, 2, 48, 8),
    "synth-tiny/expert": WRNConfig(10, 2, 0.25, 4, 8),
}


def get_config(name: str) -> WRNConfig:
    """Look up a config from either registry by its full name."""
    if name in PAPER_ARCHS:
        return PAPER_ARCHS[name]
    if name in EXPERIMENT_ARCHS:
        return EXPERIMENT_ARCHS[name]
    known = sorted(PAPER_ARCHS) + sorted(EXPERIMENT_ARCHS)
    raise KeyError(f"unknown architecture {name!r}; known: {known}")


def build_wrn(
    name: str,
    num_classes: Optional[int] = None,
    library_level: int = 3,
    seed: Optional[int] = None,
) -> WideResNet:
    """Instantiate a registered architecture (optionally reseeded/re-classed)."""
    rng = np.random.default_rng(seed)
    return get_config(name).build(num_classes=num_classes, library_level=library_level, rng=rng)
