"""Analytic parameter and FLOPs accounting for the model zoo.

The paper reports model cost as multiply-accumulate counts (its Table 1
gives 1.30B for WRN-40-(4,4) on 32×32 inputs, which matches MAC counting);
we follow the same convention.  ``count_flops`` walks the module tree with a
shape simulator, so it needs no forward pass and works for any architecture
built from the known layer/zoo types.
"""

from __future__ import annotations

from typing import Tuple

from ..nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from ..tensor.conv import conv_output_size
from .branched import BranchedSpecialistNet
from .wrn import BasicBlock, WideResNet, WRNGroup, WRNHead, WRNTrunk

__all__ = ["count_params", "count_flops", "profile"]

Shape = Tuple[int, ...]


def count_params(module: Module) -> int:
    """Number of scalar parameters in a module tree."""
    return module.num_parameters()


def profile(module: Module, input_shape: Shape) -> Tuple[int, Shape]:
    """Return ``(macs, output_shape)`` for one sample of ``input_shape``.

    ``input_shape`` excludes the batch axis: ``(C, H, W)`` for conv nets.
    """
    if isinstance(module, Conv2d):
        c, h, w = input_shape
        oh = conv_output_size(h, module.kernel_size, module.stride, module.padding)
        ow = conv_output_size(w, module.kernel_size, module.stride, module.padding)
        macs = module.out_channels * oh * ow * module.in_channels * module.kernel_size ** 2
        if module.bias is not None:
            macs += module.out_channels * oh * ow
        return macs, (module.out_channels, oh, ow)
    if isinstance(module, Linear):
        flat = 1
        for d in input_shape:
            flat *= d
        if flat != module.in_features:
            raise ValueError(
                f"Linear expects {module.in_features} features, got shape {input_shape}"
            )
        macs = module.in_features * module.out_features
        if module.bias is not None:
            macs += module.out_features
        return macs, (module.out_features,)
    if isinstance(module, BatchNorm2d):
        c, h, w = input_shape
        return 2 * c * h * w, input_shape
    if isinstance(module, (ReLU, Identity, Dropout)):
        return 0, input_shape
    if isinstance(module, Flatten):
        flat = 1
        for d in input_shape:
            flat *= d
        return 0, (flat,)
    if isinstance(module, (AvgPool2d, MaxPool2d)):
        c, h, w = input_shape
        stride = module.stride or module.kernel_size
        oh = conv_output_size(h, module.kernel_size, stride, 0)
        ow = conv_output_size(w, module.kernel_size, stride, 0)
        return c * oh * ow * module.kernel_size ** 2, (c, oh, ow)
    if isinstance(module, GlobalAvgPool2d):
        c, h, w = input_shape
        return c * h * w, (c,)
    if isinstance(module, Sequential):
        total = 0
        shape = input_shape
        for child in module:
            macs, shape = profile(child, shape)
            total += macs
        return total, shape
    if isinstance(module, BasicBlock):
        total, shape = profile(module.bn1, input_shape)
        macs, shape1 = profile(module.conv1, input_shape)
        total += macs
        macs, _ = profile(module.bn2, shape1)
        total += macs
        macs, out_shape = profile(module.conv2, shape1)
        total += macs
        if module.needs_projection:
            macs, _ = profile(module.shortcut, input_shape)
            total += macs
        c, h, w = out_shape
        total += c * h * w  # residual addition
        return total, out_shape
    if isinstance(module, WRNGroup):
        total = 0
        shape = input_shape
        for block in module.blocks:
            macs, shape = profile(block, shape)
            total += macs
        return total, shape
    if isinstance(module, WRNTrunk):
        total, shape = profile(module.conv1, input_shape)
        for group in module.groups:
            macs, shape = profile(group, shape)
            total += macs
        return total, shape
    if isinstance(module, WRNHead):
        total = 0
        shape = input_shape
        for group in module.groups:
            macs, shape = profile(group, shape)
            total += macs
        macs, shape = profile(module.bn, shape)
        total += macs
        macs, shape = profile(module.pool, shape)
        total += macs
        macs, shape = profile(module.fc, shape)
        total += macs
        return total, shape
    if isinstance(module, WideResNet):
        trunk_macs, shape = profile(module.trunk, input_shape)
        head_macs, out_shape = profile(module.head, shape)
        return trunk_macs + head_macs, out_shape
    if isinstance(module, BranchedSpecialistNet):
        total, shape = profile(module.trunk, input_shape)
        classes = 0
        for head in module.heads:
            macs, head_out = profile(head, shape)
            total += macs
            classes += head_out[0]
        return total, (classes,)
    raise TypeError(f"don't know how to profile {type(module).__name__}")


def count_flops(module: Module, input_shape: Shape) -> int:
    """Total MACs for one forward pass of a single sample."""
    macs, _ = profile(module, input_shape)
    return macs
