"""Wide residual networks with the paper's fine-grained widening split.

The paper (§5.1) extends the basic WRN-l-k of Zagoruyko & Komodakis into
``WRN-l-(k_c, k_s)``: the widths of conv2/conv3 are controlled by a common
factor ``k_c`` (16·k_c and 32·k_c channels) while conv4's width is controlled
independently by ``k_s`` (64·k_s channels).  Shrinking only ``k_s`` (e.g. to
0.25) is how PoE makes each *expert* tiny while the shared library keeps its
representational width.

The network is explicitly split into

* :class:`WRNTrunk` — conv1 up to the library level ℓ (default: through
  conv3).  This is the **library component** shared by all experts.
* :class:`WRNHead` — the remaining groups plus BN/ReLU, global average
  pooling and the classifier.  This is the per-expert **expert component**.

``WideResNet = WRNTrunk ∘ WRNHead`` so a generic model, the library student,
and every expert all share one code path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    ModuleList,
)
from ..tensor import Tensor
from ..tensor import functional as F

__all__ = [
    "scaled_channels",
    "BasicBlock",
    "WRNGroup",
    "WRNTrunk",
    "WRNHead",
    "WideResNet",
    "wrn_group_widths",
]


def scaled_channels(base: int, k: float) -> int:
    """Channel count ``base · k`` rounded to at least one channel."""
    return max(1, int(round(base * k)))


def wrn_group_widths(k_c: float, k_s: float) -> Tuple[int, int, int, int]:
    """Widths of (conv1, conv2, conv3, conv4) for a WRN-l-(k_c, k_s)."""
    return (
        16,
        scaled_channels(16, k_c),
        scaled_channels(32, k_c),
        scaled_channels(64, k_s),
    )


class BasicBlock(Module):
    """Pre-activation WRN basic block (BN-ReLU-conv ×2 + shortcut)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.bn1 = BatchNorm2d(in_channels)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.needs_projection = stride != 1 or in_channels != out_channels
        if self.needs_projection:
            self.shortcut = Conv2d(in_channels, out_channels, 1, stride=stride, padding=0, rng=rng)
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        pre = F.relu(self.bn1(x))
        residual = self.shortcut(pre) if self.needs_projection else x
        out = self.conv1(pre)
        out = self.conv2(F.relu(self.bn2(out)))
        return out + residual


class WRNGroup(Module):
    """A stack of ``n`` basic blocks; the first block carries the stride."""

    def __init__(
        self,
        n_blocks: int,
        in_channels: int,
        out_channels: int,
        stride: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        blocks: List[BasicBlock] = []
        for i in range(n_blocks):
            blocks.append(
                BasicBlock(
                    in_channels if i == 0 else out_channels,
                    out_channels,
                    stride=stride if i == 0 else 1,
                    rng=rng,
                )
            )
        self.blocks = ModuleList(blocks)
        self.out_channels = out_channels

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return x


def _blocks_per_group(depth: int) -> int:
    if (depth - 4) % 6 != 0 or depth < 10:
        raise ValueError(f"WRN depth must be 6n+4 with n>=1, got {depth}")
    return (depth - 4) // 6


class WRNTrunk(Module):
    """conv1 plus the convolution groups up to ``library_level``.

    ``library_level`` is the paper's ℓ hyperparameter: the number of
    convolution groups (counting conv1) kept in the shared library.  The
    default 3 matches the experiments (conv1-conv3 shared, conv4 per expert).
    """

    def __init__(
        self,
        depth: int,
        k_c: float,
        k_s: float,
        library_level: int = 3,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if library_level not in (2, 3):
            raise ValueError("library_level must be 2 (conv1-conv2) or 3 (conv1-conv3)")
        n = _blocks_per_group(depth)
        widths = wrn_group_widths(k_c, k_s)
        self.depth = depth
        self.k_c = k_c
        self.k_s = k_s
        self.library_level = library_level
        self.conv1 = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, rng=rng)
        groups: List[WRNGroup] = []
        strides = (1, 2, 2)  # conv2, conv3, conv4
        prev = widths[0]
        for gi in range(1, library_level):
            group = WRNGroup(n, prev, widths[gi], strides[gi - 1], rng=rng)
            groups.append(group)
            prev = widths[gi]
        self.groups = ModuleList(groups)
        self.out_channels = prev

    def forward(self, x: Tensor) -> Tensor:
        h = self.conv1(x)
        for group in self.groups:
            h = group(h)
        return h


class WRNHead(Module):
    """The expert component: remaining groups + BN/ReLU + GAP + classifier.

    For ``library_level=3`` this is exactly the conv4 group the paper uses
    as the per-expert component, with ``k_s`` controlling its width.
    """

    def __init__(
        self,
        depth: int,
        k_c: float,
        k_s: float,
        num_classes: int,
        library_level: int = 3,
        in_channels: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        n = _blocks_per_group(depth)
        widths = wrn_group_widths(k_c, k_s)
        strides = (1, 2, 2)
        prev = in_channels if in_channels is not None else widths[library_level - 1]
        groups: List[WRNGroup] = []
        for gi in range(library_level, 4):
            group = WRNGroup(n, prev, widths[gi], strides[gi - 1], rng=rng)
            groups.append(group)
            prev = widths[gi]
        self.groups = ModuleList(groups)
        self.bn = BatchNorm2d(prev)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(prev, num_classes, rng=rng)
        self.num_classes = num_classes
        self.out_channels = prev

    def forward(self, h: Tensor) -> Tensor:
        for group in self.groups:
            h = group(h)
        h = F.relu(self.bn(h))
        h = self.pool(h)
        return self.fc(h)


class WideResNet(Module):
    """``WRN-depth-(k_c, k_s)`` classifier = trunk ∘ head.

    Used for the oracle (large k), the library student (small k) and — with
    ``num_classes = |H_i|`` and tiny ``k_s`` — each expert's standalone
    specialized model.
    """

    def __init__(
        self,
        depth: int,
        k_c: float,
        k_s: float,
        num_classes: int,
        library_level: int = 3,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.depth = depth
        self.k_c = k_c
        self.k_s = k_s
        self.num_classes = num_classes
        self.library_level = library_level
        self.trunk = WRNTrunk(depth, k_c, k_s, library_level, in_channels, rng=rng)
        self.head = WRNHead(depth, k_c, k_s, num_classes, library_level, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.trunk(x))

    def features(self, x: Tensor) -> Tensor:
        """Library-level feature map (input to the expert component)."""
        return self.trunk(x)

    def arch_name(self) -> str:
        return f"WRN-{self.depth}-({self.k_c:g}, {self.k_s:g})"
