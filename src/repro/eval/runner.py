"""End-to-end experiment runner: builds every table/figure artifact.

Usage::

    python -m repro.eval.runner [--fast] [--tracks synth-cifar,synth-tiny]

Results land in the artifact store (``.artifacts/`` or ``$REPRO_ARTIFACTS``)
and are reused by the pytest benchmarks and by EXPERIMENTS.md generation.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional

from ..core import ExpertStore
from .artifacts import ArtifactStore
from .experiments import TrackConfig, get_track
from .service import (
    ablation_table,
    consolidation_times,
    learning_curves,
    service_table,
)
from .specialization import confidence_figure, specialization_table

__all__ = ["build_track", "build_all", "main"]


def build_track(track: TrackConfig, store: ArtifactStore, verbose: bool = True) -> Dict:
    """Run every experiment of one track; returns the summary payload."""

    def log(msg: str) -> None:
        if verbose:
            print(f"[{track.name}] {msg}", flush=True)

    started = time.perf_counter()
    data = store.dataset(track)
    log(f"dataset: {data.num_classes} classes, {len(data.train)} train images")
    oracle_model, oracle_meta = store.oracle(track)
    log(f"oracle ready: acc={oracle_meta['test_accuracy']:.3f}")
    pool = store.pool(track)
    log(f"pool ready: experts={list(pool.expert_names())}")

    summary: Dict = {"track": track.name, "oracle": oracle_meta}

    # Table 1: oracle vs library model.
    library_student = pool.library_student
    if library_student is not None:
        from .metrics import accuracy
        from ..models import count_flops, count_params

        summary["table1"] = {
            "oracle": oracle_meta,
            "library": {
                "test_accuracy": accuracy(library_student, data.test),
                "params": count_params(library_student),
                "flops": count_flops(library_student, (3, track.image_size, track.image_size)),
                "arch": library_student.arch_name(),
            },
        }
    log("table 1 done")

    summary["table2"] = specialization_table(track, store)
    log("table 2 done")
    summary["figure5"] = confidence_figure(track, store)
    log("figure 5 done")
    summary["table3"] = service_table(track, store)
    log("table 3 done")

    expert_store = ExpertStore(os.path.join(store.root, "models", track.cache_key(), "pool"))
    summary["table4"] = expert_store.volume_report(pool, oracle_model).as_dict()
    log("table 4 done")

    summary["table5"] = ablation_table(track, store)
    log("table 5 done")
    summary["figure6"] = {
        method: [list(p) for p in points]
        for method, points in learning_curves(track, store).items()
    }
    log("figure 6 done")
    summary["figure7"] = consolidation_times(track, store)
    log("figure 7 done")

    summary["seconds"] = time.perf_counter() - started
    path = os.path.join(store.root, "results", track.cache_key(), "summary.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(summary, fh, indent=2, default=float)
    log(f"track complete in {summary['seconds']:.0f}s -> {path}")
    return summary


def build_all(
    tracks: Optional[List[str]] = None,
    fast: Optional[bool] = None,
    root: Optional[str] = None,
) -> Dict[str, Dict]:
    """Build artifacts for the requested tracks (default: both)."""
    store = ArtifactStore(root)
    names = tracks or ["synth-cifar", "synth-tiny"]
    return {name: build_track(get_track(name, fast), store) for name in names}


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="reduced budgets (CI)")
    parser.add_argument(
        "--tracks",
        default="synth-cifar,synth-tiny",
        help="comma-separated track names",
    )
    parser.add_argument("--root", default=None, help="artifact store root")
    args = parser.parse_args(argv)
    build_all(args.tracks.split(","), fast=args.fast or None, root=args.root)


if __name__ == "__main__":
    main()
