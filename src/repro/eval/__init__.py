"""Evaluation harness: metrics, experiment tracks, artifact cache, runners."""

from .artifacts import ArtifactStore, default_artifact_root
from .experiments import (
    TrackConfig,
    cifar_track,
    get_track,
    is_fast_mode,
    select_combos,
    tiny_track,
)
from .metrics import (
    accuracy,
    accuracy_from_logits,
    specialized_accuracy,
    task_specific_accuracy,
)
from .service import (
    ABLATION_VARIANTS,
    SERVICE_METHODS,
    ablation_table,
    consolidation_times,
    learning_curves,
    run_service_method,
    service_table,
)
from .specialization import (
    SPECIALIZATION_METHODS,
    confidence_figure,
    run_specialization,
    specialization_table,
)
from .tables import format_count, render_curves, render_histogram, render_table

__all__ = [
    "accuracy",
    "accuracy_from_logits",
    "task_specific_accuracy",
    "specialized_accuracy",
    "TrackConfig",
    "cifar_track",
    "tiny_track",
    "get_track",
    "select_combos",
    "is_fast_mode",
    "ArtifactStore",
    "default_artifact_root",
    "SPECIALIZATION_METHODS",
    "run_specialization",
    "specialization_table",
    "confidence_figure",
    "SERVICE_METHODS",
    "ABLATION_VARIANTS",
    "run_service_method",
    "service_table",
    "ablation_table",
    "learning_curves",
    "consolidation_times",
    "format_count",
    "render_table",
    "render_histogram",
    "render_curves",
]
