"""Accuracy metrics, including the paper's *task-specific accuracy*.

§5.2: generic models (oracle, KD students) are never scored on overall
accuracy against specialists; instead their probability values are compared
*locally* — only the columns of the target task's classes are considered,
and the argmax within the task is the prediction.  Specialized models are
scored with normal accuracy on the task's (label-remapped) test data.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..data.dataset import ArrayDataset, label_remap
from ..data.hierarchy import CompositeTask, PrimitiveTask
from ..distill.caches import batched_forward
from ..nn import Module

__all__ = [
    "accuracy_from_logits",
    "accuracy",
    "task_specific_accuracy",
    "specialized_accuracy",
]

TaskLike = Union[PrimitiveTask, CompositeTask]


def accuracy_from_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax equals the label."""
    return float((logits.argmax(axis=1) == labels).mean())


def accuracy(
    model: Module, dataset: ArrayDataset, batch_size: int = 512
) -> float:
    """Plain top-1 accuracy of a model whose outputs match the labels."""
    logits = batched_forward(model, dataset.images, batch_size)
    return accuracy_from_logits(logits, dataset.labels)


def task_specific_accuracy(
    model: Module,
    dataset: ArrayDataset,
    task: TaskLike,
    batch_size: int = 512,
) -> float:
    """Task-specific accuracy of a *generic* model (paper §5.2).

    ``dataset`` carries global labels; only samples of the task's classes
    are scored, predictions are restricted to the task's columns of the
    generic model's output.
    """
    classes = np.asarray(task.classes, dtype=np.int64)
    mask = np.isin(dataset.labels, classes)
    if not mask.any():
        raise ValueError("dataset contains no samples of the task's classes")
    images = dataset.images[mask]
    labels = dataset.labels[mask]
    mapping = label_remap(task)
    local_labels = np.asarray([mapping[int(y)] for y in labels], dtype=np.int64)
    logits = batched_forward(model, images, batch_size)[:, classes]
    return accuracy_from_logits(logits, local_labels)


def specialized_accuracy(
    model: Module,
    dataset: ArrayDataset,
    task: TaskLike,
    batch_size: int = 512,
) -> float:
    """Normal accuracy of a specialized model over the task's test samples.

    The model outputs task-local logits; labels are remapped accordingly.
    """
    classes = np.asarray(task.classes, dtype=np.int64)
    mask = np.isin(dataset.labels, classes)
    if not mask.any():
        raise ValueError("dataset contains no samples of the task's classes")
    images = dataset.images[mask]
    labels = dataset.labels[mask]
    mapping = label_remap(task)
    local_labels = np.asarray([mapping[int(y)] for y in labels], dtype=np.int64)
    logits = batched_forward(model, images, batch_size)
    if logits.shape[1] != len(classes):
        raise ValueError(
            f"model outputs {logits.shape[1]} classes but task has {len(classes)}"
        )
    return accuracy_from_logits(logits, local_labels)
