"""EXPERIMENTS.md generator: paper-reported vs measured, per table/figure.

Usage::

    python -m repro.eval.report [--root .artifacts] [--out EXPERIMENTS.md]

Reads the ``summary.json`` written by :mod:`repro.eval.runner` for each
track and renders a markdown report juxtaposing the paper's numbers with
the reproduction's, plus a verdict on whether each *shape* holds.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Optional

from .artifacts import default_artifact_root
from .experiments import get_track

__all__ = ["generate_report", "main"]

# ----------------------------------------------------------------------
# Paper-reported numbers (verbatim from the SIGMOD'21 paper).
# ----------------------------------------------------------------------
PAPER = {
    "table1": {
        "cifar": {"oracle": (76.70, "1.30B", "8.97M"), "library": (63.84, "0.03B", "0.18M")},
        "tiny": {"oracle": (64.49, "2.42B", "17.24M"), "library": (56.96, "0.10B", "0.72M")},
    },
    "table2": {
        "cifar": {"oracle": 85.80, "kd": 62.50, "scratch": 74.20, "transfer": 78.33, "ckd": 82.40},
        "tiny": {"oracle": 79.68, "kd": 57.62, "scratch": 66.10, "transfer": 74.21, "ckd": 78.72},
    },
    "table3": {
        "cifar": {
            "oracle": [84.25, 82.94, 81.82, 80.82],
            "kd": [67.61, 71.29, 72.32, 72.43],
            "scratch": [72.65, 71.47, 70.97, 70.21],
            "transfer": [77.82, 77.50, 74.54, 73.36],
            "sd+scratch": [57.06, 48.60, 43.08, 39.15],
            "uhc+scratch": [57.57, 49.73, 44.49, 40.83],
            "sd+ckd": [73.94, 71.28, 69.46, 67.77],
            "uhc+ckd": [73.87, 71.56, 70.49, 68.84],
            "ckd": [78.55, 77.00, 75.70, 74.27],
            "poe": [79.03, 76.41, 74.18, 72.22],
        },
        "tiny": {
            "oracle": [77.30, 75.65, 74.31, 73.18],
            "kd": [60.54, 62.24, 62.77, 62.80],
            "scratch": [64.23, 63.65, 62.90, 63.02],
            "transfer": [71.18, 70.14, 68.71, 67.49],
            "sd+scratch": [48.38, 38.60, 33.39, 29.49],
            "uhc+scratch": [51.81, 43.54, 38.42, 34.66],
            "sd+ckd": [64.44, 60.33, 57.42, 54.93],
            "uhc+ckd": [67.71, 65.43, 63.34, 61.85],
            "ckd": [74.19, 72.90, 71.20, 70.14],
            "poe": [74.68, 71.84, 69.59, 67.71],
        },
    },
    "table4": {
        "cifar": {"oracle": "34.3MB", "library": "177KB", "expert": "54.3KB", "all": "1.23MB", "est": ">=54.30GB"},
        "tiny": {"oracle": "65.8MB", "library": "656KB", "expert": "74.9KB", "all": "3.20MB", "est": ">=1198.40TB"},
    },
    "table5": {
        "cifar": {
            "soft": [78.17, 75.61, 73.53, 71.76],
            "scale": [71.46, 68.44, 65.85, 63.59],
            "both": [79.03, 76.41, 74.18, 72.22],
        },
        "tiny": {
            "soft": [73.25, 69.55, 66.72, 64.44],
            "scale": [68.95, 66.12, 63.90, 62.08],
            "both": [74.68, 71.84, 69.59, 67.71],
        },
    },
}

N_Q = (2, 3, 4, 5)


def _load_summary(root: str, track_name: str) -> Optional[Dict]:
    track = get_track(track_name, fast=False)
    path = os.path.join(root, "results", track.cache_key(), "summary.json")
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if n < 1024:
            return f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}PB"


def _verdict(flag: bool) -> str:
    return "holds" if flag else "**DEVIATES**"


def _table3_series(summary: Dict, method: str) -> List[float]:
    rows = [r for r in summary["table3"] if r["method"] == method]
    per_n = {r["n_q"]: 100 * r["accuracy_mean"] for r in rows}
    return [per_n.get(n, float("nan")) for n in N_Q]


def _render_track(track_name: str, paper_key: str, summary: Dict) -> List[str]:
    lines: List[str] = [f"## Track `{track_name}`", ""]
    oracle = summary["oracle"]
    lines.append(
        f"Oracle: `{oracle['arch']}`, test accuracy "
        f"{100 * oracle['test_accuracy']:.2f}%, trained once in "
        f"{oracle['seconds']:.0f}s (cached thereafter)."
    )
    lines.append("")

    # ---------------- Table 1 ----------------
    p1 = PAPER["table1"][paper_key]
    t1 = summary.get("table1", {})
    lines += ["### Table 1 — oracle vs library student", ""]
    lines += [
        "| Model | Paper acc | Measured acc | Paper params | Measured params |",
        "|---|---|---|---|---|",
    ]
    lib = t1.get("library", {})
    lines.append(
        f"| Oracle | {p1['oracle'][0]:.2f} | {100 * oracle['test_accuracy']:.2f} "
        f"| {p1['oracle'][2]} | {oracle['params'] / 1e6:.2f}M |"
    )
    if lib:
        lines.append(
            f"| Library | {p1['library'][0]:.2f} | {100 * lib['test_accuracy']:.2f} "
            f"| {p1['library'][2]} | {lib['params'] / 1e6:.3f}M |"
        )
        shape1 = lib["test_accuracy"] < oracle["test_accuracy"] and lib["params"] < oracle["params"] / 5
        lines.append("")
        lines.append(
            f"Shape (library much smaller, somewhat less accurate): {_verdict(shape1)}."
        )
    lines.append("")

    # ---------------- Table 2 ----------------
    p2 = PAPER["table2"][paper_key]
    t2 = {r["method"]: r for r in summary["table2"]}
    lines += ["### Table 2 — model specialization (mean±std over 6 primitive tasks)", ""]
    lines += ["| Method | Paper | Measured |", "|---|---|---|"]
    for method in ("oracle", "kd", "scratch", "transfer", "ckd"):
        r = t2[method]
        lines.append(
            f"| {method} | {p2[method]:.2f} | "
            f"{100 * r['accuracy_mean']:.2f}±{100 * r['accuracy_std']:.1f} |"
        )
    order = (
        t2["ckd"]["accuracy_mean"] > t2["transfer"]["accuracy_mean"]
        > t2["scratch"]["accuracy_mean"]
    ) and t2["ckd"]["accuracy_mean"] > t2["kd"]["accuracy_mean"]
    lines += [
        "",
        f"Shape (CKD > Transfer > Scratch and CKD > KD; oracle on top): {_verdict(order)}.",
        f"Specialist/oracle params ratio: 1/{t2['oracle']['params'] / t2['ckd']['params']:.0f} "
        f"(paper: ~1/150 CIFAR, ~1/96 Tiny at full scale).",
        "",
    ]

    # ---------------- Figure 5 ----------------
    f5 = summary["figure5"]
    lines += ["### Figure 5 — OOD confidence of specialists", ""]
    lines += [
        "| Method | Paper mode bin | Measured mode bin | Measured mean conf | P(conf>0.9) |",
        "|---|---|---|---|---|",
    ]
    paper_modes = {"scratch": ">=0.9", "transfer": ">=0.9", "ckd": "0.3-0.4"}
    for method in ("scratch", "transfer", "ckd"):
        rec = f5[method]
        lines.append(
            f"| {method} | {paper_modes[method]} | "
            f"{rec['mode_bin'][0]:.1f}-{rec['mode_bin'][1]:.1f} | "
            f"{rec['mean']:.2f} | {rec['overconfident_rate']:.2f} |"
        )
    shape5 = (
        f5["ckd"]["mean"] < f5["scratch"]["mean"]
        and f5["ckd"]["mean"] < f5["transfer"]["mean"]
    )
    lines += ["", f"Shape (CKD least confident on OOD inputs): {_verdict(shape5)}.", ""]

    # ---------------- Table 3 ----------------
    p3 = PAPER["table3"][paper_key]
    lines += ["### Table 3 — consolidation accuracy by n(Q) (paper / measured)", ""]
    lines += [
        "| Method | n(Q)=2 | n(Q)=3 | n(Q)=4 | n(Q)=5 |",
        "|---|---|---|---|---|",
    ]
    measured3 = {}
    for method in p3:
        series = _table3_series(summary, method)
        measured3[method] = series
        cells = " | ".join(
            f"{p:.1f} / {m:.1f}" for p, m in zip(p3[method], series)
        )
        lines.append(f"| {method} | {cells} |")
    shape3a = all(
        measured3["poe"][i] > measured3["sd+scratch"][i]
        and measured3["poe"][i] > measured3["uhc+scratch"][i]
        for i in range(4)
    )
    shape3b = all(
        measured3["sd+ckd"][i] > measured3["sd+scratch"][i]
        and measured3["uhc+ckd"][i] > measured3["uhc+scratch"][i]
        for i in range(4)
    )
    import numpy as np

    shape3c = np.mean(measured3["ckd"]) >= np.mean(measured3["poe"]) - 2.0
    lines += [
        "",
        f"Shape (PoE ≫ SD/UHC+Scratch at every n(Q)): {_verdict(shape3a)}.",
        f"Shape (merging CKD experts ≫ merging Scratch experts): {_verdict(shape3b)}.",
        f"Shape (CKD the best trained specialist, PoE close behind): {_verdict(bool(shape3c))}.",
        "",
    ]

    # ---------------- Table 4 ----------------
    p4 = PAPER["table4"][paper_key]
    t4 = summary["table4"]
    lines += ["### Table 4 — storage volumes", ""]
    lines += [
        "| Quantity | Paper | Measured |",
        "|---|---|---|",
        f"| Oracle | {p4['oracle']} | {_fmt_bytes(t4['oracle_bytes'])} |",
        f"| Library | {p4['library']} | {_fmt_bytes(t4['library_bytes'])} |",
        f"| Expert (avg) | {p4['expert']} | {_fmt_bytes(t4['mean_expert_bytes'])} |",
        f"| PoE total | {p4['all']} | {_fmt_bytes(t4['pool_bytes'])} |",
        f"| All 2^n specialists | {p4['est']} | >= {_fmt_bytes(t4['all_specialists_bytes'])} |",
        "",
        f"Oracle/PoE ratio: {t4['oracle_to_pool_ratio']:.1f}x (paper: 20-30x). "
        f"Shape (pool ≪ oracle ≪ all specialists): "
        f"{_verdict(t4['pool_bytes'] < t4['oracle_bytes'])}.",
        "",
    ]

    # ---------------- Table 5 ----------------
    p5 = PAPER["table5"][paper_key]
    t5 = {}
    for row in summary["table5"]:
        t5.setdefault(row["method"], {})[row["n_q"]] = 100 * row["accuracy_mean"]
    name_map = {"soft": "poe-soft", "scale": "poe-scale", "both": "poe"}
    lines += ["### Table 5 — L_soft / L_scale ablation (paper / measured)", ""]
    lines += ["| Variant | n(Q)=2 | n(Q)=3 | n(Q)=4 | n(Q)=5 |", "|---|---|---|---|---|"]
    for label, key in name_map.items():
        cells = " | ".join(
            f"{p:.1f} / {t5[key][n]:.1f}" for p, n in zip(p5[label], N_Q)
        )
        lines.append(f"| {label} | {cells} |")
    mean = lambda key: np.mean([t5[key][n] for n in N_Q])
    shape5b = mean("poe") >= mean("poe-soft") - 1.0 and mean("poe") >= mean("poe-scale") - 1.0
    order5 = mean("poe-soft") > mean("poe-scale")
    lines += [
        "",
        f"Shape (combined loss beats either term alone): {_verdict(bool(shape5b))}.",
        f"Secondary ordering (paper: soft-only > scale-only): {_verdict(bool(order5))} "
        f"— a saturated oracle makes raw-logit regression stronger on this substrate.",
        "",
    ]

    # ---------------- Figures 6-7 ----------------
    f6 = summary["figure6"]
    lines += ["### Figure 6 — learning curves at n(Q)=5", ""]
    lines += ["| Method | Best acc | Wall-clock to best |", "|---|---|---|"]
    for method, points in f6.items():
        if not points:
            continue
        best = max(acc for _, acc in points)
        t_best = min(t for t, acc in points if acc >= best - 1e-9)
        lines.append(f"| {method} | {100 * best:.1f} | {t_best:.2f}s |")
    poe_pts = f6.get("poe", [])
    shape6 = bool(poe_pts) and poe_pts[0][0] < 0.05
    lines += [
        "",
        f"Shape (PoE reaches its accuracy at ~0 s; training methods pay "
        f"seconds-to-minutes — paper: 50-250 s on GPU): {_verdict(shape6)}.",
        "",
    ]

    f7 = summary["figure7"]
    per_method: Dict[str, Dict[int, float]] = {}
    for row in f7:
        per_method.setdefault(row["method"], {})[row["n_q"]] = row["time_to_best_mean"]
    lines += ["### Figure 7 — time to best accuracy vs n(Q)", ""]
    lines += ["| Method | n(Q)=2 | n(Q)=3 | n(Q)=4 | n(Q)=5 |", "|---|---|---|---|---|"]
    for method, series in per_method.items():
        cells = " | ".join(f"{series[n]:.2f}s" for n in N_Q)
        lines.append(f"| {method} | {cells} |")
    poe_flat = all(per_method["poe"][n] < 0.05 for n in N_Q)
    lines += [
        "",
        f"Shape (PoE flat at ~0 while every training method grows/stays "
        f"orders of magnitude slower): {_verdict(poe_flat)}.",
        "",
    ]
    return lines


HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in the evaluation (§5) of
*Pool of Experts* (Kim & Choi, SIGMOD 2021), on the scaled-down numpy
substrate described in DESIGN.md §2.

**How to read this file.** Absolute numbers are *not* expected to match:
the paper trains WRN-40/WRN-16 on CIFAR-100 / Tiny-ImageNet with a GPU;
this reproduction trains scaled-down WRNs on synthetic 8×8 hierarchical
images on CPU.  What must match — and what each section verdicts — are
the paper's **shapes**: method orderings, who-wins-where, size ratios and
the train-free property.  Wall-clock numbers are CPU seconds here vs GPU
seconds in the paper; only relative ordering is meaningful.

Regenerate with:

```
python -m repro.eval.runner    # build artifacts (~15 min, cached)
python -m repro.eval.report    # rewrite this file
```

**Known deviations.** (1) On the synthetic substrate the KD baseline can
land *above* Scratch in Table 2 (the paper has the reverse): our tiny
generic student is less capacity-starved on 8×8 synthetic classes than a
WRN-16-(1,0.25) on real CIFAR-100, while Scratch suffers the same
small-task-data penalty as in the paper.  The decisive orderings — CKD
best specialist, close to the oracle; KD clearly below CKD — hold.
(2) The paper averages Table 3/5 over *all* task combinations; we
subsample combinations per n(Q) (documented in each record) to keep the
CPU budget tractable.  (3) Wall-clock magnitudes are CPU-seconds on 8×8
inputs versus GPU-seconds on 32×32; Figures 6-7 compare shapes only.
"""


def generate_report(root: Optional[str] = None, out: str = "EXPERIMENTS.md") -> str:
    root = root or default_artifact_root()
    lines: List[str] = [HEADER]
    for track_name, paper_key in (("synth-cifar", "cifar"), ("synth-tiny", "tiny")):
        summary = _load_summary(root, track_name)
        if summary is None:
            lines.append(
                f"## Track `{track_name}`\n\n*(artifacts not built yet — run "
                f"`python -m repro.eval.runner`)*\n"
            )
            continue
        lines += _render_track(track_name, paper_key, summary)
    text = "\n".join(lines)
    with open(out, "w") as fh:
        fh.write(text + "\n")
    return text


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    generate_report(args.root, args.out)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
