"""Table 3-5 + Figure 6-7 runners: model consolidation experiments (§5.3).

For a queried composite task ``Q`` (a tuple of primitive task names), build
``M(Q)`` with every compared method and record accuracy, model cost, the
wall-clock learning curve and time-to-best-accuracy:

* **oracle**       — task-specific accuracy of the oracle itself.
* **kd**           — oracle's entire knowledge -> ``WRN-(k_c, 0.25·n(Q))``
  generic student (task-specific accuracy).
* **scratch**      — train ``M(Q)`` from scratch on Q's data.
* **transfer**     — frozen library + wide head on Q's data.
* **ckd**          — frozen library + wide head by conditional distillation.
* **sd+scratch**, **uhc+scratch** — merge per-primitive Scratch teachers.
* **sd+ckd**, **uhc+ckd**         — merge the pool's CKD experts.
* **poe**          — train-free consolidation from the pool (ours).

Ablation variants (Table 5): ``poe-soft``, ``poe-scale``, ``poe-l2``
consolidate pools whose experts were extracted with an ablated CKD loss.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..data import task_subset
from ..distill import (
    batched_forward,
    distill_ckd_head,
    merge_sd,
    merge_uhc,
    train_scratch,
    train_transfer,
)
from ..models import BranchedSpecialistNet, WideResNet, WRNHead, count_flops, count_params
from .artifacts import ArtifactStore
from .experiments import TrackConfig, select_combos
from .metrics import (
    accuracy_from_logits,
    specialized_accuracy,
    task_specific_accuracy,
)

__all__ = [
    "SERVICE_METHODS",
    "ABLATION_VARIANTS",
    "run_service_method",
    "service_table",
    "ablation_table",
    "learning_curves",
    "consolidation_times",
]

SERVICE_METHODS = (
    "oracle",
    "kd",
    "scratch",
    "transfer",
    "sd+scratch",
    "uhc+scratch",
    "sd+ckd",
    "uhc+ckd",
    "ckd",
    "poe",
)

ABLATION_VARIANTS = ("soft", "scale", "both")


def _combo_key(combo: Sequence[str]) -> str:
    return "+".join(combo)


def _history_payload(history) -> Dict:
    return {
        "train_seconds": history.total_seconds,
        "time_to_best": history.time_to_best(tolerance=0.005),
        "curve": history.curve(),
        "final_accuracy": history.final_accuracy,
        "best_accuracy": history.best_accuracy,
    }


def run_service_method(
    track: TrackConfig,
    store: ArtifactStore,
    method: str,
    combo: Sequence[str],
) -> Dict:
    """Build and score ``M(Q)`` for one method and one composite task."""
    if method not in SERVICE_METHODS and not method.startswith("poe-"):
        raise ValueError(f"unknown service method {method!r}")
    data = store.dataset(track)
    hierarchy = data.hierarchy
    composite = hierarchy.composite(combo)
    n_q = composite.n_primitives
    shape = (3, track.image_size, track.image_size)
    cfg = track.train_config(track.service_epochs, seed_offset=13 + n_q)

    def student_arch(num_classes: int) -> WideResNet:
        return WideResNet(
            track.depth,
            track.library_k,
            track.expert_ks * n_q,
            num_classes,
            library_level=track.library_level,
            rng=np.random.default_rng(track.seed + 101 + n_q),
        )

    def wide_head(num_classes: int) -> WRNHead:
        return WRNHead(
            track.depth,
            track.library_k,
            track.expert_ks * n_q,
            num_classes,
            library_level=track.library_level,
            rng=np.random.default_rng(track.seed + 131 + n_q),
        )

    test_subset = task_subset(data.test, composite)

    def spec_eval(model) -> float:
        logits = batched_forward(model, test_subset.images)
        return accuracy_from_logits(logits, test_subset.labels)

    def compute() -> Dict:
        record: Dict = {
            "method": method,
            "combo": list(combo),
            "n_q": n_q,
            "num_classes": len(composite),
        }
        if method == "oracle":
            oracle_model, meta = store.oracle(track)
            record["accuracy"] = task_specific_accuracy(oracle_model, data.test, composite)
            record["params"], record["flops"] = meta["params"], meta["flops"]
            record["arch"] = meta["arch"]
            record["train_seconds"] = 0.0
            record["time_to_best"] = 0.0
            record["curve"] = []
            record["type"] = "generic"
            return record

        if method == "kd":
            # The generic student depends only on n(Q) (its conv4 width), so
            # it is trained once per n(Q) and reused across combos; its
            # accuracy is measured task-specifically per combo.  Figures 6-7
            # follow the paper in not plotting KD, so no curve is recorded.
            student = store.kd_generic(track, ks_multiplier=n_q)
            record["accuracy"] = task_specific_accuracy(student, data.test, composite)
            record["params"] = count_params(student)
            record["flops"] = count_flops(student, shape)
            record["arch"] = student.arch_name()
            record["type"] = "generic"
            record["train_seconds"] = None
            record["time_to_best"] = None
            record["curve"] = []
            return record

        if method == "scratch":
            model = student_arch(len(composite))
            subset = task_subset(data.train, composite)
            history = train_scratch(
                model, subset.images, subset.labels, config=cfg, eval_fn=spec_eval
            )
            record["accuracy"] = specialized_accuracy(model, data.test, composite)
            record["params"] = count_params(model)
            record["flops"] = count_flops(model, shape)
            record["arch"] = model.arch_name()
            record["type"] = "special"
            record.update(_history_payload(history))
            return record

        pool = store.pool(track)

        if method == "transfer":
            head = wide_head(len(composite))
            subset = task_subset(data.train, composite)
            test_features = batched_forward(pool.library, test_subset.images)

            def head_eval(model) -> float:
                return accuracy_from_logits(
                    batched_forward(model, test_features), test_subset.labels
                )

            history = train_transfer(
                pool.library, head, subset.images, subset.labels, config=cfg, eval_fn=head_eval
            )
            model = BranchedSpecialistNet(pool.library, [(_combo_key(combo), head)])
            model.eval()
            record["accuracy"] = specialized_accuracy(model, data.test, composite)
            record["params"] = count_params(model)
            record["flops"] = count_flops(model, shape)
            record["arch"] = model.arch_name()
            record["type"] = "special"
            record.update(_history_payload(history))
            return record

        if method == "ckd":
            head = wide_head(len(composite))
            oracle_logits = pool._oracle_logits_for(data.train.images)
            test_features = batched_forward(pool.library, test_subset.images)

            def head_eval(model) -> float:
                return accuracy_from_logits(
                    batched_forward(model, test_features), test_subset.labels
                )

            history = distill_ckd_head(
                oracle_logits,
                pool.library,
                head,
                data.train.images,
                class_ids=composite.classes,
                config=cfg,
                settings=pool.config.ckd_settings(),
                eval_fn=head_eval,
                features=pool._features_for(data.train.images),
            )
            model = BranchedSpecialistNet(pool.library, [(_combo_key(combo), head)])
            model.eval()
            record["accuracy"] = specialized_accuracy(model, data.test, composite)
            record["params"] = count_params(model)
            record["flops"] = count_flops(model, shape)
            record["arch"] = model.arch_name()
            record["type"] = "special"
            record.update(_history_payload(history))
            return record

        if method in ("sd+scratch", "uhc+scratch", "sd+ckd", "uhc+ckd"):
            if method.endswith("scratch"):
                teachers = [store.scratch_teacher(track, name) for name in combo]
            else:
                teachers = []
                for name in combo:
                    network, _ = pool.consolidate([name])
                    teachers.append(network)
            student = student_arch(len(composite))
            subset = task_subset(data.train, composite)
            merge = merge_sd if method.startswith("sd") else merge_uhc
            history = merge(
                teachers,
                student,
                subset.images,
                config=cfg,
                temperature=track.temperature,
                eval_fn=spec_eval,
            )
            record["accuracy"] = specialized_accuracy(student, data.test, composite)
            record["params"] = count_params(student)
            record["flops"] = count_flops(student, shape)
            record["arch"] = student.arch_name()
            record["type"] = "special"
            record.update(_history_payload(history))
            return record

        # PoE and its loss-ablation variants: train-free consolidation.
        variant = method.split("-", 1)[1] if method.startswith("poe-") else "both"
        variant_pool = store.pool_variant(track, variant)
        start = time.perf_counter()
        model, _ = variant_pool.consolidate(combo)
        build_seconds = time.perf_counter() - start
        acc = specialized_accuracy(model, data.test, composite)
        record["accuracy"] = acc
        record["params"] = count_params(model)
        record["flops"] = count_flops(model, shape)
        record["arch"] = model.arch_name()
        record["type"] = "special"
        record["train_seconds"] = build_seconds
        record["time_to_best"] = build_seconds
        record["curve"] = [[build_seconds, acc]]
        record["build_seconds"] = build_seconds
        return record

    return store.result(track, "service", f"{method}_{_combo_key(combo)}", compute)


def service_table(
    track: TrackConfig,
    store: ArtifactStore,
    methods: Sequence[str] = SERVICE_METHODS,
    n_q_values: Sequence[int] = (2, 3, 4, 5),
) -> List[Dict]:
    """Table 3: per (method, n(Q)) aggregates over the sampled combos."""
    data = store.dataset(track)
    tasks = track.selected_tasks(data.hierarchy)
    rows: List[Dict] = []
    for method in methods:
        for n_q in n_q_values:
            combos = select_combos(tasks, n_q, track.combos_per_nq, seed=track.seed)
            if not combos:  # track has fewer than n_q primitive tasks
                continue
            records = [run_service_method(track, store, method, c) for c in combos]
            accs = np.asarray([r["accuracy"] for r in records])
            rows.append(
                {
                    "method": method,
                    "n_q": n_q,
                    "accuracy_mean": float(accs.mean()),
                    "accuracy_std": float(accs.std()),
                    "params": float(np.mean([r["params"] for r in records])),
                    "flops": float(np.mean([r["flops"] for r in records])),
                    "arch": records[0]["arch"],
                    "combos": [list(c) for c in combos],
                }
            )
    return rows


def ablation_table(
    track: TrackConfig,
    store: ArtifactStore,
    n_q_values: Sequence[int] = (2, 3, 4, 5),
    variants: Sequence[str] = ("poe-soft", "poe-scale", "poe"),
) -> List[Dict]:
    """Table 5: L_soft / L_scale / both, averaged like Table 3."""
    data = store.dataset(track)
    tasks = track.selected_tasks(data.hierarchy)
    rows: List[Dict] = []
    for method in variants:
        for n_q in n_q_values:
            combos = select_combos(tasks, n_q, track.combos_per_nq, seed=track.seed)
            if not combos:
                continue
            records = [run_service_method(track, store, method, c) for c in combos]
            accs = np.asarray([r["accuracy"] for r in records])
            rows.append(
                {
                    "method": method,
                    "n_q": n_q,
                    "accuracy_mean": float(accs.mean()),
                    "accuracy_std": float(accs.std()),
                }
            )
    return rows


def learning_curves(
    track: TrackConfig,
    store: ArtifactStore,
    n_q: int = 5,
    methods: Sequence[str] = (
        "scratch",
        "transfer",
        "sd+scratch",
        "uhc+scratch",
        "sd+ckd",
        "uhc+ckd",
        "ckd",
        "poe",
    ),
) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 6: wall-clock learning curves at ``n(Q)`` (first combo)."""
    data = store.dataset(track)
    tasks = track.selected_tasks(data.hierarchy)
    combo = select_combos(tasks, n_q, 1, seed=track.seed)[0]
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for method in methods:
        record = run_service_method(track, store, method, combo)
        curves[method] = [tuple(point) for point in record["curve"]]
    return curves


def consolidation_times(
    track: TrackConfig,
    store: ArtifactStore,
    n_q_values: Sequence[int] = (2, 3, 4, 5),
    methods: Sequence[str] = (
        "scratch",
        "transfer",
        "sd+scratch",
        "uhc+scratch",
        "sd+ckd",
        "uhc+ckd",
        "ckd",
        "poe",
    ),
) -> List[Dict]:
    """Figure 7: mean time-to-best-accuracy per method as n(Q) grows."""
    data = store.dataset(track)
    tasks = track.selected_tasks(data.hierarchy)
    rows: List[Dict] = []
    for method in methods:
        for n_q in n_q_values:
            combos = select_combos(tasks, n_q, track.combos_per_nq, seed=track.seed)
            if not combos:
                continue
            records = [run_service_method(track, store, method, c) for c in combos]
            times = [r.get("time_to_best") or 0.0 for r in records]
            rows.append(
                {
                    "method": method,
                    "n_q": n_q,
                    "time_to_best_mean": float(np.mean(times)),
                    "train_seconds_mean": float(
                        np.mean([r.get("train_seconds") or 0.0 for r in records])
                    ),
                }
            )
    return rows
