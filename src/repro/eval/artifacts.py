"""Disk-backed artifact store for trained models and experiment results.

Oracle training is the single most expensive step of the reproduction, and
every table/figure reuses the same oracle, library and expert pool.  The
store trains each artifact at most once per configuration (keyed by the
track's cache key) and persists:

* ``models/<key>/oracle.npz``      — oracle weights + metadata JSON
* ``models/<key>/pool/``           — the PoE library + experts (ExpertStore)
* ``models/<key>/teacher_<t>.npz`` — per-primitive Scratch teachers (SD/UHC)
* ``results/<key>/...json``        — per-experiment result records

Set ``REPRO_ARTIFACTS`` to relocate the store (default: ``.artifacts/``
under the repository root / current directory).
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..core import ExpertStore, PoEConfig, PoolOfExperts
from ..data import HierarchicalImageDataset, task_subset
from ..distill import train_scratch
from ..eval.metrics import accuracy
from ..models import WideResNet, count_flops, count_params
from ..nn import load_state, save_module
from .experiments import TrackConfig

__all__ = ["ArtifactStore", "default_artifact_root"]


def default_artifact_root() -> str:
    env = os.environ.get("REPRO_ARTIFACTS")
    if env:
        return env
    return os.path.join(os.getcwd(), ".artifacts")


class ArtifactStore:
    """Train-once cache for oracles, pools, teachers and result records."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_artifact_root()
        self._datasets: Dict[str, HierarchicalImageDataset] = {}
        self._oracles: Dict[str, WideResNet] = {}
        self._pools: Dict[str, PoolOfExperts] = {}
        self._teachers: Dict[Tuple[str, str], WideResNet] = {}

    # ------------------------------------------------------------------
    # Datasets (deterministic regeneration, no disk needed)
    # ------------------------------------------------------------------
    def dataset(self, track: TrackConfig) -> HierarchicalImageDataset:
        key = track.cache_key()
        if key not in self._datasets:
            self._datasets[key] = track.dataset()
        return self._datasets[key]

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def oracle(self, track: TrackConfig) -> Tuple[WideResNet, Dict]:
        """Return the trained oracle and its metadata (training it if needed)."""
        key = track.cache_key()
        if key in self._oracles:
            return self._oracles[key], self._read_json(self._oracle_meta_path(track))
        data = self.dataset(track)
        model = WideResNet(
            track.depth,
            track.oracle_k,
            track.oracle_k,
            data.num_classes,
            library_level=track.library_level,
            rng=np.random.default_rng(track.seed),
        )
        weights_path = self._oracle_path(track)
        meta_path = self._oracle_meta_path(track)
        if os.path.exists(weights_path) and os.path.exists(meta_path):
            model.load_state_dict(load_state(weights_path))
            model.eval()
            self._oracles[key] = model
            return model, self._read_json(meta_path)
        start = time.perf_counter()
        history = train_scratch(
            model,
            data.train.images,
            data.train.labels,
            config=track.train_config(track.oracle_epochs),
            eval_fn=lambda m: accuracy(m, data.test),
        )
        seconds = time.perf_counter() - start
        meta = {
            "test_accuracy": history.final_accuracy,
            "seconds": seconds,
            "params": count_params(model),
            "flops": count_flops(model, (3, track.image_size, track.image_size)),
            "arch": model.arch_name(),
        }
        save_module(model, weights_path)
        self._write_json(meta_path, meta)
        self._oracles[key] = model
        return model, meta

    # ------------------------------------------------------------------
    # PoE pool (library + experts)
    # ------------------------------------------------------------------
    def pool(self, track: TrackConfig) -> PoolOfExperts:
        """Return the preprocessed pool for the track (building if needed)."""
        key = track.cache_key()
        if key in self._pools:
            return self._pools[key]
        data = self.dataset(track)
        oracle_model, _ = self.oracle(track)
        config = PoEConfig(
            library_depth=track.depth,
            library_k=track.library_k,
            expert_ks=track.expert_ks,
            library_level=track.library_level,
            temperature=track.temperature,
            alpha=track.alpha,
            library_train=track.train_config(track.library_epochs),
            expert_train=track.train_config(track.expert_epochs),
            seed=track.seed,
        )
        pool = PoolOfExperts(oracle_model, data.hierarchy, config)
        store = ExpertStore(self._pool_dir(track))
        manifest = os.path.join(self._pool_dir(track), ExpertStore.MANIFEST)
        if os.path.exists(manifest):
            pool = store.load(oracle_model, data.hierarchy)
            pool.oracle = oracle_model
            pool.config = config
            self._pools[key] = pool
            return pool
        selected = track.selected_tasks(data.hierarchy)
        pool.preprocess(data.train, tasks=selected)
        store.save(pool)
        self._pools[key] = pool
        return pool

    # ------------------------------------------------------------------
    # Pool variants for the Table 5 / design ablations
    # ------------------------------------------------------------------
    def pool_variant(self, track: TrackConfig, variant: str) -> PoolOfExperts:
        """A pool whose experts were extracted with an ablated CKD loss.

        Variants: ``both`` (the main pool), ``soft`` (α=0: L_soft only),
        ``scale`` (L_scale only), ``l2`` (L_scale with an L2 norm).  All
        variants share the main pool's library — the ablation concerns only
        the expert-extraction loss.
        """
        if variant == "both":
            return self.pool(track)
        if variant not in ("soft", "scale", "l2"):
            raise ValueError(f"unknown pool variant {variant!r}")
        key = (track.cache_key(), f"pool-{variant}")
        if key in self._pools:
            return self._pools[key]
        from ..distill import CKDSettings

        settings = {
            "soft": CKDSettings(temperature=track.temperature, alpha=0.0),
            "scale": CKDSettings(temperature=track.temperature, soft_weight=0.0, alpha=1.0),
            "l2": CKDSettings(temperature=track.temperature, alpha=track.alpha, scale_norm="l2"),
        }[variant]
        base = self.pool(track)
        data = self.dataset(track)
        oracle_model, _ = self.oracle(track)
        variant_pool = PoolOfExperts(oracle_model, data.hierarchy, base.config)
        variant_pool.library = base.library
        variant_dir = os.path.join(self._model_dir(track), f"pool-{variant}")
        store = ExpertStore(variant_dir)
        if os.path.exists(os.path.join(variant_dir, ExpertStore.MANIFEST)):
            loaded = store.load(oracle_model, data.hierarchy)
            loaded.library = base.library  # share the exact library object
            self._pools[key] = loaded
            return loaded
        for name in track.selected_tasks(data.hierarchy):
            variant_pool.extract_expert(
                name, data.train.images, settings=settings
            )
        store.save(variant_pool)
        self._pools[key] = variant_pool
        return variant_pool

    # ------------------------------------------------------------------
    # KD generic students (Table 2 / Table 3 'KD' rows)
    # ------------------------------------------------------------------
    def kd_generic(self, track: TrackConfig, ks_multiplier: int = 1) -> WideResNet:
        """Generic student of expert size distilled from the whole oracle.

        ``ks_multiplier`` scales conv4's width by n(Q), matching the paper's
        ``WRN-16-(1, 0.25·n(Q))`` architecture for the Table 3 KD rows.
        """
        key = (track.cache_key(), f"kd-generic-{ks_multiplier}")
        if key in self._teachers:
            return self._teachers[key]
        data = self.dataset(track)
        oracle_model, _ = self.oracle(track)
        model = WideResNet(
            track.depth,
            track.library_k,
            track.expert_ks * ks_multiplier,
            data.num_classes,
            library_level=track.library_level,
            rng=np.random.default_rng(track.seed + 71 + ks_multiplier),
        )
        path = os.path.join(self._model_dir(track), f"kd_generic_{ks_multiplier}.npz")
        if os.path.exists(path):
            model.load_state_dict(load_state(path))
            model.eval()
        else:
            from ..distill import distill_kd

            distill_kd(
                oracle_model,
                model,
                data.train.images,
                config=track.train_config(track.service_epochs, seed_offset=11),
                temperature=track.temperature,
            )
            save_module(model, path)
        self._teachers[key] = model
        return model

    # ------------------------------------------------------------------
    # Scratch teachers (for SD/UHC + Scratch)
    # ------------------------------------------------------------------
    def scratch_teacher(self, track: TrackConfig, task_name: str) -> WideResNet:
        """Per-primitive specialist trained from scratch (SD/UHC teacher)."""
        key = (track.cache_key(), task_name)
        if key in self._teachers:
            return self._teachers[key]
        data = self.dataset(track)
        task = data.hierarchy.task(task_name)
        model = WideResNet(
            track.depth,
            track.library_k,
            track.expert_ks,
            len(task),
            library_level=track.library_level,
            rng=np.random.default_rng(track.seed + 31 + hash(task_name) % 1000),
        )
        path = os.path.join(self._model_dir(track), f"teacher_{task_name}.npz")
        if os.path.exists(path):
            model.load_state_dict(load_state(path))
            model.eval()
        else:
            subset = task_subset(data.train, task)
            train_scratch(
                model,
                subset.images,
                subset.labels,
                config=track.train_config(track.expert_epochs, seed_offset=3),
            )
            save_module(model, path)
        self._teachers[key] = model
        return model

    # ------------------------------------------------------------------
    # Result records (JSON)
    # ------------------------------------------------------------------
    def result(
        self, track: TrackConfig, section: str, name: str, compute: Callable[[], Dict]
    ) -> Dict:
        """Fetch a cached result record or compute and persist it."""
        path = os.path.join(self._result_dir(track), section, f"{name}.json")
        if os.path.exists(path):
            return self._read_json(path)
        record = compute()
        self._write_json(path, record)
        return record

    def has_result(self, track: TrackConfig, section: str, name: str) -> bool:
        return os.path.exists(
            os.path.join(self._result_dir(track), section, f"{name}.json")
        )

    # ------------------------------------------------------------------
    # Paths / JSON helpers
    # ------------------------------------------------------------------
    def _model_dir(self, track: TrackConfig) -> str:
        return os.path.join(self.root, "models", track.cache_key())

    def _result_dir(self, track: TrackConfig) -> str:
        return os.path.join(self.root, "results", track.cache_key())

    def _pool_dir(self, track: TrackConfig) -> str:
        return os.path.join(self._model_dir(track), "pool")

    def _oracle_path(self, track: TrackConfig) -> str:
        return os.path.join(self._model_dir(track), "oracle.npz")

    def _oracle_meta_path(self, track: TrackConfig) -> str:
        return os.path.join(self._model_dir(track), "oracle.json")

    @staticmethod
    def _read_json(path: str) -> Dict:
        with open(path) as fh:
            return json.load(fh)

    @staticmethod
    def _write_json(path: str, payload: Dict) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, default=float)
