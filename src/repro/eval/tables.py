"""Plain-text rendering of experiment tables and figures.

Benchmarks print these so the reproduced rows/series can be compared to the
paper's tables at a glance (EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = [
    "render_table",
    "format_count",
    "render_histogram",
    "render_curves",
]


def format_count(value: float) -> str:
    """Human format for params/FLOPs: 1.23M, 0.02B, 540K."""
    value = float(value)
    if value >= 1e9:
        return f"{value / 1e9:.2f}B"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}K"
    return f"{value:.0f}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(
    histogram: Sequence[float], bin_edges: Sequence[float], width: int = 40, title: str = ""
) -> str:
    """ASCII bar chart of a (relative-frequency) histogram."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(histogram) or 1.0
    for i, freq in enumerate(histogram):
        lo, hi = bin_edges[i], bin_edges[i + 1]
        bar = "#" * int(round(width * freq / peak))
        lines.append(f"  [{lo:.1f},{hi:.1f}) {freq:5.2f} {bar}")
    return "\n".join(lines)


def render_curves(
    curves: Dict[str, List[Tuple[float, float]]], title: str = ""
) -> str:
    """Textual learning curves: per method the (t, acc) milestones."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for method, points in curves.items():
        if not points:
            lines.append(f"  {method:>12}: (no curve)")
            continue
        best = max(a for _, a in points)
        final_t = points[-1][0]
        milestones = ", ".join(f"{t:.1f}s:{a:.3f}" for t, a in points[:: max(1, len(points) // 5)])
        lines.append(
            f"  {method:>12}: best={best:.3f} total={final_t:.1f}s  [{milestones}]"
        )
    return "\n".join(lines)
