"""Table 2 + Figure 5 runners: model specialization experiments (§5.2).

For each of the track's six primitive tasks, build a specialist with every
method and score it:

* **Oracle**   — task-specific accuracy of the generic oracle (upper bound).
* **KD**       — the oracle's *entire* knowledge distilled into the tiny
  expert architecture; scored task-specifically (fails: capacity).
* **Scratch**  — tiny architecture trained on task data only.
* **Transfer** — frozen library + expert head trained on task data.
* **CKD**      — the paper's conditional distillation (the pool's experts).

Figure 5 reuses the Scratch/Transfer/CKD specialists of one task and
profiles their confidence on out-of-distribution samples.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..core import ood_confidence_profile
from ..core.pool import PoolOfExperts
from ..data import task_subset
from ..distill import batched_forward, train_transfer
from ..models import BranchedSpecialistNet, WRNHead, count_flops, count_params
from .artifacts import ArtifactStore
from .experiments import TrackConfig
from .metrics import accuracy_from_logits, specialized_accuracy, task_specific_accuracy

__all__ = [
    "SPECIALIZATION_METHODS",
    "run_specialization",
    "specialization_table",
    "confidence_figure",
]

SPECIALIZATION_METHODS = ("oracle", "kd", "scratch", "transfer", "ckd")


def _branched_single(pool: PoolOfExperts, task_name: str) -> BranchedSpecialistNet:
    """A pool expert packaged as a standalone specialist model."""
    model, _ = pool.consolidate([task_name])
    return model


def _feature_eval(head: WRNHead, features: np.ndarray, labels: np.ndarray):
    """Accuracy closure over pre-computed library features (head-only)."""

    def _eval(model) -> float:
        logits = batched_forward(model, features)
        return accuracy_from_logits(logits, labels)

    return _eval


def run_specialization(
    track: TrackConfig, store: ArtifactStore, method: str, task_name: str
) -> Dict:
    """Build + score one (method, primitive task) specialist; returns a record."""
    if method not in SPECIALIZATION_METHODS:
        raise ValueError(f"unknown specialization method {method!r}")
    data = store.dataset(track)
    hierarchy = data.hierarchy
    task = hierarchy.task(task_name)
    shape = (3, track.image_size, track.image_size)

    def compute() -> Dict:
        start = time.perf_counter()
        if method == "oracle":
            oracle_model, meta = store.oracle(track)
            acc = task_specific_accuracy(oracle_model, data.test, task)
            params, flops = meta["params"], meta["flops"]
            arch = meta["arch"]
        elif method == "kd":
            student = store.kd_generic(track, ks_multiplier=1)
            acc = task_specific_accuracy(student, data.test, task)
            params, flops = count_params(student), count_flops(student, shape)
            arch = student.arch_name()
        elif method == "scratch":
            model = store.scratch_teacher(track, task_name)
            acc = specialized_accuracy(model, data.test, task)
            params, flops = count_params(model), count_flops(model, shape)
            arch = model.arch_name()
        elif method == "transfer":
            pool = store.pool(track)
            head = WRNHead(
                track.depth,
                track.library_k,
                track.expert_ks,
                len(task),
                library_level=track.library_level,
                rng=np.random.default_rng(track.seed + 57),
            )
            subset = task_subset(data.train, task)
            train_transfer(
                pool.library,
                head,
                subset.images,
                subset.labels,
                config=track.train_config(track.expert_epochs, seed_offset=5),
            )
            model = BranchedSpecialistNet(pool.library, [(task_name, head)])
            model.eval()
            acc = specialized_accuracy(model, data.test, task)
            params, flops = count_params(model), count_flops(model, shape)
            arch = model.arch_name()
        else:  # ckd — the pool's expert
            pool = store.pool(track)
            model = _branched_single(pool, task_name)
            acc = specialized_accuracy(model, data.test, task)
            params, flops = count_params(model), count_flops(model, shape)
            arch = model.arch_name()
        return {
            "method": method,
            "task": task_name,
            "accuracy": acc,
            "params": params,
            "flops": flops,
            "arch": arch,
            "seconds": time.perf_counter() - start,
        }

    return store.result(track, "specialization", f"{method}_{task_name}", compute)


def specialization_table(track: TrackConfig, store: ArtifactStore) -> List[Dict]:
    """Table 2: mean±std accuracy per method over the six selected tasks."""
    data = store.dataset(track)
    tasks = track.selected_tasks(data.hierarchy)
    rows: List[Dict] = []
    for method in SPECIALIZATION_METHODS:
        records = [run_specialization(track, store, method, t) for t in tasks]
        accs = np.asarray([r["accuracy"] for r in records])
        rows.append(
            {
                "method": method,
                "type": "generic" if method in ("oracle", "kd") else "special",
                "arch": records[0]["arch"],
                "accuracy_mean": float(accs.mean()),
                "accuracy_std": float(accs.std()),
                "params": records[0]["params"],
                "flops": records[0]["flops"],
            }
        )
    return rows


def confidence_figure(
    track: TrackConfig,
    store: ArtifactStore,
    task_name: Optional[str] = None,
    bins: int = 10,
) -> Dict[str, Dict]:
    """Figure 5: OOD max-confidence histograms for Scratch/Transfer/CKD.

    Returns per-method records with the histogram, mode bin and the
    overconfidence rate (fraction of OOD predictions above 0.9).
    """
    data = store.dataset(track)
    hierarchy = data.hierarchy
    if task_name is None:
        task_name = track.selected_tasks(hierarchy)[0]
    task = hierarchy.task(task_name)

    def compute() -> Dict:
        out: Dict[str, Dict] = {}
        # Scratch specialist (cached teacher).
        scratch_model = store.scratch_teacher(track, task_name)
        # Transfer specialist: fresh head over the frozen library.
        pool = store.pool(track)
        transfer_head = WRNHead(
            track.depth,
            track.library_k,
            track.expert_ks,
            len(task),
            library_level=track.library_level,
            rng=np.random.default_rng(track.seed + 91),
        )
        subset = task_subset(data.train, task)
        train_transfer(
            pool.library,
            transfer_head,
            subset.images,
            subset.labels,
            config=track.train_config(track.expert_epochs, seed_offset=7),
        )
        transfer_model = BranchedSpecialistNet(pool.library, [(task_name, transfer_head)])
        transfer_model.eval()
        ckd_model = _branched_single(pool, task_name)
        for method, model in (
            ("scratch", scratch_model),
            ("transfer", transfer_model),
            ("ckd", ckd_model),
        ):
            profile = ood_confidence_profile(model, data.test, task, bins=bins)
            out[method] = {
                "histogram": profile.histogram.tolist(),
                "bin_edges": profile.bin_edges.tolist(),
                "mean": profile.mean,
                "median": profile.median,
                "overconfident_rate": profile.overconfident_rate,
                "mode_bin": list(profile.mode_bin),
            }
        out["task"] = task_name
        return out

    return store.result(track, "confidence", f"fig5_{task_name}", compute)
