"""Experiment tracks: the scaled-down counterparts of the paper's two setups.

A :class:`TrackConfig` bundles everything one evaluation track needs — the
synthetic dataset recipe, the oracle/library/expert architectures and the
training budgets.  Two canonical tracks mirror the paper:

* ``synth-cifar``  — CIFAR-100-like: equal-size superclasses.
* ``synth-tiny``   — Tiny-ImageNet-like: variable-size primitive tasks.

Like the paper (§5.1), six primitive tasks are selected per track and all
specialization/consolidation experiments are run over them.

``fast=True`` (or env ``REPRO_FAST=1``) shrinks budgets for CI/test runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data import (
    ClassHierarchy,
    HierarchicalImageDataset,
    make_synth_cifar,
    make_synth_tiny_imagenet,
)
from ..distill import TrainConfig

__all__ = [
    "TrackConfig",
    "cifar_track",
    "tiny_track",
    "get_track",
    "select_combos",
    "is_fast_mode",
]


def is_fast_mode() -> bool:
    """True when the environment requests reduced experiment budgets."""
    return os.environ.get("REPRO_FAST", "").strip() not in ("", "0", "false")


@dataclass(frozen=True)
class TrackConfig:
    """One evaluation track (dataset + architectures + budgets)."""

    name: str
    kind: str  # 'cifar' (uniform groups) or 'tiny' (variable groups)
    # dataset (defaults mirror CIFAR-100's 20x5 hierarchy at reduced size)
    num_superclasses: int = 20
    classes_per_super: int = 5
    group_sizes: Tuple[int, ...] = ()
    train_per_class: int = 60
    test_per_class: int = 25
    image_size: int = 8
    noise_std: float = 1.1
    class_strength: float = 0.7  # fine-grained intra-superclass separation
    data_seed: int = 0
    # architectures (paper: oracle WRN-40-(4,4); library WRN-16-(1,1); expert ks=0.25)
    depth: int = 10
    oracle_k: float = 4.0
    library_k: float = 1.0
    expert_ks: float = 0.25
    library_level: int = 3
    # distillation hyperparameters (paper: alpha=0.3)
    temperature: float = 4.0
    alpha: float = 0.3
    # training budgets: baselines are trained to convergence like the paper
    # (saturation also produces the overconfidence Figure 5 measures)
    oracle_epochs: int = 12
    library_epochs: int = 15
    expert_epochs: int = 20
    service_epochs: int = 10
    batch_size: int = 128
    lr: float = 0.05
    seed: int = 0
    # experiment design: how many primitive tasks participate (paper: 6)
    num_selected_tasks: int = 6
    combos_per_nq: int = 1

    # ------------------------------------------------------------------
    def dataset(self) -> HierarchicalImageDataset:
        """Materialise the track's dataset (deterministic in the config)."""
        from ..data.synthetic import SyntheticConfig

        cfg = SyntheticConfig(
            image_size=self.image_size,
            noise_std=self.noise_std,
            class_strength=self.class_strength,
        )
        if self.kind == "cifar":
            return make_synth_cifar(
                num_superclasses=self.num_superclasses,
                classes_per_super=self.classes_per_super,
                train_per_class=self.train_per_class,
                test_per_class=self.test_per_class,
                image_size=self.image_size,
                seed=self.data_seed,
                config=cfg,
            )
        if self.kind == "tiny":
            return make_synth_tiny_imagenet(
                group_sizes=list(self.group_sizes),
                train_per_class=self.train_per_class,
                test_per_class=self.test_per_class,
                image_size=self.image_size,
                seed=self.data_seed,
                config=cfg,
            )
        raise ValueError(f"unknown track kind {self.kind!r}")

    @property
    def num_classes(self) -> int:
        if self.kind == "cifar":
            return self.num_superclasses * self.classes_per_super
        return int(sum(self.group_sizes))

    def selected_tasks(self, hierarchy: ClassHierarchy) -> Tuple[str, ...]:
        """The six primitive tasks used by the experiments (seeded choice)."""
        names = [t.name for t in hierarchy.primitive_tasks()]
        rng = np.random.default_rng(self.seed + 17)
        chosen = rng.choice(len(names), size=min(self.num_selected_tasks, len(names)), replace=False)
        return tuple(names[i] for i in sorted(chosen))

    def train_config(self, epochs: int, seed_offset: int = 0) -> TrainConfig:
        return TrainConfig(
            epochs=epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            seed=self.seed + seed_offset,
            eval_every=2,  # learning-curve sampling (paper: every 5 epochs)
        )

    def cache_key(self) -> str:
        """Stable identifier for artifact caching."""
        return (
            f"{self.name}-d{self.depth}-ok{self.oracle_k:g}-lk{self.library_k:g}"
            f"-ek{self.expert_ks:g}-n{self.num_classes}-s{self.image_size}"
            f"-tr{self.train_per_class}-ns{self.noise_std:g}-cs{self.class_strength:g}"
            f"-oe{self.oracle_epochs}-le{self.library_epochs}"
            f"-ee{self.expert_epochs}-se{self.service_epochs}-sd{self.seed}"
        )


def cifar_track(fast: Optional[bool] = None) -> TrackConfig:
    """The CIFAR-100-like track (uniform 3-class superclasses)."""
    fast = is_fast_mode() if fast is None else fast
    track = TrackConfig(name="synth-cifar", kind="cifar")
    if fast:
        track = replace(
            track,
            name="synth-cifar-fast",
            num_superclasses=6,
            classes_per_super=3,
            train_per_class=60,
            test_per_class=20,
            noise_std=0.7,
            class_strength=0.9,
            batch_size=64,
            oracle_epochs=6,
            library_epochs=6,
            expert_epochs=5,
            service_epochs=5,
            combos_per_nq=1,
        )
    return track


def tiny_track(fast: Optional[bool] = None) -> TrackConfig:
    """The Tiny-ImageNet-like track (variable-size primitive tasks)."""
    fast = is_fast_mode() if fast is None else fast
    track = TrackConfig(
        name="synth-tiny",
        kind="tiny",
        group_sizes=(3, 4, 5, 6, 7, 8, 9, 10, 3, 5),  # paper: groups of 3-10
        train_per_class=50,
        test_per_class=25,
        library_k=2.0,
        oracle_k=4.0,
    )
    if fast:
        track = replace(
            track,
            name="synth-tiny-fast",
            group_sizes=(3, 4, 3, 4, 3, 3),
            train_per_class=60,
            test_per_class=20,
            noise_std=0.7,
            class_strength=0.9,
            batch_size=64,
            oracle_epochs=6,
            library_epochs=6,
            expert_epochs=5,
            service_epochs=5,
            combos_per_nq=1,
        )
    return track


_TRACKS = {"synth-cifar": cifar_track, "synth-tiny": tiny_track}


def get_track(name: str, fast: Optional[bool] = None) -> TrackConfig:
    try:
        return _TRACKS[name](fast)
    except KeyError:
        raise KeyError(f"unknown track {name!r}; known: {sorted(_TRACKS)}") from None


def select_combos(
    task_names: Sequence[str], n_primitives: int, k: int, seed: int = 0
) -> List[Tuple[str, ...]]:
    """Deterministically pick ``k`` composite tasks with ``n_primitives`` each.

    The paper averages over *all* combinations of its six tasks; on this
    substrate we subsample (deterministically) to keep the matrix tractable
    and report the combo list alongside results.
    """
    import itertools

    all_combos = list(itertools.combinations(task_names, n_primitives))
    rng = np.random.default_rng(seed + 1000 * n_primitives)
    order = rng.permutation(len(all_combos))
    return [all_combos[i] for i in order[: min(k, len(all_combos))]]
