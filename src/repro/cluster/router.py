"""Deterministic task→shard routing via rendezvous hashing.

:class:`ShardRouter` decides which shard(s) own each primitive task.  It
uses rendezvous (highest-random-weight) hashing over a stable digest
(blake2b), so:

* routing is deterministic across processes (no ``PYTHONHASHSEED``
  dependence) and needs no shared state beyond the shard count and seed;
* task placement is balanced — each shard owns ~``1/N`` of the tasks with
  chi-square-bounded spread (tested over 1k names);
* growing or shrinking the cluster only moves ~``1/N`` of the tasks
  (rendezvous minimal disruption), which keeps :meth:`repro.cluster
  .ClusterGateway.rebalance` cheap.

Two placement escape hatches cover what pure hashing cannot:

* **overrides** (:meth:`pin`) force a task's primary onto a named shard —
  operational control for debugging or data-locality constraints;
* **hot-expert replication** (:meth:`replicate`) places a popular task on
  its top-``r`` rendezvous shards, so queries touching it can usually be
  satisfied without growing their shard fan-out (LAWS-style
  popularity-driven placement).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = ["ShardRouter", "plan_groups"]


def plan_groups(
    candidates: Mapping[str, Sequence[int]]
) -> Dict[int, Tuple[str, ...]]:
    """Group tasks by shard, minimizing the number of shards touched.

    ``candidates`` maps each task to its eligible shards (primary first).
    Single-candidate tasks fix their shard; replicated tasks then greedily
    prefer a shard the query already touches.  Deterministic: tasks are
    processed in sorted order.
    """
    names = sorted(candidates)
    groups: Dict[int, List[str]] = {}
    flexible: List[str] = []
    for name in names:
        options = candidates[name]
        if len(options) == 1:
            groups.setdefault(options[0], []).append(name)
        else:
            flexible.append(name)
    for name in flexible:
        options = candidates[name]
        chosen = next((s for s in options if s in groups), options[0])
        groups.setdefault(chosen, []).append(name)
    return {shard: tuple(group) for shard, group in sorted(groups.items())}


def _score(task: str, shard: int, seed: int) -> int:
    """Stable rendezvous weight of placing ``task`` on ``shard``."""
    digest = hashlib.blake2b(
        f"{seed}|{task}|{shard}".encode("utf-8"), digest_size=8
    ).digest()
    return struct.unpack("<Q", digest)[0]


class ShardRouter:
    """Maps primitive-task names to shard ids, with overrides + replication.

    Parameters
    ----------
    num_shards:
        Size of the cluster.
    replication:
        Default number of shards each task lives on (1 = no replication).
    seed:
        Salts the rendezvous digest so distinct clusters shuffle placement
        independently; the same seed always yields the same routing.
    replicas_per_shard:
        Process-level redundancy *within* each shard slot: how many
        identical worker replicas serve it.  Orthogonal to ``replication``
        (which spreads a task across *different* shards for locality);
        this exists for failover/hedging, and :meth:`replica_set` exposes
        it to the transports.
    """

    def __init__(
        self,
        num_shards: int,
        replication: int = 1,
        seed: int = 0,
        replicas_per_shard: int = 1,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not 1 <= replication <= num_shards:
            raise ValueError("replication must be within [1, num_shards]")
        if replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be >= 1")
        self.num_shards = num_shards
        self.replication = replication
        self.seed = seed
        self.replicas_per_shard = replicas_per_shard
        self._pins: Dict[str, int] = {}
        self._hot: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Process-level replica sets
    # ------------------------------------------------------------------
    def replica_set(self, shard_id: int) -> Tuple[int, ...]:
        """Replica ids serving ``shard_id`` (0 is the primary replica)."""
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"shard_id must be within [0, {self.num_shards})")
        return tuple(range(self.replicas_per_shard))

    # ------------------------------------------------------------------
    # Placement control
    # ------------------------------------------------------------------
    def pin(self, task: str, shard: int) -> None:
        """Force ``task``'s primary placement onto ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard must be within [0, {self.num_shards})")
        self._pins[task] = shard

    def unpin(self, task: str) -> None:
        self._pins.pop(task, None)

    def replicate(self, task: str, copies: int) -> None:
        """Replicate a hot ``task`` onto its top-``copies`` shards."""
        if not 1 <= copies <= self.num_shards:
            raise ValueError(f"copies must be within [1, {self.num_shards}]")
        self._hot[task] = copies

    def replication_for(self, task: str) -> int:
        return self._hot.get(task, self.replication)

    @property
    def pins(self) -> Mapping[str, int]:
        return dict(self._pins)

    @property
    def hot(self) -> Mapping[str, int]:
        """Per-task replication overrides (``task -> copies``).

        Installed by :meth:`replicate` — operators by hand, or the
        self-tuning controller (:mod:`repro.control`) reacting to the
        fan-out histogram.  Read-only snapshot for introspection.
        """
        return dict(self._hot)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def ranked_shards(self, task: str) -> Tuple[int, ...]:
        """All shard ids ordered by rendezvous preference for ``task``."""
        order = sorted(
            range(self.num_shards),
            key=lambda shard: _score(task, shard, self.seed),
            reverse=True,
        )
        pinned = self._pins.get(task)
        if pinned is not None:
            order.remove(pinned)
            order.insert(0, pinned)
        return tuple(order)

    def shards_for(self, task: str) -> Tuple[int, ...]:
        """The shards holding ``task`` (primary first, then replicas)."""
        return self.ranked_shards(task)[: self.replication_for(task)]

    def shard_for(self, task: str) -> int:
        """The primary shard of ``task``."""
        return self.shards_for(task)[0]

    def assignment(self, tasks: Iterable[str]) -> Dict[int, Tuple[str, ...]]:
        """Full placement map ``shard id -> owned tasks`` (sorted names).

        Every shard id appears, including empty ones — a shard with no
        experts is still a cluster member with serving capacity.
        """
        owned: Dict[int, List[str]] = {shard: [] for shard in range(self.num_shards)}
        for task in sorted(tasks):
            for shard in self.shards_for(task):
                owned[shard].append(task)
        return {shard: tuple(names) for shard, names in owned.items()}

    def plan(self, tasks: Sequence[str]) -> Dict[int, Tuple[str, ...]]:
        """Split one query into per-shard task groups, minimizing fan-out.

        Unreplicated tasks fix their primary shard; replicated tasks then
        greedily prefer a shard the query already touches, so hot-expert
        replicas actually shrink cross-shard fan-out instead of just adding
        copies.  Deterministic for a given router state and task set.
        """
        return plan_groups({name: self.shards_for(name) for name in set(tasks)})

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ShardRouter(num_shards={self.num_shards}, "
            f"replication={self.replication}, pins={len(self._pins)}, "
            f"hot={len(self._hot)})"
        )
