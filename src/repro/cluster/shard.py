"""One shard of a sharded pool: an expert subset behind its own gateway.

A :class:`PoolShard` is the unit of horizontal scale: it wraps a *view*
pool (:meth:`repro.core.PoolOfExperts.subset` — shared library, a slice of
the expert heads) and a private :class:`~repro.serving.ServingGateway`
with its own caches, worker budget and metrics.  Single-shard queries are
served entirely inside the shard; cross-shard queries fetch this shard's
heads as a serialized payload (:meth:`fetch_heads`) — the same wire
boundary a networked deployment would cross.

Expert migration (rebalance) and re-extraction flow through
:meth:`install_expert` / :meth:`drop_expert`, which update the view pool
and therefore notify the shard gateway's invalidation listener — moved or
refreshed experts drop their dependent cache entries immediately.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..core.features import TrunkFeatureCache
from ..core.pool import PoolOfExperts
from ..core.server import serialize_expert_heads
from ..models import WRNHead
from ..serving.gateway import GatewayConfig, ServingGateway
from ..serving.metrics import ServingMetrics

__all__ = ["PoolShard"]


class PoolShard:
    """An expert subset of the pool plus its private serving gateway."""

    def __init__(
        self,
        shard_id: int,
        parent: PoolOfExperts,
        task_names: Iterable[str],
        gateway_config: Optional[GatewayConfig] = None,
        trunk_cache: Optional[TrunkFeatureCache] = None,
    ) -> None:
        self.shard_id = shard_id
        self.parent = parent
        self.pool = parent.subset(task_names)
        # every shard view shares the parent's frozen library, so the
        # cluster hands all shards one trunk-feature cache: features
        # computed for a query on one shard serve predictions on any other
        self.gateway = ServingGateway(
            self.pool, gateway_config, metrics=ServingMetrics(), trunk_cache=trunk_cache
        )

    # ------------------------------------------------------------------
    def task_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.pool.experts))

    def holds(self, task: str) -> bool:
        return task in self.pool.experts

    def fetch_heads(self, names: Iterable[str], transport: str = "raw+zlib") -> bytes:
        """Serialize this shard's heads for a remote consolidation.

        This is the cross-shard wire boundary: the consolidating shard gets
        bytes, not object references, exactly as it would over a network.
        """
        payload = serialize_expert_heads(self.pool, tuple(names), transport)
        self.gateway.metrics.increment("head_fetches")
        return payload

    # ------------------------------------------------------------------
    # Membership changes (rebalance / re-extraction)
    # ------------------------------------------------------------------
    def install_expert(self, name: str, head: WRNHead, version: int) -> None:
        """Place (or refresh) one expert on this shard; invalidates caches."""
        self.pool.attach_expert(name, head, version)

    def drop_expert(self, name: str) -> None:
        """Remove one expert from this shard; invalidates caches."""
        self.pool.detach_expert(name)

    def refresh_library(self, library, library_student, version: int) -> None:
        """Repoint the view at a re-extracted library trunk.

        Propagates the library sentinel version through the view pool so
        the shard gateway's invalidation listener clears its caches and
        in-flight builds against the old trunk fail their version guard.
        """
        from ..core.pool import LIBRARY_TASK

        self.pool.library = library
        self.pool.library_student = library_student
        self.pool._set_version(LIBRARY_TASK, version)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.gateway.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"PoolShard(id={self.shard_id}, tasks={self.task_names()})"
