"""One shard of a sharded pool: an expert subset behind its own gateway.

A :class:`PoolShard` is the unit of horizontal scale: it wraps a *view*
pool (:meth:`repro.core.PoolOfExperts.subset` — shared library, a slice of
the expert heads) and a private :class:`~repro.serving.ServingGateway`
with its own caches, worker budget and metrics.  Single-shard queries are
served entirely inside the shard; cross-shard queries fetch this shard's
heads as a serialized payload (:meth:`fetch_heads`) — the same wire
boundary a networked deployment would cross.

This class is also the reference implementation of the **shard backend
surface** :class:`~repro.cluster.gateway.ClusterGateway` consumes —
``task_names``/``holds``, ``serve``/``predict``/``submit_predict``/
``get_model``, ``fetch_heads``, ``cache_stats`` and ``local_heads`` —
which :class:`repro.net.client.RemoteShardClient` mirrors over a socket.
A gateway built with a networked ``shard_factory`` runs the same code
paths against worker processes; :meth:`local_heads` returning a real dict
(vs. ``None`` remotely) is the one capability probe the gateway uses.

Expert migration (rebalance) and re-extraction flow through
:meth:`install_expert` / :meth:`drop_expert`, which update the view pool
and therefore notify the shard gateway's invalidation listener — moved or
refreshed experts drop their dependent cache entries immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

from ..core.features import TrunkFeatureCache
from ..core.pool import PoolOfExperts
from ..core.server import serialize_expert_heads
from ..models import WRNHead
from ..serving.cache import CacheStats
from ..serving.gateway import (
    GatewayConfig,
    GatewayResponse,
    PredictionResponse,
    ServingGateway,
)
from ..serving.metrics import ServingMetrics

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np
    from concurrent.futures import Future

    from ..core.query import TaskSpecificModel
    from ..serving.canonical import TaskQuery

__all__ = ["PoolShard"]


class PoolShard:
    """An expert subset of the pool plus its private serving gateway."""

    def __init__(
        self,
        shard_id: int,
        parent: PoolOfExperts,
        task_names: Iterable[str],
        gateway_config: Optional[GatewayConfig] = None,
        trunk_cache: Optional[TrunkFeatureCache] = None,
    ) -> None:
        self.shard_id = shard_id
        self.parent = parent
        self.pool = parent.subset(task_names)
        # every shard view shares the parent's frozen library, so the
        # cluster hands all shards one trunk-feature cache: features
        # computed for a query on one shard serve predictions on any other
        self.gateway = ServingGateway(
            self.pool, gateway_config, metrics=ServingMetrics(), trunk_cache=trunk_cache
        )

    # ------------------------------------------------------------------
    def task_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.pool.experts))

    def holds(self, task: str) -> bool:
        return task in self.pool.experts

    def fetch_heads(self, names: Iterable[str], transport: str = "raw+zlib") -> bytes:
        """Serialize this shard's heads for a remote consolidation.

        This is the cross-shard wire boundary: the consolidating shard gets
        bytes, not object references, exactly as it would over a network.
        """
        payload = serialize_expert_heads(self.pool, tuple(names), transport)
        self.gateway.metrics.increment("head_fetches")
        return payload

    def local_heads(self) -> Dict[str, WRNHead]:
        """In-process head references (``None`` on a remote shard client).

        The cluster's composite builder uses this as its home-shard fast
        path: local references need no serialization round trip.
        """
        return dict(self.pool.experts)

    def is_remote(self) -> bool:
        """Capability probe: does reaching this shard cross a socket?

        Cheaper than ``local_heads() is None`` (which copies the head
        dict) for call sites that only need the answer, not the heads.
        """
        return False

    # ------------------------------------------------------------------
    # Serving surface (delegated to the private gateway)
    # ------------------------------------------------------------------
    def serve(self, tasks: "TaskQuery", transport: str = "float32") -> GatewayResponse:
        """Serve one model-delivery query entirely inside this shard."""
        return self.gateway.serve(tasks, transport)

    def predict(self, images: "np.ndarray", tasks: "TaskQuery") -> PredictionResponse:
        """Run one prediction through this shard's fused fast path."""
        return self.gateway.predict(images, tasks)

    def submit_predict(
        self, images: "np.ndarray", tasks: "TaskQuery"
    ) -> "Future[PredictionResponse]":
        """Enqueue a prediction on this shard's micro-batching worker pool."""
        return self.gateway.submit_predict(images, tasks)

    def get_model(self, tasks: "TaskQuery") -> "TaskSpecificModel":
        """The consolidated model for ``tasks`` from this shard's caches."""
        return self.gateway.get_model(tasks)

    def prefetch(self, tasks: "TaskQuery", transport: str = "float32") -> bool:
        """Warm this shard's payload cache (self-tuning prefetch actuator)."""
        return self.gateway.prefetch(tasks, transport)

    def cache_stats(self) -> Dict[str, CacheStats]:
        """This shard's cache tiers (model/payload/trunk/result)."""
        return self.gateway.cache_stats()

    # ------------------------------------------------------------------
    # Membership changes (rebalance / re-extraction)
    # ------------------------------------------------------------------
    def install_expert(self, name: str, head: WRNHead, version: int) -> None:
        """Place (or refresh) one expert on this shard; invalidates caches."""
        self.pool.attach_expert(name, head, version)

    def drop_expert(self, name: str) -> None:
        """Remove one expert from this shard; invalidates caches."""
        self.pool.detach_expert(name)

    def refresh_library(self, library, library_student, version: int) -> None:
        """Repoint the view at a re-extracted library trunk.

        Propagates the library sentinel version through the view pool so
        the shard gateway's invalidation listener clears its caches and
        in-flight builds against the old trunk fail their version guard.
        """
        from ..core.pool import LIBRARY_TASK

        self.pool.library = library
        self.pool.library_student = library_student
        self.pool._set_version(LIBRARY_TASK, version)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.gateway.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"PoolShard(id={self.shard_id}, tasks={self.task_names()})"
