"""repro.cluster — sharded expert pools with cross-shard consolidation.

The serving gateway (PR 1) scales one process; this package scales *out*:

* :mod:`~repro.cluster.router` — :class:`ShardRouter`: deterministic
  task→shard rendezvous hashing with pins (explicit overrides) and
  hot-expert replication.
* :mod:`~repro.cluster.shard` — :class:`PoolShard`: one shard's expert
  subset (a shared-library view of the pool) behind its own
  :class:`~repro.serving.ServingGateway`, plus the serialized head-fetch
  boundary remote consolidation crosses.
* :mod:`~repro.cluster.gateway` — :class:`ClusterGateway`: splits a
  canonical query by shard, serves single-shard queries on the owning
  shard's fast path, consolidates cross-shard queries by fetching remote
  heads, and caches assembled composites.  ``rebalance()`` migrates
  experts without changing answers.
* :mod:`~repro.cluster.metrics` — :class:`ClusterMetrics`: per-shard
  traffic and the cross-shard fan-out histogram on top of the serving
  metrics vocabulary.

Cross-shard consolidation is bit-identical to single-pool
:meth:`~repro.core.PoolOfExperts.consolidate`: head payloads use a
float-exact codec and the library is shared, so sharding changes where
work happens, never the answer.
"""

from .gateway import ClusterConfig, ClusterGateway, RebalanceReport
from .metrics import ClusterMetrics
from .router import ShardRouter, plan_groups
from .shard import PoolShard

__all__ = [
    "ClusterConfig",
    "ClusterGateway",
    "ClusterMetrics",
    "PoolShard",
    "RebalanceReport",
    "ShardRouter",
    "plan_groups",
]
