"""Cluster-level telemetry: per-shard traffic and cross-shard fan-out.

:class:`ClusterMetrics` extends the serving metrics vocabulary with the
two things only a cluster can see:

* **per-shard traffic** — how many queries each shard served (and at what
  cache hit rate, read off the shard gateways at render time), exposing
  placement skew the router's balance tests bound statically;
* **fan-out histogram** — how many shards each query touched.  Fan-out 1
  is the fast path (one shard, no head movement); the histogram is the
  live measure of how well routing + hot-expert replication keep composite
  queries local.

Latency stages (``route``, ``fetch``, ``assemble``, ``serialize``,
``total``) and counters reuse :class:`~repro.serving.ServingMetrics`, so
the render shape matches the single-gateway tooling.  Networked
deployments (:mod:`repro.net`) add the wire's own telemetry into the same
instance: a ``net_roundtrip`` latency stage plus ``net_requests`` /
``net_bytes_tx`` / ``net_bytes_rx`` counters, recorded by every
:class:`~repro.net.client.RemoteShardClient` the cluster owns.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from ..serving.metrics import ServingMetrics

__all__ = ["ClusterMetrics"]


class ClusterMetrics:
    """Thread-safe cluster counters over a :class:`ServingMetrics` core."""

    def __init__(self, max_samples_per_stage: int = 65536) -> None:
        self.serving = ServingMetrics(max_samples_per_stage)
        self._lock = threading.Lock()
        self._fanout: Dict[int, int] = {}
        self._per_shard: Dict[int, int] = {}
        self._started_at = perf_counter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        self.serving.observe(stage, seconds)

    def stage(self, name: str):
        return self.serving.stage(name)

    def increment(self, counter: str, by: int = 1) -> None:
        self.serving.increment(counter, by)

    def counter(self, name: str) -> int:
        return self.serving.counter(name)

    def record_tasks(self, names: Sequence[str]) -> None:
        """Bump the front end's per-task popularity EWMA."""
        self.serving.record_tasks(names)

    @property
    def popularity(self):
        return self.serving.popularity

    def record_fanout(self, num_shards: int) -> None:
        with self._lock:
            self._fanout[num_shards] = self._fanout.get(num_shards, 0) + 1

    def record_shard_requests(self, shard_ids: Sequence[int]) -> None:
        with self._lock:
            for shard_id in shard_ids:
                self._per_shard[shard_id] = self._per_shard.get(shard_id, 0) + 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def fanout_histogram(self) -> Dict[int, int]:
        with self._lock:
            return dict(sorted(self._fanout.items()))

    def shard_requests(self) -> Dict[int, int]:
        with self._lock:
            return dict(sorted(self._per_shard.items()))

    def snapshot(self, include_histograms: bool = False) -> Dict[str, object]:
        """Unified-schema snapshot (``kind="cluster"``) with fan-out tables."""
        snap = self.serving.snapshot(include_histograms=include_histograms)
        snap["kind"] = "cluster"
        snap["fanout"] = self.fanout_histogram()
        snap["shard_requests"] = self.shard_requests()
        return snap

    def render(
        self,
        shards: Optional[Sequence] = None,
        cache_stats=None,
        shard_cache_stats: Optional[Sequence] = None,
    ) -> str:
        """Cluster report: stages/counters, per-shard table, fan-out.

        Pass ``shard_cache_stats`` (one ``cache_stats()`` dict per shard,
        aligned with ``shards``) when the caller already collected them —
        for remote shards each collection is a STATS round trip, and the
        gateway's ``render_stats`` reuses one sweep for both views.
        """
        lines: List[str] = [self.serving.render(cache_stats=cache_stats)]
        elapsed = max(perf_counter() - self._started_at, 1e-9)
        per_shard = self.shard_requests()
        if shards is not None:
            lines.append("  shards:")
            for index, shard in enumerate(shards):
                requests = per_shard.get(shard.shard_id, 0)
                # narrow shard surface: works for in-process PoolShards and
                # remote shard clients (a STATS round trip) alike
                tiers = (
                    shard_cache_stats[index]
                    if shard_cache_stats is not None
                    else shard.cache_stats()
                )
                stats = tiers["payload"]
                lines.append(
                    f"    shard[{shard.shard_id}]: tasks={len(shard.task_names())} "
                    f"requests={requests} qps={requests / elapsed:,.0f} "
                    f"payload_hit_rate={stats.hit_rate:.1%}"
                )
        fanout = self.fanout_histogram()
        if fanout:
            total = sum(fanout.values())
            parts = ", ".join(
                f"{shards_touched}:{count} ({count / total:.0%})"
                for shards_touched, count in fanout.items()
            )
            lines.append(f"  fan-out (shards touched per query): {parts}")
        return "\n".join(lines)
