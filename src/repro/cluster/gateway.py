"""The cluster front end: route → (fetch + consolidate across shards) → serve.

:class:`ClusterGateway` scales the serving tier horizontally.  Experts are
partitioned across N :class:`~repro.cluster.shard.PoolShard`\\ s by a
:class:`~repro.cluster.router.ShardRouter`; a query travels one of two
paths:

* **single-shard fast path** — the router's plan touches one shard, which
  serves the query entirely through its own gateway (caches, coalescing,
  metrics) exactly as a standalone deployment would.
* **cross-shard consolidation** — the plan spans shards.  The gateway
  picks the *home* shard (largest task group), fetches the other shards'
  expert heads as serialized payloads (the UniPool view: any expert is
  queryable regardless of placement), rebuilds them, assembles one
  :class:`~repro.models.BranchedSpecialistNet` over the shared library in
  canonical task order, serializes the composite, and caches both the
  assembled model and the payload in cluster-level byte-budgeted tiers.

Because head payloads use a float-exact transport, a cross-shard composite
is **bit-identical** to single-pool :meth:`~repro.core.PoolOfExperts
.consolidate` — sharding changes where work happens, never the answer.

The cluster registers an invalidation listener on the source pool: when an
expert is re-extracted (version bump), the holding shards refresh their
references and every dependent cache entry — shard-local and cluster-level
— is dropped immediately.  :meth:`rebalance` migrates experts to the
router's current placement (after :meth:`~ShardRouter.pin` /
:meth:`~ShardRouter.replicate` changes) with the same guarantee.

**Public entry points.**  Model delivery: :meth:`ClusterGateway.serve`
(blocking) and :meth:`ClusterGateway.submit` (worker pool — or the
asyncio event loop when a :class:`repro.net.aio.AsyncClusterTransport`
is attached as :attr:`ClusterGateway.async_transport`).  Prediction:
:meth:`ClusterGateway.predict` / :meth:`ClusterGateway.submit_predict`
(micro-batched on the owning shard).  Consolidation without serving:
:meth:`ClusterGateway.get_model`.  Operations: :meth:`rebalance`,
:meth:`cache_stats`, :meth:`render_stats`, :meth:`close` (also a context
manager).

**Shard backends.**  The constructor's ``shard_factory`` decides where
shards live: the default builds in-process
:class:`~repro.cluster.shard.PoolShard`\\ s; wiring it to
:meth:`repro.net.server.ShardWorkerFleet.shard_factory` puts each shard
in a forked worker process behind a socket
(:class:`~repro.net.client.RemoteShardClient`).  The gateway only uses
the narrow surface both implement — ``is_remote()`` is the capability
probe, ``local_heads()`` the home-shard fast path — everything else,
including bit-exact cross-shard consolidation, is backend-agnostic.  Errors raised while a shard
executes a request carry a ``[shard N]`` prefix so a failure inside a
remote worker is attributable from the front end.

**Thread safety.**  All public methods are safe to call from any number
of threads: cache tiers are individually locked
(:class:`~repro.serving.cache.ByteBudgetLRU`), placement reads/writes
take ``_placement_lock``, duplicate concurrent builds coalesce through
:class:`~repro.serving.gateway.SingleFlight`, and version-guarded cache
puts serialize against the pool's invalidation listener via
``_invalidate_lock``.  Mutating entry points (:meth:`rebalance`,
:meth:`reshard`, a pool re-extraction firing ``_on_expert_update``) may
run concurrently with serving: readers see the old or the new placement,
never a torn one.  Networked backends mutate through the fenced wire
frames (``INSTALL_HEADS`` / ``DROP_HEADS`` / ``REFRESH_LIBRARY``) as a
**two-phase plan** — prepare installs on every destination, then a
commit that bumps the topology epoch and drops from the sources — so a
crash between phases leaves only duplicated heads, never missing ones
(see ``docs/resharding.md``).  Remote workers that did not negotiate the
``"mutations"`` feature degrade to the old behavior: mutation attempts
raise :class:`~repro.net.client.RemoteOperationUnsupported` and pool
updates poison the gateway until the fleet restarts.
"""

from __future__ import annotations

import itertools
import secrets
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.features import TrunkFeatureCache, array_digest
from ..core.pool import PoolOfExperts
from ..core.query import TaskSpecificModel
from ..core.server import (
    TRANSPORTS,
    deserialize_expert_heads,
    serialize_expert_heads,
    serialize_library_state,
    serialize_task_model,
)
from ..models import BranchedSpecialistNet, count_params
from ..obs.journal import JOURNAL
from ..obs.trace import TRACER
from ..serving.cache import BYTES_PER_PARAM, ByteBudgetLRU, CacheStats, merge_cache_stats
from ..serving.canonical import TaskQuery, canonical_tasks, payload_key
from ..serving.gateway import (
    GatewayConfig,
    GatewayResponse,
    PredictionResponse,
    SingleFlight,
    drop_result_entries,
    drop_task_entries,
    expert_versions,
    result_cache_key,
    result_cache_put_guarded,
    run_fused_prediction,
    run_trunk_forward,
)
from ..serving.metrics import merge_snapshots
from .metrics import ClusterMetrics
from .router import ShardRouter, plan_groups
from .shard import PoolShard

__all__ = ["ClusterConfig", "ClusterGateway", "RebalanceReport"]

#: Head-fetch transports that reconstruct weights bit-exactly.
_EXACT_TRANSPORTS = ("float32", "raw+zlib", "zstd")


def _tag_shard_error(error: BaseException, shard_id: int) -> BaseException:
    """Prefix ``[shard N]`` onto an exception raised while a shard served.

    Keeps the exception *type* (the replan-and-retry contract dispatches
    on ``KeyError``), mutating only the message — once shards are remote
    processes, a failure report without the shard id is unactionable.
    Already-tagged errors (a RemoteShardClient prefixes server-side
    failures itself) pass through unchanged.
    """
    tag = f"[shard {shard_id}]"
    if error.args and isinstance(error.args[0], str):
        if not error.args[0].startswith("[shard "):
            error.args = (f"{tag} {error.args[0]}",) + error.args[1:]
    else:
        error.args = (tag,) + tuple(error.args)
    return error


@dataclass(frozen=True)
class ClusterConfig:
    """Operating envelope of a :class:`ClusterGateway`."""

    num_shards: int = 4
    replication: int = 1
    workers_per_shard: int = 2
    #: Process-level worker replicas per shard slot (networked fleets):
    #: >1 enables failover and hedged reads.  In-process clusters ignore
    #: it — a thread crash takes the whole process with it anyway.
    replicas_per_shard: int = 1
    shard_model_cache_bytes: int = 64 << 20
    shard_payload_cache_bytes: int = 64 << 20
    composite_model_cache_bytes: int = 64 << 20
    composite_payload_cache_bytes: int = 64 << 20
    #: One content-addressed trunk-feature cache shared by every shard and
    #: the cluster front end (all shard views share one frozen library).
    trunk_cache_bytes: int = 64 << 20
    #: Version-keyed LRU of deserialized remote heads, so cross-shard
    #: composites stop refetching the same expert payload per build.
    remote_head_cache_bytes: int = 32 << 20
    #: Prediction-result (logits) cache budget — per shard gateway *and*
    #: for the cluster-level cross-shard predict path (0 disables).
    result_cache_bytes: int = 8 << 20
    #: Micro-batch knobs forwarded to every shard gateway: hard cap on
    #: images per ``submit_predict`` drain, and the adaptive window floor.
    max_batch_images: int = 2048
    min_batch_images: int = 64
    ttl_seconds: Optional[float] = None
    #: Wire codec for cross-shard head fetches; must be float-exact so
    #: cross-shard consolidation matches a single pool bit-for-bit.
    fetch_transport: str = "raw+zlib"
    router_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.workers_per_shard < 1:
            raise ValueError("workers_per_shard must be >= 1")
        if self.replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be >= 1")
        if self.fetch_transport not in _EXACT_TRANSPORTS:
            raise ValueError(
                f"fetch_transport must be float-exact, one of {_EXACT_TRANSPORTS}"
            )

    def shard_gateway_config(self) -> GatewayConfig:
        return GatewayConfig(
            max_workers=self.workers_per_shard,
            model_cache_bytes=self.shard_model_cache_bytes,
            payload_cache_bytes=self.shard_payload_cache_bytes,
            trunk_cache_bytes=self.trunk_cache_bytes,
            result_cache_bytes=self.result_cache_bytes,
            max_batch_images=self.max_batch_images,
            min_batch_images=self.min_batch_images,
            ttl_seconds=self.ttl_seconds,
        )


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one :meth:`ClusterGateway.rebalance` run."""

    #: ``(task, old shard ids, new shard ids)`` for every task that moved.
    moved: Tuple[Tuple[str, Tuple[int, ...], Tuple[int, ...]], ...]
    installs: int
    drops: int
    composite_entries_dropped: int
    #: Serialized payload bytes shipped shard-to-shard for the migrations
    #: (the ``fetch_transport`` codec — raw+zlib by default, not npz).
    migrated_bytes: int = 0
    #: Topology epoch the commit phase installed (0 when nothing moved —
    #: a no-op plan never bumps the fence).
    epoch: int = 0


class ClusterGateway:
    """Sharded serving front end over one :class:`PoolOfExperts`."""

    def __init__(
        self,
        pool: PoolOfExperts,
        config: Optional[ClusterConfig] = None,
        router: Optional[ShardRouter] = None,
        metrics: Optional[ClusterMetrics] = None,
        shard_factory=None,
        controller=None,
    ) -> None:
        self.pool = pool
        self.config = config or ClusterConfig()
        self.router = router or ShardRouter(
            self.config.num_shards,
            replication=self.config.replication,
            seed=self.config.router_seed,
            replicas_per_shard=self.config.replicas_per_shard,
        )
        if self.router.num_shards != self.config.num_shards:
            raise ValueError(
                f"router has {self.router.num_shards} shards, "
                f"config says {self.config.num_shards}"
            )
        if router is not None and router.replication != self.config.replication:
            raise ValueError(
                f"router replicates {router.replication}x, "
                f"config says {self.config.replication}x — make them agree "
                "(per-task overrides go through router.replicate())"
            )
        self.metrics = metrics or ClusterMetrics()
        self._placement_lock = threading.Lock()
        self._placement: Dict[str, Tuple[int, ...]] = {
            name: self.router.shards_for(name) for name in pool.expert_names()
        }
        # shard contents are the placement map inverted (empty shards stay:
        # a shard with no experts is still serving capacity)
        assignment: Dict[int, List[str]] = {
            shard_id: [] for shard_id in range(self.config.num_shards)
        }
        for name in sorted(self._placement):
            for shard_id in self._placement[name]:
                assignment[shard_id].append(name)
        # one shared trunk-feature cache: every shard view runs the same
        # frozen library, so features are reusable cluster-wide
        self.trunk_cache = TrunkFeatureCache(
            self.config.trunk_cache_bytes, ttl_seconds=self.config.ttl_seconds
        )
        # shard_factory(shard_id, task_names, gateway_config, trunk_cache)
        # decides the backend: in-process PoolShards by default, or remote
        # worker processes via repro.net's ShardWorkerFleet.shard_factory.
        if shard_factory is None:
            def shard_factory(shard_id, task_names, gateway_config, trunk_cache):
                return PoolShard(
                    shard_id, pool, task_names, gateway_config, trunk_cache=trunk_cache
                )

        # kept so reshard() can spawn shards for grown slots through the
        # same backend (in-process or a fleet's networked factory)
        self._shard_factory = shard_factory
        self.shards: List[PoolShard] = [
            shard_factory(
                shard_id,
                tuple(assignment[shard_id]),
                self.config.shard_gateway_config(),
                self.trunk_cache,
            )
            for shard_id in range(self.config.num_shards)
        ]
        #: Optional repro.net.aio.AsyncClusterTransport; when set,
        #: :meth:`submit` dispatches onto its event loop instead of the
        #: thread-pool executor.
        self.async_transport = None
        #: Set to the mutated task name when the pool changed under a
        #: networked backend whose workers cannot accept mutation frames;
        #: every serving entry point refuses until the fleet is restarted.
        self._remote_stale: Optional[str] = None
        #: Topology epoch: bumped by every committed rebalance/reshard and
        #: carried on every mutation frame so a worker can fence out frames
        #: from superseded plans.
        self._epoch = 0
        #: Attached ShardWorkerFleet (networked deployments) — lets
        #: reshard() spawn and retire worker slots; see attach_fleet().
        self._fleet = None
        self._mutation_seq = itertools.count(1)
        self.model_cache = ByteBudgetLRU(
            self.config.composite_model_cache_bytes, ttl_seconds=self.config.ttl_seconds
        )
        self.payload_cache = ByteBudgetLRU(
            self.config.composite_payload_cache_bytes,
            ttl_seconds=self.config.ttl_seconds,
        )
        # deserialized remote heads, keyed (task, version): a version bump
        # can never hit a stale entry, and updates also drop bytes eagerly
        self.remote_head_cache = ByteBudgetLRU(
            self.config.remote_head_cache_bytes, ttl_seconds=self.config.ttl_seconds
        )
        # cross-shard prediction answers, keyed (digest, tasks, versions) —
        # single-shard predictions use the owning shard gateway's tier
        self.result_cache = ByteBudgetLRU(
            self.config.result_cache_bytes, ttl_seconds=self.config.ttl_seconds
        )
        self._flights = SingleFlight()
        # makes version-guarded composite puts atomic against invalidation
        # (see ServingGateway._invalidate_lock for the race this closes)
        self._invalidate_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False
        self._listener = self._on_expert_update
        pool.add_listener(self._listener)
        #: Optional repro.control.CacheController: biases eviction in the
        #: composite tiers, learns build/wire costs, prefetches hot
        #: payloads and replicates hot experts through the router.
        self.controller = controller
        if controller is not None:
            controller.attach_cluster(self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def available_tasks(self) -> Tuple[str, ...]:
        with self._placement_lock:
            return tuple(sorted(self._placement))

    def shards_of(self, task: str) -> Tuple[int, ...]:
        """Which shards currently hold ``task`` (primary first)."""
        with self._placement_lock:
            return self._placement[task]

    @property
    def epoch(self) -> int:
        """The committed topology epoch (0 until the first rebalance)."""
        return self._epoch

    def attach_fleet(self, fleet) -> None:
        """Wire the worker fleet so :meth:`reshard` can grow/shrink slots.

        Called by :class:`~repro.net.server.NetworkedCluster`; optional —
        without it, rebalance still works over remote shards, but reshard
        of a networked cluster has no way to spawn or retire processes.
        """
        self._fleet = fleet

    def _mutation_id(self, kind: str) -> str:
        """A unique id for one mutation frame (dedup key on the workers)."""
        return f"{kind}-{next(self._mutation_seq)}-{secrets.token_hex(4)}"

    def _require_mutation_capable(self, operation: str) -> None:
        """Raise the typed capability error if any remote shard lacks the
        mutation frames (feature negotiation said no, or the worker
        predates the protocol)."""
        lagging = [
            shard.shard_id
            for shard in self.shards
            if shard.is_remote() and not getattr(shard, "supports_mutations", False)
        ]
        if lagging:
            from ..net.client import RemoteOperationUnsupported

            raise RemoteOperationUnsupported(
                f"{operation} needs the mutation frames (INSTALL_HEADS/"
                f"DROP_HEADS) on every remote shard, but shard(s) "
                f"{lagging} did not negotiate the 'mutations' feature — "
                "upgrade the workers or authenticate with the fleet's "
                "shared token in HELLO"
            )

    def _all_remote_mutation_capable(self) -> bool:
        return all(
            getattr(shard, "supports_mutations", False)
            for shard in self.shards
            if shard.is_remote()
        )

    def serve(self, tasks: TaskQuery, transport: str = "float32") -> GatewayResponse:
        """Serve one query on the calling thread (blocking)."""
        return self._serve(tasks, transport, enqueued_at=None)

    def submit(
        self, tasks: TaskQuery, transport: str = "float32"
    ) -> "Future[GatewayResponse]":
        """Dispatch one query onto the cluster worker pool.

        The pool is sized ``workers_per_shard * num_shards`` — serving
        capacity grows with the cluster.  With an
        :attr:`async_transport` attached (networked deployments), the
        query dispatches onto its event loop instead: same future
        contract, no worker thread held per in-flight request.
        """
        transport_layer = self.async_transport
        if transport_layer is not None:
            return transport_layer.submit(tasks, transport)
        enqueued_at = perf_counter()
        return self._ensure_executor().submit(self._serve, tasks, transport, enqueued_at)

    def get_model(self, tasks: TaskQuery) -> TaskSpecificModel:
        """The consolidated (possibly cross-shard) model, canonical order."""
        names = canonical_tasks(tasks)
        plan = self._plan(names)
        if len(plan) == 1:
            (shard_id,) = plan
            shard = self.shards[shard_id]
            if not shard.is_remote():
                return shard.get_model(names)
            # remote shard: assemble at the front end from fetched heads
            # (the composite builder handles a one-group plan fine)
        model, _ = self._composite_model(names, plan)
        return model

    def prefetch(self, tasks: TaskQuery, transport: str = "float32") -> bool:
        """Warm the payload cache for ``tasks`` without serving a request.

        Single-shard plans delegate to the owning in-process shard
        gateway (its cache is the one a future serve will consult); plans
        landing on a *remote* single shard return False — prefetch must
        not push build work over the wire.  Cross-shard plans build into
        the cluster's own composite payload cache under the usual single
        flight + version guard, counted as ``prefetch_builds``.
        """
        names = canonical_tasks(tasks)
        plan = self._plan(names)
        if len(plan) == 1:
            (shard_id,) = plan
            shard = self.shards[shard_id]
            if shard.is_remote():
                return False
            return shard.prefetch(names, transport)
        key = payload_key(names, transport)
        if self.payload_cache.contains(key):
            return False
        with self.metrics.stage("prefetch"):
            self._flights.run(
                key, lambda: self._build_payload(names, plan, transport, key)
            )
        self.metrics.increment("prefetch_builds")
        return True

    def predict(self, images: np.ndarray, tasks: TaskQuery) -> PredictionResponse:
        """Prediction through the fused fast path, routed like :meth:`serve`.

        Single-shard plans delegate to the owning shard's gateway
        (model/trunk caches, fused heads); cross-shard plans assemble the
        composite model (remote-head cache + fetch) and predict at the
        cluster front end.  Trunk features come from the one cluster-wide
        content-addressed cache either way.
        """
        images = np.asarray(images, dtype=np.float32)
        names = canonical_tasks(tasks)
        start = perf_counter()
        self.metrics.increment("predictions")
        self.metrics.record_tasks(names)
        with TRACER.span("cluster.predict") as span:
            span.tag("tasks", len(names))
            span.tag("batch", int(images.shape[0]))
            try:
                # same one-retry contract as _serve: a concurrent rebalance
                # (or a reshard retiring the planned shard) can invalidate a
                # plan between planning and serving
                for attempt in (0, 1):
                    epoch_before = self._epoch
                    try:
                        return self._predict_planned(images, names, start)
                    except KeyError:
                        with self._placement_lock:
                            still_placed = all(n in self._placement for n in names)
                        if attempt == 1 or not still_placed:
                            raise
                        self.metrics.increment("plan_retries")
                    except (ConnectionError, OSError, RuntimeError, IndexError):
                        if attempt == 1 or self._epoch == epoch_before:
                            raise
                        self.metrics.increment("plan_retries")
            except BaseException:
                self.metrics.increment("errors")
                raise
            raise AssertionError("unreachable")  # pragma: no cover

    def submit_predict(
        self, images: np.ndarray, tasks: TaskQuery
    ) -> "Future[PredictionResponse]":
        """Dispatch a prediction onto the cluster, micro-batched where possible.

        Single-shard queries join the owning shard gateway's micro-batcher
        (coalescing their trunk forwards with other concurrent requests on
        that shard); cross-shard queries run on the cluster executor.
        Every failure — including a planning error — arrives through the
        returned future, and a shard-path KeyError caused by a concurrent
        rebalance is retried once through the replanning inline path, the
        same contract :meth:`predict` gives synchronous callers.
        """
        images = np.asarray(images, dtype=np.float32)
        names = canonical_tasks(tasks)
        result: "Future[PredictionResponse]" = Future()
        try:
            plan = self._plan(names)
        except KeyError as error:
            # count the request too, so errors/predictions stays a rate
            self.metrics.increment("predictions")
            self.metrics.increment("errors")
            result.set_exception(error)
            return result
        if len(plan) > 1:
            try:
                inner = self._ensure_executor().submit(self.predict, images, names)
            except BaseException as error:  # closing: keep the future-only contract
                result.set_exception(error)
            else:
                self._chain(inner, result)
            return result
        (shard_id,) = plan
        start = perf_counter()
        try:
            inner = self.shards[shard_id].submit_predict(images, names)
        except BaseException as error:  # shard closing: future-only contract
            self.metrics.increment("errors")
            result.set_exception(_tag_shard_error(error, shard_id))
            return result

        # cluster-level counters are recorded at completion, not dispatch:
        # the retry path delegates to predict() (which records fan-out,
        # shard traffic and counts itself), so recording here too would
        # tally one request twice
        def relay(done: "Future[PredictionResponse]") -> None:
            error = done.exception()
            if error is None:
                self.metrics.record_fanout(1)
                self.metrics.record_shard_requests((shard_id,))
                self.metrics.increment("predictions")
                self.metrics.record_tasks(names)
                self.metrics.observe("predict_total", perf_counter() - start)
                result.set_result(done.result())
                return
            with self._placement_lock:
                still_placed = all(n in self._placement for n in names)
            if isinstance(error, KeyError) and still_placed:
                # rebalance moved a task off the planned shard between
                # planning and draining; the inline path replans + retries
                self.metrics.increment("plan_retries")
                try:
                    retry = self._ensure_executor().submit(self.predict, images, names)
                except BaseException as submit_error:  # gateway closing
                    result.set_exception(submit_error)
                else:
                    self._chain(retry, result)
            else:
                self.metrics.increment("predictions")
                self.metrics.increment("errors")
                result.set_exception(_tag_shard_error(error, shard_id))

        inner.add_done_callback(relay)
        return result

    @staticmethod
    def _chain(inner: "Future[PredictionResponse]", result: "Future[PredictionResponse]") -> None:
        """Propagate ``inner``'s outcome into ``result`` when it completes."""

        def relay(done: "Future[PredictionResponse]") -> None:
            error = done.exception()
            if error is None:
                result.set_result(done.result())
            else:
                result.set_exception(error)

        inner.add_done_callback(relay)

    def _predict_planned(
        self, images: np.ndarray, names: Tuple[str, ...], start: float
    ) -> PredictionResponse:
        plan = self._plan(names)
        self.metrics.record_fanout(len(plan))
        if len(plan) == 1:
            (shard_id,) = plan
            self.metrics.record_shard_requests((shard_id,))
            try:
                response = self.shards[shard_id].predict(images, names)
            except BaseException as error:
                raise _tag_shard_error(error, shard_id)
            self.metrics.observe("predict_total", perf_counter() - start)
            return response

        self.metrics.increment("cross_shard")
        # result lookup FIRST: the key snapshots expert versions before the
        # composite build (check-before-build — a key built after could pair
        # stale logits with fresh versions), and a hit skips the build
        # entirely, including its cross-shard head fetches
        cached = key = digest = None
        trunk_hit = model_hit = False
        if self.result_cache.budget_bytes:
            digest = array_digest(images)
            key = result_cache_key(self.result_cache, self.pool, names, digest)
            cached = self.result_cache.get(key)
        result_hit = cached is not None
        if result_hit:
            self.metrics.increment("predict_result_hits")
            _logits, ids = cached
        else:
            model, model_hit = self._composite_model(names, plan)
            if not model_hit:
                # a composite-cache hit touches no shard, a build fetched
                # from every shard in the plan
                self.metrics.record_shard_requests(list(plan))
            features, trunk_hit = self.trunk_cache.get_or_compute(
                images,
                lambda batch: run_trunk_forward(self.pool.library, batch, self.metrics),
                digest=digest,
            )
            ids, logits = run_fused_prediction(model, features, self.metrics)
            if key is not None:
                result_cache_put_guarded(
                    self.result_cache, self.pool, self._invalidate_lock, key, logits, ids
                )
        service_seconds = perf_counter() - start
        self.metrics.observe("predict_total", service_seconds)
        return PredictionResponse(
            class_ids=ids,
            tasks=names,
            batch_size=int(images.shape[0]),
            queue_seconds=0.0,
            service_seconds=service_seconds,
            model_cache_hit=model_hit,
            trunk_cache_hit=trunk_hit,
            coalesced=False,
            result_cache_hit=result_hit,
        )

    def cache_stats(self) -> Dict[str, CacheStats]:
        """Aggregated tiers (``model``/``payload``) plus the cluster tiers.

        Works over the narrow shard surface (one ``cache_stats()`` per
        shard — a STATS round trip when the shard is remote).
        """
        return self._merge_cache_stats([shard.cache_stats() for shard in self.shards])

    def _merge_cache_stats(self, shard_stats) -> Dict[str, CacheStats]:
        """Aggregate already-collected per-shard tiers with the cluster's."""
        composite_model = self.model_cache.stats()
        composite_payload = self.payload_cache.stats()
        # the in-process trunk cache is ONE instance shared by every local
        # shard gateway — merging those copies would double-count it; a
        # remote worker's trunk cache is its own instance, so it does merge
        trunk_parts = [self.trunk_cache.stats()]
        for shard, stats in zip(self.shards, shard_stats):
            if shard.is_remote() and "trunk" in stats:
                trunk_parts.append(stats["trunk"])
        return {
            "model": merge_cache_stats(
                [s["model"] for s in shard_stats] + [composite_model]
            ),
            "payload": merge_cache_stats(
                [s["payload"] for s in shard_stats] + [composite_payload]
            ),
            "composite_model": composite_model,
            "composite_payload": composite_payload,
            "trunk": merge_cache_stats(trunk_parts),
            "remote_heads": self.remote_head_cache.stats(),
            "result": merge_cache_stats(
                [s["result"] for s in shard_stats] + [self.result_cache.stats()]
            ),
        }

    def unified_snapshot(self) -> Dict[str, object]:
        """One merged unified-schema snapshot for the whole deployment.

        Combines the cluster front end's own metrics with every shard's
        (a STATS round trip per remote shard, a direct metrics read for
        in-process shards) via
        :func:`~repro.serving.metrics.merge_snapshots` — the scrape
        exporter consumes this for networked and local clusters alike.
        """
        parts = [self.metrics.snapshot(include_histograms=True)]
        for shard in self.shards:
            if shard.is_remote():
                parts.append(shard.stats())
            else:
                parts.append(shard.gateway.metrics.snapshot(include_histograms=True))
        merged = merge_snapshots(parts)
        # circuit-breaker states are front-end client state, not worker
        # state, so they attach *after* the merge (merge_snapshots drops
        # keys it doesn't know — deliberately, for forward compat)
        breakers: Dict[str, Dict[str, str]] = {}
        for shard in self.shards:
            states = getattr(shard, "breaker_states", None)
            if callable(states):
                breakers[str(shard.shard_id)] = {
                    str(replica): state for replica, state in states().items()
                }
        if breakers:
            merged["breakers"] = breakers
        # same post-merge treatment for the topology epoch: the committed
        # epoch is front-end state, per-replica epochs are client-observed
        # acks (skew across replicas of one shard = a mutation only
        # partially landed — the health scorer flags it)
        merged["epoch"] = self._epoch
        epochs: Dict[str, Dict[str, int]] = {}
        for shard in self.shards:
            replica_epochs = getattr(shard, "replica_epochs", None)
            if callable(replica_epochs):
                observed = replica_epochs()
                if observed:
                    epochs[str(shard.shard_id)] = {
                        str(replica): int(value)
                        for replica, value in observed.items()
                    }
        if epochs:
            merged["epochs"] = epochs
        return merged

    def render_stats(self) -> str:
        # collect each shard's tiers ONCE (a STATS round trip per remote
        # shard) and reuse them for both the merged view and the per-shard
        # table, instead of paying a second sweep inside render()
        shard_stats = [shard.cache_stats() for shard in self.shards]
        return self.metrics.render(
            shards=self.shards,
            cache_stats=self._merge_cache_stats(shard_stats),
            shard_cache_stats=shard_stats,
        )

    def close(self) -> None:
        self.pool.remove_listener(self._listener)
        transport_layer, self.async_transport = self.async_transport, None
        if transport_layer is not None:
            transport_layer.close()
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ClusterGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _serve(
        self, tasks: TaskQuery, transport: str, enqueued_at: Optional[float]
    ) -> GatewayResponse:
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
        start = perf_counter()
        queue_seconds = 0.0
        if enqueued_at is not None:
            queue_seconds = start - enqueued_at
            self.metrics.observe("queue", queue_seconds)
        self.metrics.increment("requests")
        with TRACER.span("cluster.serve") as span:
            span.tag("transport", transport)
            try:
                names = canonical_tasks(tasks)
                self.metrics.record_tasks(names)
                if self.controller is not None:
                    self.controller.record_request(names, transport)
                span.tag("tasks", len(names))
                # One retry: a rebalance can drop an expert from the shard a
                # concurrent plan chose between planning and serving; the task
                # is still in the cluster, so a fresh plan finds its new home.
                # A reshard can also *retire* the planned shard outright —
                # transport-level failures replan once iff the topology epoch
                # moved since this attempt planned (otherwise the failure is
                # a real outage and retrying the same plan can't help).
                for attempt in (0, 1):
                    epoch_before = self._epoch
                    try:
                        return self._serve_planned(names, transport, start, queue_seconds)
                    except KeyError:
                        with self._placement_lock:
                            still_placed = all(n in self._placement for n in names)
                        if attempt == 1 or not still_placed:
                            raise  # genuinely unknown task, or still failing
                        self.metrics.increment("plan_retries")
                    except (ConnectionError, OSError, RuntimeError, IndexError):
                        if attempt == 1 or self._epoch == epoch_before:
                            raise
                        self.metrics.increment("plan_retries")
            except BaseException:
                self.metrics.increment("errors")
                raise
            raise AssertionError("unreachable")  # pragma: no cover

    def _serve_planned(
        self,
        names: Tuple[str, ...],
        transport: str,
        start: float,
        queue_seconds: float,
    ) -> GatewayResponse:
        with self.metrics.stage("route"):
            plan = self._plan(names)
        self.metrics.record_fanout(len(plan))

        if len(plan) == 1:
            (shard_id,) = plan
            # per-shard traffic counts requests that actually reach a shard
            # (composite-cache hits and coalesced followers touch none)
            self.metrics.record_shard_requests((shard_id,))
            try:
                response = self.shards[shard_id].serve(names, transport)
            except BaseException as error:
                raise _tag_shard_error(error, shard_id)
            if response.coalesced:
                self.metrics.increment("coalesced")
            if (
                self.controller is not None
                and response.payload_cache_hit
                # single-shard payloads live in the shard gateway's cache,
                # but its key recipe is the same (names, transport) pair
                and self.controller.was_prefetched(payload_key(names, transport))
            ):
                self.metrics.increment("prefetch_hits")
            if queue_seconds:
                # the shard didn't see the cluster executor's queue wait
                response = replace(response, queue_seconds=queue_seconds)
            self.metrics.observe("total", perf_counter() - start)
            return response

        self.metrics.increment("cross_shard")
        key = payload_key(names, transport)
        payload = self.payload_cache.get(key)
        if payload is not None:
            model_hit, coalesced, payload_hit = False, False, True
            if self.controller is not None and self.controller.was_prefetched(key):
                self.metrics.increment("prefetch_hits")
        else:
            payload_hit = False
            (payload, model_hit), coalesced = self._flights.run(
                key, lambda: self._build_payload(names, plan, transport, key)
            )
            if coalesced:
                self.metrics.increment("coalesced")

        service_seconds = perf_counter() - start
        self.metrics.observe("total", service_seconds)
        return GatewayResponse(
            payload=payload,
            tasks=names,
            transport=transport,
            payload_bytes=len(payload),
            queue_seconds=queue_seconds,
            service_seconds=service_seconds,
            model_cache_hit=model_hit,
            payload_cache_hit=payload_hit,
            coalesced=coalesced,
        )

    def _check_remote_stale(self) -> None:
        """Refuse to serve once the pool diverged from networked workers.

        Set by the invalidation listener when a pool mutation could not be
        pushed into running worker processes; failing at the serving
        boundary (instead of raising from inside the listener loop, which
        would skip later listeners) keeps every other gateway on the pool
        consistent while making this one loudly unusable.
        """
        stale = self._remote_stale
        if stale is not None:
            raise RuntimeError(
                f"pool update for {stale!r} could not propagate to networked "
                "shard workers; this gateway dropped its caches and refuses "
                "to serve potentially inconsistent answers — restart the "
                "worker fleet to recover (see ROADMAP: shard autoscaling "
                "over the socket boundary)"
            )

    def _plan(self, names: Tuple[str, ...]) -> Dict[int, Tuple[str, ...]]:
        """Per-shard task groups from the *current* placement (not the
        router's — between a ``pin()`` and the ``rebalance()`` that applies
        it, the placement map is what matches shard contents).

        Every serving path (sync, micro-batched, asyncio) plans through
        here, which makes it the one choke point for the remote-staleness
        refusal."""
        self._check_remote_stale()
        with self._placement_lock:
            try:
                candidates = {name: self._placement[name] for name in names}
            except KeyError as error:
                raise KeyError(
                    f"no expert extracted for primitive task {error.args[0]!r}; "
                    f"available: {sorted(self._placement)}"
                ) from None
        return plan_groups(candidates)

    def _build_payload(
        self,
        names: Tuple[str, ...],
        plan: Dict[int, Tuple[str, ...]],
        transport: str,
        key,
    ) -> Tuple[bytes, bool]:
        build_start = perf_counter()
        versions = expert_versions(self.pool, names)
        self.metrics.record_shard_requests(list(plan))
        model, model_hit = self._composite_model(names, plan)
        payload = self._serialize_composite(model, names, versions, transport, key)
        if self.controller is not None:
            # measured gather+assemble+serialize cost for the eviction scores
            self.controller.record_build_cost(
                names, perf_counter() - build_start, len(payload)
            )
        return payload, model_hit

    def _composite_model(
        self, names: Tuple[str, ...], plan: Dict[int, Tuple[str, ...]]
    ) -> Tuple[TaskSpecificModel, bool]:
        model = self.model_cache.get(names)
        if model is not None:
            return model, True

        def build() -> TaskSpecificModel:
            versions = expert_versions(self.pool, names)
            heads = self._gather_heads(plan)
            return self._assemble_composite(names, heads, versions)

        built, _ = self._flights.run(("model", names), build)
        return built, False

    # ------------------------------------------------------------------
    # Composite build stages (shared with the asyncio transport, which
    # replaces _gather_heads with a concurrent asyncio.gather and runs the
    # assemble/serialize stages in the loop's executor)
    # ------------------------------------------------------------------
    def _gather_heads(self, plan: Dict[int, Tuple[str, ...]]) -> Dict[str, object]:
        """Collect every planned expert head, local or over the wire.

        The home shard (largest task group, ties → lowest id) contributes
        plain references when it is in-process; every other group — and
        the home group too, when the shard is remote — comes through the
        version-keyed remote-head LRU and, on miss, a ``fetch_heads``
        round trip in the float-exact ``fetch_transport`` codec.
        """
        home = max(plan, key=lambda shard_id: (len(plan[shard_id]), -shard_id))
        heads: Dict[str, object] = {}
        with self.metrics.stage("fetch"):
            for shard_id, group in plan.items():
                shard = self.shards[shard_id]
                if shard_id == home:
                    local = shard.local_heads()
                    if local is not None:
                        heads.update(local)
                        continue
                cached, missing = self._cached_remote_heads(group)
                heads.update(cached)
                if not missing:
                    continue
                fetch_start = perf_counter()
                try:
                    raw = shard.fetch_heads(missing, self.config.fetch_transport)
                except BaseException as error:
                    raise _tag_shard_error(error, shard_id)
                self.metrics.increment("remote_fetches")
                self.metrics.increment("remote_fetch_bytes", len(raw))
                if self.controller is not None:
                    # wire roundtrip + bytes, amortized over the fetched
                    # tasks: the remote-head tier's eviction cost signal
                    self.controller.record_wire_cost(
                        missing, perf_counter() - fetch_start, len(raw)
                    )
                heads.update(self._ingest_head_payload(raw))
        return heads

    def _cached_remote_heads(
        self, group: Tuple[str, ...]
    ) -> Tuple[Dict[str, object], List[str]]:
        """Split a task group into (cached heads, names still to fetch).

        The remote-head LRU is keyed ``(task, version)``: a version bump
        can never hit a stale entry, so repeat cross-shard builds skip the
        refetch without any staleness risk.
        """
        heads: Dict[str, object] = {}
        missing: List[str] = []
        for name in group:
            cached = self.remote_head_cache.get(
                (name, self.pool.expert_version(name))
            )
            if cached is not None:
                heads[name] = cached
                self.metrics.increment("remote_head_hits")
            else:
                missing.append(name)
        return heads, missing

    def _ingest_head_payload(self, raw: bytes) -> Dict[str, object]:
        """Deserialize one fetched head payload into the remote-head LRU."""
        heads: Dict[str, object] = {}
        for name, remote in deserialize_expert_heads(raw).items():
            heads[name] = remote.head
            self.remote_head_cache.put(
                (name, remote.version),
                remote.head,
                count_params(remote.head) * BYTES_PER_PARAM,
            )
        return heads

    def _assemble_composite(
        self,
        names: Tuple[str, ...],
        heads: Dict[str, object],
        versions,
    ) -> TaskSpecificModel:
        """One branched net over the shared library, version-guard cached."""
        with self.metrics.stage("assemble"):
            network = BranchedSpecialistNet(
                self.pool.library, [(name, heads[name]) for name in names]
            )
            network.eval()
            built = TaskSpecificModel(network, self.pool.hierarchy.composite(names))
        with self._invalidate_lock:
            if versions == expert_versions(self.pool, names):
                self.model_cache.put(names, built, built.cache_nbytes())
        return built

    def _serialize_composite(
        self,
        model: TaskSpecificModel,
        names: Tuple[str, ...],
        versions,
        transport: str,
        key,
    ) -> bytes:
        """Serialize a composite and cache the payload under the version guard.

        ``versions`` was snapshotted *before* the model was acquired:
        don't cache if an expert was re-extracted while we were building —
        the invalidation listener fired before this entry existed (the
        lock makes check+put atomic against that listener).
        """
        with self.metrics.stage("serialize"):
            payload = serialize_task_model(
                model.network, model.task, self.pool.config, transport=transport
            )
        with self._invalidate_lock:
            if versions == expert_versions(self.pool, names):
                self.payload_cache.put(key, payload, len(payload))
        return payload

    # ------------------------------------------------------------------
    # Invalidation + rebalance
    # ------------------------------------------------------------------
    def _invalidate_composites(self, name: str) -> int:
        """Drop cluster-level entries that include expert ``name``.

        Remote-head and prediction-result entries are version-keyed, so a
        stale one can never be *served* — dropping here just releases the
        bytes immediately.
        """
        dropped = 0
        for key in self.remote_head_cache.keys():
            if key[0] == name:
                dropped += self.remote_head_cache.discard(key)
        with self._invalidate_lock:
            return (
                dropped
                + drop_task_entries(self.model_cache, self.payload_cache, name)
                + drop_result_entries(self.result_cache, name)
            )

    def _on_expert_update(self, name: str, version: int) -> None:
        """Source pool re-extracted (or removed) an expert: resync shards."""
        from ..core.pool import LIBRARY_TASK

        has_remote = any(shard.is_remote() for shard in self.shards)
        if JOURNAL.enabled:
            JOURNAL.emit(
                "library_update" if name == LIBRARY_TASK else "expert_update",
                task=name,
                version=version,
                remote=has_remote,
            )
        if has_remote and not self._all_remote_mutation_capable():
            # Legacy networked backend: a pool mutation cannot propagate
            # into workers that lack the mutation frames, so do the only
            # safe things — drop the front-end composite tiers (this
            # gateway must not keep serving cached artifacts of the
            # superseded state) and POISON the gateway, WITHOUT touching
            # the placement map or the workers and without raising here:
            # an exception from inside the pool's listener loop would skip
            # every listener registered after this one, corrupting *their*
            # caches.  The next serving call fails loudly instead (see
            # _check_remote_stale); restart the fleet to recover.
            if name == LIBRARY_TASK:
                with self._invalidate_lock:
                    self.model_cache.clear()
                    self.payload_cache.clear()
                    self.result_cache.clear()
                self.remote_head_cache.clear()
                self.trunk_cache.clear()
            else:
                self._invalidate_composites(name)
            self.metrics.increment("invalidations")
            self.metrics.increment("remote_updates_unapplied")
            self._remote_stale = name
            return
        # Unified path: in-process shards mutate directly; mutation-capable
        # remote workers receive the same change through the fenced wire
        # frames at the *current* epoch (the placement didn't move, so no
        # bump — the worker fence admits epoch >= its own).
        try:
            if name == LIBRARY_TASK:
                # the trunk changed: repoint every shard view at the new
                # library and drop everything computed against the old one
                # (propagating the sentinel fires each shard gateway's own
                # listener, which clears caches and bumps its version guard)
                payload = None
                for shard in self.shards:
                    if shard.is_remote():
                        if payload is None:
                            payload = serialize_library_state(
                                self.pool, self.config.fetch_transport
                            )
                        shard.push_library(
                            payload,
                            epoch=self._epoch,
                            mutation_id=self._mutation_id("library"),
                        )
                        self.metrics.increment("remote_updates_pushed")
                    else:
                        shard.refresh_library(
                            self.pool.library, self.pool.library_student, version
                        )
                with self._invalidate_lock:
                    self.model_cache.clear()
                    self.payload_cache.clear()
                    self.result_cache.clear()
                self.remote_head_cache.clear()
                self.trunk_cache.clear()  # shared with every local shard gateway
                self.metrics.increment("invalidations")
                return
            head = self.pool.experts.get(name)
            with self._placement_lock:
                placed = self._placement.get(name)
                if head is not None and placed is None:
                    # brand-new expert: place it per the router
                    placed = self.router.shards_for(name)
                    self._placement[name] = placed
                elif head is None and placed is not None:
                    del self._placement[name]
            if head is not None:
                payload = None
                for shard_id in placed:
                    shard = self.shards[shard_id]
                    if shard.is_remote():
                        if payload is None:
                            payload = serialize_expert_heads(
                                self.pool, (name,), self.config.fetch_transport
                            )
                        shard.install_heads(
                            payload,
                            epoch=self._epoch,
                            mutation_id=self._mutation_id("install"),
                        )
                        self.metrics.increment("remote_updates_pushed")
                    else:
                        shard.install_expert(name, head, version)
            elif placed is not None:
                for shard_id in placed:
                    shard = self.shards[shard_id]
                    if shard.is_remote():
                        shard.drop_heads(
                            [name],
                            epoch=self._epoch,
                            mutation_id=self._mutation_id("drop"),
                        )
                        self.metrics.increment("remote_updates_pushed")
                    else:
                        shard.drop_expert(name)
            self.metrics.increment("invalidations")
            self._invalidate_composites(name)
        except Exception:
            if not has_remote:
                raise
            # a wire push failed after retries: fall back to the poison
            # contract — drop every front-end tier and refuse to serve
            # (raising from the listener loop would skip later listeners)
            with self._invalidate_lock:
                self.model_cache.clear()
                self.payload_cache.clear()
                self.result_cache.clear()
            self.remote_head_cache.clear()
            self.trunk_cache.clear()
            self.metrics.increment("invalidations")
            self.metrics.increment("remote_updates_unapplied")
            self._remote_stale = name

    def _serialize_migration_heads(
        self, source_id: Optional[int], names: Tuple[str, ...]
    ) -> bytes:
        """Bulk-serialize ``names`` off their source for a migration.

        This is the shard-to-shard wire boundary: one flat ``raw+zlib``
        payload (``config.fetch_transport`` — never the npz container) per
        (source, destination) pair.  A remote destination receives the
        bytes verbatim inside an ``INSTALL_HEADS`` frame; a local one
        rebuilds head *copies* from them.  The codec is float-exact, so a
        migrated expert answers bit-identically to the original.  Migrated
        payload bytes are counted in :class:`ClusterMetrics`
        (``migrated_bytes``/``expert_migrations``).  Falls back to the
        parent pool when the source shard is remote (no in-process pool to
        read) or no longer holds a task (a re-extraction raced the move).
        """
        source_pool = self.pool
        if source_id is not None:
            shard_pool = getattr(self.shards[source_id], "pool", None)
            if shard_pool is not None and all(
                name in shard_pool.experts for name in names
            ):
                source_pool = shard_pool
        payload = serialize_expert_heads(
            source_pool, names, self.config.fetch_transport
        )
        self.metrics.increment("migrated_bytes", len(payload))
        self.metrics.increment("expert_migrations", len(names))
        # one payload per (source, destination) route — the bulk property
        self.metrics.increment("migration_payloads")
        return payload

    def _plan_moves(
        self,
        target: Dict[str, Tuple[int, ...]],
        born: Set[int],
    ) -> Tuple[
        List[Tuple[str, Tuple[int, ...], Tuple[int, ...], Optional[int]]],
        Dict[Tuple[Optional[int], int], List[str]],
    ]:
        """Diff the live placement against ``target`` into per-expert move
        plans and bulk (source, destination) transfer routes.

        Destinations in ``born`` (shards spawned this reshard already
        holding their full task set — construction is an implicit install)
        are excluded from the transfer routes but still appear in the
        plans, so the report and the placement repoint stay complete.
        """
        with self._placement_lock:
            old_placement = dict(self._placement)
        plans: List[Tuple[str, Tuple[int, ...], Tuple[int, ...], Optional[int]]] = []
        transfers: Dict[Tuple[Optional[int], int], List[str]] = {}
        for name in sorted(target):
            old = old_placement.get(name, ())
            new = target[name]
            if set(old) == set(new):
                with self._placement_lock:
                    self._placement[name] = new
                continue
            source = old[0] if old else None
            plans.append((name, old, new, source))
            for shard_id in new:
                if shard_id not in old and shard_id not in born:
                    transfers.setdefault((source, shard_id), []).append(name)
        return plans, transfers

    def _apply_two_phase(
        self,
        plans: List[Tuple[str, Tuple[int, ...], Tuple[int, ...], Optional[int]]],
        transfers: Dict[Tuple[Optional[int], int], List[str]],
        retiring: Set[int] = frozenset(),
        force_epoch: bool = False,
    ) -> Tuple[
        List[Tuple[str, Tuple[int, ...], Tuple[int, ...]]], int, int, int, int, int
    ]:
        """Execute a migration plan as prepare → commit.

        **Prepare** serializes each route once and installs on every
        destination at ``epoch + 1``.  A crash here leaves extra head
        copies on destinations — harmless duplicates; the placement map
        still points at the sources, and a retry re-installs idempotently.

        **Commit** bumps the gateway epoch, repoints the placement, drops
        from the sources in per-shard batches, and fences every untouched
        remote shard forward with an empty ``DROP_HEADS`` so a frame from
        a superseded plan can never land anywhere in the fleet.  Shards in
        ``retiring`` are skipped for drops and fences — they close right
        after commit.

        Returns ``(moved, installs, drops, composites_dropped,
        migrated_bytes, epoch)`` with ``epoch`` 0 when nothing committed.
        """
        moved: List[Tuple[str, Tuple[int, ...], Tuple[int, ...]]] = []
        installs = drops = composites_dropped = migrated_bytes = 0
        if not plans and not force_epoch:
            return moved, installs, drops, composites_dropped, migrated_bytes, 0
        next_epoch = self._epoch + 1
        # ---- prepare -------------------------------------------------
        for route, names in transfers.items():
            payload = self._serialize_migration_heads(route[0], tuple(names))
            migrated_bytes += len(payload)
            dest = self.shards[route[1]]
            if dest.is_remote():
                dest.install_heads(
                    payload,
                    epoch=next_epoch,
                    mutation_id=self._mutation_id("install"),
                )
                installs += len(names)
            else:
                # local installs are rebuilt copies, never references into
                # the parent pool: the wire boundary holds on every backend
                rebuilt = deserialize_expert_heads(payload)
                for name in names:
                    remote = rebuilt[name]
                    dest.install_expert(name, remote.head, remote.version)
                    installs += 1
        # ---- commit --------------------------------------------------
        self._epoch = next_epoch
        drop_batches: Dict[int, List[str]] = {}
        for name, old, new, _source in plans:
            moved.append((name, old, new))
            # destinations were installed above, so repointing before the
            # drops means a concurrent plan sees either the old home
            # (still serving) or the new one (already installed), never a
            # shard that no longer holds the expert
            with self._placement_lock:
                self._placement[name] = new
            for shard_id in old:
                if shard_id not in new and shard_id not in retiring:
                    drop_batches.setdefault(shard_id, []).append(name)
        for shard_id in sorted(drop_batches):
            names = drop_batches[shard_id]
            shard = self.shards[shard_id]
            if shard.is_remote():
                shard.drop_heads(
                    names, epoch=next_epoch, mutation_id=self._mutation_id("drop")
                )
            else:
                for name in names:
                    shard.drop_expert(name)
            drops += len(names)
        touched = {route[1] for route in transfers} | set(drop_batches)
        for shard in self.shards:
            if (
                shard.is_remote()
                and shard.shard_id not in touched
                and shard.shard_id not in retiring
            ):
                shard.drop_heads(
                    [], epoch=next_epoch, mutation_id=self._mutation_id("fence")
                )
        for name, _old, _new, _source in plans:
            composites_dropped += self._invalidate_composites(name)
        return moved, installs, drops, composites_dropped, migrated_bytes, next_epoch

    def _sync_fleet_assignment(self) -> None:
        """Push the committed placement into the fleet's respawn specs.

        A worker that dies after a rebalance/reshard must fork with its
        *current* task set, or the supervisor would resurrect the pre-move
        placement.
        """
        if self._fleet is None:
            return
        assignment: Dict[int, List[str]] = {
            shard.shard_id: [] for shard in self.shards
        }
        with self._placement_lock:
            for name in sorted(self._placement):
                for shard_id in self._placement[name]:
                    if shard_id in assignment:
                        assignment[shard_id].append(name)
        for shard_id, names in assignment.items():
            self._fleet.update_assignment(shard_id, tuple(names))

    def rebalance(self, router: Optional[ShardRouter] = None) -> RebalanceReport:
        """Migrate experts to the router's current placement.

        Call after mutating the router (``pin``/``replicate``) or pass a
        replacement router (same shard count).  Experts ship shard-to-shard
        as bulk serialized head payloads in the float-exact
        ``fetch_transport`` codec (one payload per source/destination pair),
        so answers never change; every cache entry that depended on a moved
        expert — on the old shard, the new shard, or the cluster composite
        tiers — is dropped explicitly.

        Works over in-process shards and networked workers alike: remote
        destinations receive ``INSTALL_HEADS``/``DROP_HEADS`` frames under
        the two-phase epoch fence (see :meth:`_apply_two_phase` and
        ``docs/resharding.md``).  Remote workers that did not negotiate the
        mutation frames raise
        :class:`~repro.net.client.RemoteOperationUnsupported`.
        """
        self._require_mutation_capable("rebalance()")
        if router is not None:
            if router.num_shards != len(self.shards):
                raise ValueError(
                    f"replacement router has {router.num_shards} shards, "
                    f"cluster has {len(self.shards)}"
                )
            self.router = router
        target = {
            name: self.router.shards_for(name)
            for name in self.pool.expert_names()
        }
        plans, transfers = self._plan_moves(target, born=set())
        moved, installs, drops, composites_dropped, migrated_bytes, epoch = (
            self._apply_two_phase(plans, transfers)
        )
        self._sync_fleet_assignment()
        if moved:
            self.metrics.increment("rebalances")
            if JOURNAL.enabled:
                JOURNAL.emit(
                    "rebalance",
                    moved=len(moved),
                    installs=installs,
                    drops=drops,
                    migrated_bytes=migrated_bytes,
                    epoch=epoch,
                )
        return RebalanceReport(
            moved=tuple(moved),
            installs=installs,
            drops=drops,
            composite_entries_dropped=composites_dropped,
            migrated_bytes=migrated_bytes,
            epoch=epoch,
        )

    def reshard(self, new_num_shards: int) -> RebalanceReport:
        """Grow or shrink the cluster to ``new_num_shards`` shards online.

        Rendezvous routing keeps movement minimal: only experts whose
        hash ranking changes between shard counts move.  Growth spawns the
        new slots through the stored ``shard_factory`` *already holding*
        their full target task set (construction is an implicit bulk
        install), then runs the same two-phase plan as :meth:`rebalance`
        among the pre-existing shards.  Shrink migrates every expert off
        the retiring tail slots first, commits, then drains and retires
        them — in-flight requests planned on a retiring shard complete
        (the server drains before exit) or replan via the epoch-gated
        retry in :meth:`_serve`.

        Networked clusters need the worker fleet attached
        (:meth:`attach_fleet` — :class:`~repro.net.server.NetworkedCluster`
        does this) so slots can be spawned and retired as processes.
        """
        if new_num_shards < 1:
            raise ValueError("new_num_shards must be >= 1")
        old_n = len(self.shards)
        if new_num_shards == old_n:
            return RebalanceReport(
                moved=(), installs=0, drops=0, composite_entries_dropped=0
            )
        has_remote = any(shard.is_remote() for shard in self.shards)
        if has_remote:
            self._require_mutation_capable("reshard()")
            if self._fleet is None:
                raise RuntimeError(
                    "reshard() over networked shards needs the worker fleet "
                    "attached (ClusterGateway.attach_fleet) to spawn and "
                    "retire worker processes"
                )
        new_replication = min(self.router.replication, new_num_shards)
        new_router = ShardRouter(
            new_num_shards,
            replication=new_replication,
            seed=self.config.router_seed,
            replicas_per_shard=self.config.replicas_per_shard,
        )
        for task, shard_id in self.router.pins.items():
            if shard_id < new_num_shards:
                new_router.pin(task, shard_id)
        for task in self.pool.expert_names():
            per_task = self.router.replication_for(task)
            if per_task != self.router.replication:
                new_router.replicate(task, min(per_task, new_num_shards))
        target = {
            name: new_router.shards_for(name) for name in self.pool.expert_names()
        }
        born: Set[int] = set(range(old_n, new_num_shards))
        retiring: Set[int] = set(range(new_num_shards, old_n))
        if born:
            assignment: Dict[int, List[str]] = {sid: [] for sid in sorted(born)}
            for name in sorted(target):
                for shard_id in target[name]:
                    if shard_id in assignment:
                        assignment[shard_id].append(name)
            for shard_id in sorted(born):
                self.shards.append(
                    self._shard_factory(
                        shard_id,
                        tuple(assignment[shard_id]),
                        self.config.shard_gateway_config(),
                        self.trunk_cache,
                    )
                )
        plans, transfers = self._plan_moves(target, born=born)
        # a reshard always commits an epoch, even when no expert moved —
        # the *shape* of the cluster changed, and stale frames addressed
        # at the old shape must fence out
        moved, installs, drops, composites_dropped, migrated_bytes, epoch = (
            self._apply_two_phase(
                plans, transfers, retiring=retiring, force_epoch=True
            )
        )
        self.router = new_router
        self.config = replace(
            self.config,
            num_shards=new_num_shards,
            replication=new_replication,
        )
        # retiring slots are the tail, so popping from the end keeps
        # self.shards index-aligned with shard ids throughout
        for shard_id in sorted(retiring, reverse=True):
            shard = self.shards.pop(shard_id)
            if shard.is_remote() and self._fleet is not None:
                self._fleet.retire_shard(shard_id)
            else:
                shard.close()
        self._sync_fleet_assignment()
        transport_layer = self.async_transport
        if transport_layer is not None:
            transport_layer.refresh_topology()
        self.metrics.increment("reshards")
        if JOURNAL.enabled:
            JOURNAL.emit(
                "reshard",
                old_shards=old_n,
                new_shards=new_num_shards,
                moved=len(moved),
                installs=installs,
                drops=drops,
                migrated_bytes=migrated_bytes,
                epoch=epoch,
            )
        return RebalanceReport(
            moved=tuple(moved),
            installs=installs,
            drops=drops,
            composite_entries_dropped=composites_dropped,
            migrated_bytes=migrated_bytes,
            epoch=epoch,
        )

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("cluster gateway is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.workers_per_shard * len(self.shards),
                    thread_name_prefix="poe-cluster",
                )
            return self._executor

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ClusterGateway(shards={len(self.shards)}, "
            f"tasks={len(self.available_tasks())}, "
            f"replication={self.router.replication})"
        )
