"""Stochastic gradient descent with momentum and decoupled L2 weight decay.

The paper trains every model with SGD, momentum 0.9 and weight decay 5e-4
(§5.1); those are the defaults here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..nn.module import Parameter

__all__ = ["SGD"]


class SGD:
    """SGD optimizer: ``v = mu*v + (g + wd*w); w -= lr*v``.

    Parameters whose ``requires_grad`` flag is False are skipped entirely,
    which is how the frozen library component stays untouched during expert
    extraction.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        nesterov: bool = False,
    ) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"invalid learning rate {lr}")
        if momentum < 0:
            raise ValueError(f"invalid momentum {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients accumulated in ``.grad``."""
        for param in self.params:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data = param.data - self.lr * grad

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "nesterov": self.nesterov,
        }
