"""Learning-rate schedules."""

from __future__ import annotations

import math
from typing import Sequence

from .sgd import SGD

__all__ = ["StepLR", "MultiStepLR", "CosineAnnealingLR", "ConstantLR"]


class _Scheduler:
    """Base: tracks epochs and rewrites the optimizer's lr each step."""

    def __init__(self, optimizer: SGD) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class ConstantLR(_Scheduler):
    def get_lr(self) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Decay lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class MultiStepLR(_Scheduler):
    """Decay lr by ``gamma`` at each epoch in ``milestones``."""

    def __init__(self, optimizer: SGD, milestones: Sequence[int], gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if self.epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: SGD, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        self.t_max = max(1, t_max)
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * t / self.t_max)
        )
