"""Optimizers and LR schedules (replaces ``torch.optim``)."""

from .lr_scheduler import ConstantLR, CosineAnnealingLR, MultiStepLR, StepLR
from .sgd import SGD

__all__ = ["SGD", "StepLR", "MultiStepLR", "CosineAnnealingLR", "ConstantLR"]
