"""Experiment tracks and combo selection."""

import numpy as np
import pytest

from repro.eval import TrackConfig, cifar_track, get_track, select_combos, tiny_track


class TestTracks:
    def test_cifar_track_shape(self):
        track = cifar_track(fast=False)
        assert track.kind == "cifar"
        # mirrors CIFAR-100: 20 superclasses x 5 classes
        assert track.num_superclasses == 20
        assert track.num_classes == 100
        assert track.oracle_k == 4.0 and track.library_k == 1.0
        assert track.expert_ks == 0.25  # the paper's conv4 factor

    def test_tiny_track_variable_groups(self):
        track = tiny_track(fast=False)
        assert track.kind == "tiny"
        assert len(track.group_sizes) >= 6
        assert all(3 <= s for s in track.group_sizes)
        assert track.library_k == 2.0  # paper: WRN-16-(2, 2) library for Tiny

    def test_fast_variants_are_smaller(self):
        slow, fast = cifar_track(fast=False), cifar_track(fast=True)
        assert fast.oracle_epochs < slow.oracle_epochs
        assert fast.num_classes < slow.num_classes
        assert fast.name != slow.name  # distinct cache keys

    def test_get_track(self):
        assert get_track("synth-cifar", fast=False).name == "synth-cifar"
        with pytest.raises(KeyError):
            get_track("imagenet")

    def test_dataset_materialisation(self):
        track = cifar_track(fast=True)
        data = track.dataset()
        assert data.num_classes == track.num_classes
        assert len(data.train) == track.num_classes * track.train_per_class

    def test_selected_tasks_deterministic(self):
        track = cifar_track(fast=False)
        data = track.dataset()
        t1 = track.selected_tasks(data.hierarchy)
        t2 = track.selected_tasks(data.hierarchy)
        assert t1 == t2
        assert len(t1) == 6  # the paper selects six primitive tasks

    def test_cache_key_changes_with_config(self):
        from dataclasses import replace

        base = cifar_track(fast=False)
        assert base.cache_key() != replace(base, oracle_epochs=99).cache_key()
        assert base.cache_key() != replace(base, seed=5).cache_key()

    def test_train_config_passthrough(self):
        track = cifar_track(fast=False)
        cfg = track.train_config(7, seed_offset=3)
        assert cfg.epochs == 7
        assert cfg.seed == track.seed + 3
        assert cfg.batch_size == track.batch_size


class TestSelectCombos:
    TASKS = ("a", "b", "c", "d", "e", "f")

    def test_counts(self):
        combos = select_combos(self.TASKS, 2, 3, seed=0)
        assert len(combos) == 3
        assert all(len(c) == 2 for c in combos)

    def test_no_duplicates_within_combo(self):
        for combo in select_combos(self.TASKS, 4, 5, seed=1):
            assert len(set(combo)) == 4

    def test_deterministic(self):
        assert select_combos(self.TASKS, 3, 2, seed=7) == select_combos(
            self.TASKS, 3, 2, seed=7
        )

    def test_different_seeds_differ(self):
        a = select_combos(self.TASKS, 3, 2, seed=1)
        b = select_combos(self.TASKS, 3, 2, seed=2)
        assert a != b

    def test_k_larger_than_population(self):
        combos = select_combos(self.TASKS, 5, 100, seed=0)
        assert len(combos) == 6  # C(6,5)

    def test_distinct_combos(self):
        combos = select_combos(self.TASKS, 2, 10, seed=3)
        assert len(set(combos)) == len(combos)
