"""EXPERIMENTS.md report generator (driven by a fabricated summary)."""

import json
import os

import numpy as np
import pytest

from repro.eval.experiments import get_track
from repro.eval.report import PAPER, generate_report


def fake_summary(track):
    """A structurally complete summary with paper-shaped numbers."""
    t3 = {}
    methods3 = PAPER["table3"]["cifar"]
    table3 = []
    for method, series in methods3.items():
        for n_q, acc in zip((2, 3, 4, 5), series):
            table3.append(
                {
                    "method": method,
                    "n_q": n_q,
                    "accuracy_mean": acc / 100,
                    "accuracy_std": 0.02,
                    "params": 50_000,
                    "flops": 2e7,
                    "arch": "WRN-10-(1, 0.25)",
                    "combos": [["a", "b"]],
                }
            )
    table5 = []
    for label, key in (("soft", "poe-soft"), ("scale", "poe-scale"), ("both", "poe")):
        for n_q, acc in zip((2, 3, 4, 5), PAPER["table5"]["cifar"][label]):
            table5.append(
                {"method": key, "n_q": n_q, "accuracy_mean": acc / 100, "accuracy_std": 0.02}
            )
    conf = {
        "histogram": [0.1] * 10,
        "bin_edges": list(np.linspace(0, 1, 11)),
        "mean": 0.9,
        "median": 0.9,
        "overconfident_rate": 0.6,
        "mode_bin": [0.9, 1.0],
    }
    ckd_conf = dict(conf, mean=0.35, overconfident_rate=0.0, mode_bin=[0.3, 0.4])
    return {
        "track": track.name,
        "oracle": {
            "test_accuracy": 0.858,
            "seconds": 60.0,
            "params": 1_200_000,
            "flops": 2e8,
            "arch": "WRN-10-(4, 4)",
        },
        "table1": {
            "oracle": {"test_accuracy": 0.858, "params": 1_200_000, "flops": 2e8, "arch": "o"},
            "library": {"test_accuracy": 0.64, "params": 80_000, "flops": 1e7, "arch": "l"},
        },
        "table2": [
            {
                "method": m,
                "type": "generic" if m in ("oracle", "kd") else "special",
                "arch": "x",
                "accuracy_mean": PAPER["table2"]["cifar"][m] / 100,
                "accuracy_std": 0.1,
                "params": 1_200_000 if m == "oracle" else 27_000,
                "flops": 1e7,
            }
            for m in ("oracle", "kd", "scratch", "transfer", "ckd")
        ],
        "figure5": {"task": "sc0", "scratch": conf, "transfer": conf, "ckd": ckd_conf},
        "table3": table3,
        "table4": {
            "oracle_bytes": 4_800_000,
            "library_bytes": 180_000,
            "mean_expert_bytes": 55_000,
            "experts_total_bytes": 330_000,
            "pool_bytes": 510_000,
            "all_specialists_bytes": int(54e9),
            "oracle_to_pool_ratio": 9.4,
            "n_primitives": 10,
        },
        "table5": table5,
        "figure6": {
            "poe": [[0.001, 0.722]],
            "scratch": [[5.0, 0.5], [60.0, 0.702]],
            "sd+scratch": [[5.0, 0.2], [60.0, 0.39]],
            "uhc+scratch": [[5.0, 0.2], [60.0, 0.41]],
        },
        "figure7": [
            {"method": m, "n_q": n, "time_to_best_mean": 0.001 if m == "poe" else 30.0 + n,
             "train_seconds_mean": 0.001 if m == "poe" else 60.0}
            for m in ("poe", "scratch", "ckd")
            for n in (2, 3, 4, 5)
        ],
        "seconds": 100.0,
    }


@pytest.fixture
def artifact_root(tmp_path):
    root = str(tmp_path / "artifacts")
    for name in ("synth-cifar",):
        track = get_track(name, fast=False)
        d = os.path.join(root, "results", track.cache_key())
        os.makedirs(d)
        with open(os.path.join(d, "summary.json"), "w") as fh:
            json.dump(fake_summary(track), fh)
    return root


class TestGenerateReport:
    def test_writes_file(self, artifact_root, tmp_path):
        out = str(tmp_path / "EXPERIMENTS.md")
        text = generate_report(artifact_root, out)
        assert os.path.exists(out)
        assert text.startswith("# EXPERIMENTS")

    def test_contains_all_sections(self, artifact_root, tmp_path):
        text = generate_report(artifact_root, str(tmp_path / "e.md"))
        for section in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
                        "Figure 5", "Figure 6", "Figure 7"):
            assert section in text

    def test_paper_shaped_summary_all_shapes_hold(self, artifact_root, tmp_path):
        """Feeding the paper's own numbers through the verdict logic must
        produce no deviations — validates the shape checks themselves."""
        text = generate_report(artifact_root, str(tmp_path / "e.md"))
        cifar_section = text.split("## Track `synth-tiny`")[0]
        assert "DEVIATES" not in cifar_section

    def test_missing_track_noted(self, artifact_root, tmp_path):
        text = generate_report(artifact_root, str(tmp_path / "e.md"))
        assert "artifacts not built yet" in text  # synth-tiny absent

    def test_empty_root_graceful(self, tmp_path):
        text = generate_report(str(tmp_path / "nothing"), str(tmp_path / "e.md"))
        assert "artifacts not built yet" in text
