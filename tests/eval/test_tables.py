"""Table / histogram / curve text renderers."""

import pytest

from repro.eval import format_count, render_curves, render_histogram, render_table


class TestFormatCount:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (8.97e6, "8.97M"),
            (1.302e9, "1.30B"),
            (27139, "27.1K"),
            (42, "42"),
            (180_000, "180.0K"),
        ],
    )
    def test_formats(self, value, expected):
        assert format_count(value) == expected


class TestRenderTable:
    def test_contains_all_cells(self):
        out = render_table(["m", "acc"], [["ckd", "82.4"], ["kd", "62.5"]], title="T2")
        assert "T2" in out
        assert "ckd" in out and "82.4" in out
        assert "kd" in out and "62.5" in out

    def test_column_alignment(self):
        out = render_table(["a", "b"], [["xxxx", "1"]])
        lines = out.splitlines()
        header, sep, row = lines
        assert header.index("|") == row.index("|")

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderHistogram:
    def test_bars_scale_with_frequency(self):
        out = render_histogram([0.1, 0.9], [0.0, 0.5, 1.0], width=10, title="h")
        lines = out.splitlines()
        assert lines[0] == "h"
        assert lines[2].count("#") > lines[1].count("#")

    def test_handles_all_zero(self):
        out = render_histogram([0.0, 0.0], [0, 0.5, 1.0])
        assert "#" not in out


class TestRenderCurves:
    def test_shows_best_and_total(self):
        out = render_curves({"poe": [(0.0, 0.72)], "ckd": [(1.0, 0.5), (2.0, 0.74)]})
        assert "poe" in out and "best=0.720" in out
        assert "ckd" in out and "best=0.740" in out

    def test_empty_curve(self):
        out = render_curves({"kd": []})
        assert "no curve" in out
