"""Accuracy metrics, incl. the paper's task-specific accuracy."""

import numpy as np
import pytest

from repro import nn
from repro.data import ArrayDataset, ClassHierarchy
from repro.eval import (
    accuracy,
    accuracy_from_logits,
    specialized_accuracy,
    task_specific_accuracy,
)
from repro.tensor import Tensor


class LookupModel(nn.Module):
    """Maps each input (identified by its first pixel) to preset logits."""

    def __init__(self, logits):
        super().__init__()
        self._logits = np.asarray(logits, dtype=np.float32)

    def forward(self, x):
        idx = x.numpy()[:, 0, 0, 0].astype(np.int64)
        return Tensor(self._logits[idx])


@pytest.fixture
def hierarchy():
    return ClassHierarchy.uniform(3, 2, prefix="e")


def indexed_dataset(labels):
    """Images whose first pixel encodes the sample index."""
    n = len(labels)
    images = np.zeros((n, 1, 2, 2), dtype=np.float32)
    images[:, 0, 0, 0] = np.arange(n)
    return ArrayDataset(images, np.asarray(labels))


class TestAccuracyFromLogits:
    def test_perfect(self):
        logits = np.eye(4)
        assert accuracy_from_logits(logits, np.arange(4)) == 1.0

    def test_partial(self):
        logits = np.eye(4)
        labels = np.array([0, 1, 0, 0])
        assert accuracy_from_logits(logits, labels) == 0.5


class TestAccuracy:
    def test_model_eval(self, hierarchy):
        data = indexed_dataset([0, 1, 2])
        logits = np.eye(6)[:3] * 10
        assert accuracy(LookupModel(logits), data) == 1.0


class TestTaskSpecificAccuracy:
    def test_restricts_to_task_columns(self, hierarchy):
        """A generic model wrong globally can be right task-locally:
        the paper measures only within the task's columns."""
        task = hierarchy.task("e1")  # global classes (2, 3)
        data = indexed_dataset([2, 3])
        # model puts huge mass on class 5 (outside task), then prefers the
        # correct in-task class: task-specific accuracy must be 1.0.
        logits = np.zeros((2, 6), dtype=np.float32)
        logits[:, 5] = 100.0
        logits[0, 2], logits[0, 3] = 2.0, 1.0
        logits[1, 2], logits[1, 3] = 1.0, 2.0
        model = LookupModel(logits)
        assert task_specific_accuracy(model, data, task) == 1.0

    def test_only_task_samples_scored(self, hierarchy):
        task = hierarchy.task("e0")  # classes (0, 1)
        data = indexed_dataset([0, 1, 4, 5])  # half OOD
        logits = np.zeros((4, 6), dtype=np.float32)
        logits[0, 0] = 1.0
        logits[1, 0] = 1.0  # wrong within task
        model = LookupModel(logits)
        assert task_specific_accuracy(model, data, task) == 0.5

    def test_no_task_samples_raises(self, hierarchy):
        task = hierarchy.task("e0")
        data = indexed_dataset([4, 5])
        with pytest.raises(ValueError):
            task_specific_accuracy(LookupModel(np.zeros((2, 6))), data, task)

    def test_composite_task(self, hierarchy):
        q = hierarchy.composite(["e2", "e0"])  # classes (4,5,0,1)
        data = indexed_dataset([4, 0])
        logits = np.zeros((2, 6), dtype=np.float32)
        logits[0, 4] = 5.0
        logits[1, 0] = 5.0
        assert task_specific_accuracy(LookupModel(logits), data, q) == 1.0


class TestSpecializedAccuracy:
    def test_local_output_space(self, hierarchy):
        task = hierarchy.task("e1")  # global (2, 3) -> local (0, 1)
        data = indexed_dataset([2, 3])
        logits = np.array([[3.0, 0.0], [0.0, 3.0]], dtype=np.float32)
        assert specialized_accuracy(LookupModel(logits), data, task) == 1.0

    def test_wrong_width_rejected(self, hierarchy):
        task = hierarchy.task("e1")
        data = indexed_dataset([2, 3])
        with pytest.raises(ValueError):
            specialized_accuracy(LookupModel(np.zeros((2, 6))), data, task)

    def test_no_samples_raises(self, hierarchy):
        task = hierarchy.task("e1")
        data = indexed_dataset([0, 1])
        with pytest.raises(ValueError):
            specialized_accuracy(LookupModel(np.zeros((2, 2))), data, task)
