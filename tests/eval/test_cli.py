"""CLI surface (parsing + the cheap subcommands)."""

import pytest

from repro.cli import main


class TestParsing:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_query_requires_tasks(self):
        with pytest.raises(SystemExit):
            main(["query"])


class TestServeBench:
    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--mode", "sideways"])


class TestInfo:
    def test_info_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "WRN-40-(4, 4)" in out
        assert "cifar100/oracle" in out
        assert "synth-cifar/expert" in out


class TestReport:
    def test_report_without_artifacts(self, tmp_path, capsys):
        out_file = str(tmp_path / "EXP.md")
        assert main(["report", "--root", str(tmp_path / "none"), "--out", out_file]) == 0
        text = open(out_file).read()
        assert "artifacts not built yet" in text
