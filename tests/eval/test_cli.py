"""CLI surface (parsing + the cheap subcommands)."""

import pytest

from repro.cli import main


class TestParsing:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_query_requires_tasks(self):
        with pytest.raises(SystemExit):
            main(["query"])


class TestServeBench:
    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--mode", "sideways"])


class TestInfo:
    def test_info_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "WRN-40-(4, 4)" in out
        assert "cifar100/oracle" in out
        assert "synth-cifar/expert" in out


class TestTraceDump:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        import json

        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as fh:
            for trace_id, name in (("t1", "alpha"), ("t2", "beta"), ("t3", "gamma")):
                fh.write(json.dumps({
                    "trace_id": trace_id, "span_id": name, "parent_id": None,
                    "name": name, "service": "test", "start": 0.0,
                    "duration": 0.001, "tags": {},
                }) + "\n")
        return path

    def test_dumps_every_trace_by_default(self, trace_file, capsys):
        assert main(["trace-dump", "--file", trace_file]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" in out and "gamma" in out
        assert "3 trace(s) shown (3 spans" in out

    def test_trace_id_filter_selects_one(self, trace_file, capsys):
        assert main(["trace-dump", "--file", trace_file, "--trace-id", "t2"]) == 0
        out = capsys.readouterr().out
        assert "beta" in out
        assert "alpha" not in out and "gamma" not in out
        assert "1 trace(s) shown" in out

    def test_limit_truncates(self, trace_file, capsys):
        assert main(["trace-dump", "--file", trace_file, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" in out and "gamma" not in out

    def test_empty_file_fails(self, tmp_path, capsys):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        assert main(["trace-dump", "--file", path]) == 1


class TestTop:
    def test_headless_frames_render_and_journal_persists(self, tmp_path, capsys):
        import json

        journal_path = str(tmp_path / "journal.jsonl")
        code = main([
            "top", "--frames", "2", "--interval", "0.05", "--plain",
            "--shards", "2", "--micro-tasks", "4", "--clients", "1",
            "--journal", journal_path,
        ])
        assert code == 0  # nonzero would mean no telemetry was collected
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "shard0" in out and "shard1" in out and "cluster" in out
        assert out.count("SLO p95") == 2  # one header per frame
        # the journal file exists and holds only parseable JSON lines
        # (in-process demo traffic may legitimately emit zero events)
        for line in open(journal_path):
            assert "kind" in json.loads(line)


class TestReport:
    def test_report_without_artifacts(self, tmp_path, capsys):
        out_file = str(tmp_path / "EXP.md")
        assert main(["report", "--root", str(tmp_path / "none"), "--out", out_file]) == 0
        text = open(out_file).read()
        assert "artifacts not built yet" in text
