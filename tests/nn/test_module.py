"""Module system: registration, traversal, state dicts, freezing."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


def make_mlp(rng=None):
    rng = rng or np.random.default_rng(0)
    return nn.Sequential(
        nn.Linear(4, 8, rng=rng),
        nn.ReLU(),
        nn.Linear(8, 2, rng=rng),
    )


class TestRegistration:
    def test_parameters_discovered(self):
        model = make_mlp()
        names = [n for n, _ in model.named_parameters()]
        assert "0.weight" in names and "0.bias" in names
        assert "2.weight" in names and "2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        model = make_mlp()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_module_children(self):
        model = make_mlp()
        assert len(list(model.children())) == 3
        assert len(list(model.modules())) == 4  # self + 3 children

    def test_reassignment_replaces(self):
        class M(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = nn.Linear(2, 2)

        m = M()
        m.layer = nn.Linear(2, 3)
        params = dict(m.named_parameters())
        assert params["layer.weight"].shape == (3, 2)
        assert len(params) == 2

    def test_buffers_registered(self):
        bn = nn.BatchNorm2d(4)
        buffer_names = [n for n, _ in bn.named_buffers()]
        assert set(buffer_names) == {"running_mean", "running_var"}

    def test_update_unknown_buffer_raises(self):
        bn = nn.BatchNorm2d(2)
        with pytest.raises(KeyError):
            bn._update_buffer("nope", np.zeros(2))


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = make_mlp()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears(self):
        model = make_mlp()
        x = Tensor(np.random.default_rng(0).standard_normal((3, 4)))
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_requires_grad_freezes(self):
        model = make_mlp()
        model.requires_grad_(False)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 4)))
        out = model(x)
        assert not out.requires_grad  # nothing to differentiate
        model.requires_grad_(True)
        assert all(p.requires_grad for p in model.parameters())


class TestStateDict:
    def test_roundtrip_identical_outputs(self, rng):
        m1 = make_mlp(np.random.default_rng(1))
        m2 = make_mlp(np.random.default_rng(2))
        x = Tensor(rng.standard_normal((5, 4)))
        assert not np.allclose(m1(x).numpy(), m2(x).numpy())
        m2.load_state_dict(m1.state_dict())
        assert np.allclose(m1(x).numpy(), m2(x).numpy())

    def test_missing_key_strict_raises(self):
        m = make_mlp()
        state = m.state_dict()
        state.pop("0.weight")
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_unexpected_key_strict_raises(self):
        m = make_mlp()
        state = m.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_non_strict_ignores_mismatch(self):
        m = make_mlp()
        state = m.state_dict()
        state.pop("0.weight")
        state["bogus"] = np.zeros(3)
        m.load_state_dict(state, strict=False)  # no raise

    def test_shape_mismatch_raises(self):
        m = make_mlp()
        state = m.state_dict()
        state["0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_state_dict_copies_into_params(self):
        m1, m2 = make_mlp(np.random.default_rng(1)), make_mlp(np.random.default_rng(3))
        m2.load_state_dict(m1.state_dict())
        # mutate m1 afterwards; m2 must NOT change (load copies)
        next(m1.parameters()).data[:] = 0.0
        assert not np.allclose(next(m2.parameters()).data, 0.0)
