"""Sequential / ModuleList containers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class TestSequential:
    def test_chains_modules(self, rng):
        seq = nn.Sequential(nn.Linear(4, 4), nn.ReLU(), nn.Linear(4, 2))
        out = seq(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 2)

    def test_len_iter_getitem(self):
        seq = nn.Sequential(nn.ReLU(), nn.Identity())
        assert len(seq) == 2
        assert isinstance(seq[0], nn.ReLU)
        assert isinstance(list(seq)[1], nn.Identity)

    def test_slice_returns_sequential(self):
        seq = nn.Sequential(nn.ReLU(), nn.Identity(), nn.Flatten())
        sub = seq[:2]
        assert isinstance(sub, nn.Sequential)
        assert len(sub) == 2

    def test_parameters_aggregated(self):
        seq = nn.Sequential(nn.Linear(2, 2), nn.Linear(2, 2))
        assert len(list(seq.parameters())) == 4

    def test_empty_sequential_is_identity_pipeline(self, rng):
        seq = nn.Sequential()
        x = Tensor(rng.standard_normal(3))
        assert np.allclose(seq(x).numpy(), x.numpy())


class TestModuleList:
    def test_registration(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(ml.parameters())) == 4

    def test_append(self):
        ml = nn.ModuleList()
        ml.append(nn.Linear(3, 3))
        assert len(ml) == 1
        assert len(list(ml.parameters())) == 2

    def test_indexing_and_iter(self):
        layers = [nn.ReLU(), nn.Identity()]
        ml = nn.ModuleList(layers)
        assert ml[0] is layers[0]
        assert list(ml) == layers

    def test_train_eval_propagates(self):
        ml = nn.ModuleList([nn.Dropout(0.5)])
        parent = nn.Sequential()
        parent.list = ml
        parent.eval()
        assert not ml[0].training
