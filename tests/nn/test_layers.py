"""Layer behaviour: Linear, Conv2d, BatchNorm2d, pooling wrappers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, no_grad


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        x = rng.standard_normal((4, 3)).astype(np.float32)
        expected = x @ layer.weight.numpy().T + layer.bias.numpy()
        assert np.allclose(layer(Tensor(x)).numpy(), expected, atol=1e-5)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 6

    def test_gradient_shapes(self, rng):
        layer = nn.Linear(5, 3)
        x = Tensor(rng.standard_normal((2, 5)))
        layer(x).sum().backward()
        assert layer.weight.grad.shape == (3, 5)
        assert layer.bias.grad.shape == (3,)


class TestConv2dLayer:
    def test_output_shape(self, rng):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = layer(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_default_no_bias(self):
        assert nn.Conv2d(3, 8, 3).bias is None  # WRN convention

    def test_bias_opt_in(self):
        layer = nn.Conv2d(3, 8, 3, bias=True)
        assert layer.bias is not None


class TestBatchNorm2d:
    def test_train_normalises_batch(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.standard_normal((16, 4, 3, 3)) * 5 + 2)
        out = bn(x).numpy()
        assert abs(out.mean()) < 1e-3
        assert abs(out.std() - 1.0) < 1e-2

    def test_running_stats_update(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((8, 2, 2, 2), 3.0, dtype=np.float32))
        bn(x)
        assert np.allclose(bn.running_mean, 1.5)  # 0.5*0 + 0.5*3

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.standard_normal((32, 3, 4, 4)) * 2 + 1)
        for _ in range(50):
            bn(x)
        bn.eval()
        out_eval = bn(x).numpy()
        # after many updates, running stats approximate batch stats
        assert abs(out_eval.mean()) < 0.1
        assert abs(out_eval.std() - 1.0) < 0.1

    def test_eval_mode_no_stat_update(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(rng.standard_normal((4, 2, 2, 2)) + 10))
        assert np.allclose(bn.running_mean, before)

    def test_affine_params_learnable(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)))
        bn(x).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None

    def test_rejects_non_nchw(self, rng):
        bn = nn.BatchNorm2d(2)
        with pytest.raises(ValueError):
            bn(Tensor(rng.standard_normal((4, 2))))


class TestPoolingAndShapes:
    def test_flatten(self, rng):
        out = nn.Flatten()(Tensor(rng.standard_normal((2, 3, 4, 4))))
        assert out.shape == (2, 48)

    def test_global_avg_pool_module(self, rng):
        out = nn.GlobalAvgPool2d()(Tensor(rng.standard_normal((2, 5, 3, 3))))
        assert out.shape == (2, 5)

    def test_avgpool_module(self, rng):
        out = nn.AvgPool2d(2)(Tensor(rng.standard_normal((1, 2, 4, 4))))
        assert out.shape == (1, 2, 2, 2)

    def test_maxpool_module(self, rng):
        out = nn.MaxPool2d(2)(Tensor(rng.standard_normal((1, 2, 6, 6))))
        assert out.shape == (1, 2, 3, 3)

    def test_identity(self, rng):
        x = Tensor(rng.standard_normal((3, 3)))
        assert np.allclose(nn.Identity()(x).numpy(), x.numpy())

    def test_relu_module(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        assert np.allclose(out.numpy(), [0.0, 2.0])

    def test_dropout_respects_training_flag(self, rng):
        layer = nn.Dropout(0.9, rng=np.random.default_rng(0))
        x = Tensor(np.ones((10, 10)))
        layer.eval()
        assert np.allclose(layer(x).numpy(), 1.0)
        layer.train()
        assert not np.allclose(layer(x).numpy(), 1.0)
