"""State persistence: npz save/load and byte accounting."""

import os

import numpy as np
import pytest

from repro import nn
from repro.nn import load_into, load_state, save_module, save_state, state_dict_nbytes
from repro.tensor import Tensor


@pytest.fixture
def model():
    rng = np.random.default_rng(7)
    return nn.Sequential(nn.Linear(4, 6, rng=rng), nn.ReLU(), nn.Linear(6, 2, rng=rng))


class TestSaveLoad:
    def test_roundtrip(self, model, tmp_path, rng):
        path = str(tmp_path / "model.npz")
        save_module(model, path)
        other = nn.Sequential(nn.Linear(4, 6), nn.ReLU(), nn.Linear(6, 2))
        load_into(other, path)
        x = Tensor(rng.standard_normal((3, 4)))
        assert np.allclose(model(x).numpy(), other(x).numpy())

    def test_save_state_creates_dirs(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "state.npz")
        save_state({"x": np.ones(3)}, path)
        assert os.path.exists(path)

    def test_load_state_keys(self, model, tmp_path):
        path = str(tmp_path / "m.npz")
        save_module(model, path)
        state = load_state(path)
        assert set(state) == set(model.state_dict())

    def test_bn_buffers_roundtrip(self, tmp_path, rng):
        bn = nn.BatchNorm2d(3)
        bn(Tensor(rng.standard_normal((8, 3, 2, 2)) + 5))
        path = str(tmp_path / "bn.npz")
        save_module(bn, path)
        fresh = nn.BatchNorm2d(3)
        load_into(fresh, path)
        assert np.allclose(fresh.running_mean, bn.running_mean)
        assert np.allclose(fresh.running_var, bn.running_var)


class TestNbytes:
    def test_raw_bytes(self):
        state = {"w": np.zeros((10, 10), dtype=np.float32), "b": np.zeros(10, dtype=np.float32)}
        assert state_dict_nbytes(state) == 4 * (100 + 10)

    def test_compressed_smaller_for_zeros(self):
        state = {"w": np.zeros((100, 100), dtype=np.float32)}
        assert state_dict_nbytes(state, compressed=True) < state_dict_nbytes(state)

    def test_monotone_in_model_size(self):
        small = nn.Linear(4, 4).state_dict()
        large = nn.Linear(64, 64).state_dict()
        assert state_dict_nbytes(large) > state_dict_nbytes(small)


class TestInit:
    def test_kaiming_normal_scale(self):
        from repro.nn.init import kaiming_normal

        w = kaiming_normal((256, 128), np.random.default_rng(0))
        assert abs(w.std() - np.sqrt(2.0 / 128)) < 0.01

    def test_kaiming_uniform_bounds(self):
        from repro.nn.init import kaiming_uniform

        w = kaiming_uniform((64, 64), np.random.default_rng(0))
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert w.min() >= -bound and w.max() <= bound

    def test_conv_fan_in(self):
        from repro.nn.init import fan_in_out

        fan_in, fan_out = fan_in_out((16, 8, 3, 3))
        assert fan_in == 8 * 9
        assert fan_out == 16 * 9

    def test_bad_shape_raises(self):
        from repro.nn.init import fan_in_out

        with pytest.raises(ValueError):
            fan_in_out((3,))

    def test_xavier_bounds(self):
        from repro.nn.init import xavier_uniform

        w = xavier_uniform((32, 32), np.random.default_rng(0))
        bound = np.sqrt(6.0 / 64)
        assert w.min() >= -bound and w.max() <= bound
