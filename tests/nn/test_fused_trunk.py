"""FusedTrunk: the compiled eval-mode trunk vs the autograd engine.

The cold-prediction fast path stands on three guarantees exercised here:
the compiled program is ``allclose`` to the autograd trunk across WRN
geometries (identity *and* 1×1-projection shortcuts, both library
levels), batch-norm folding respects non-default ``eps``/``momentum``
and arbitrary running statistics, and the per-object memoization makes a
library re-extraction (``LIBRARY_TASK`` bump → new trunk object) compile
fresh while in-place mutation has an explicit invalidation hook.
"""

import numpy as np
import pytest

from repro.distill import batched_forward
from repro.models.wrn import WRNTrunk
from repro.nn.fused import FusedTrunk, fused_trunk_for, invalidate_fused_trunk


def _randomize_bn_stats(trunk, seed=7):
    """Give every BN non-trivial running stats so folding is exercised."""
    rng = np.random.default_rng(seed)
    for module in trunk.modules():
        if hasattr(module, "running_var"):
            n = module.num_features
            module._update_buffer(
                "running_mean", rng.standard_normal(n).astype(np.float32)
            )
            module._update_buffer(
                "running_var", (0.5 + rng.random(n)).astype(np.float32)
            )
            module.weight.data[:] = rng.standard_normal(n).astype(np.float32)
            module.bias.data[:] = rng.standard_normal(n).astype(np.float32)


def _probe(trunk, n=9, size=12, seed=3):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, trunk.conv1.in_channels, size, size)).astype(
        np.float32
    )


class TestEquivalence:
    @pytest.mark.parametrize(
        "depth,k_c,library_level",
        [
            (10, 1.0, 3),  # first group identity shortcut (16 -> 16)
            (10, 1.5, 3),  # first group 1x1 projection (16 -> 24)
            (16, 0.5, 3),  # two blocks per group, shrinking widths
            (10, 1.0, 2),  # library level 2: conv1-conv2 only
            (16, 2.0, 2),  # wide level-2 trunk with projection
        ],
    )
    def test_matches_autograd_across_geometries(self, depth, k_c, library_level):
        trunk = WRNTrunk(
            depth, k_c, 0.25, library_level, rng=np.random.default_rng(1)
        ).eval()
        _randomize_bn_stats(trunk)
        fused = FusedTrunk(trunk)  # verify=True probes at compile time too
        x = _probe(trunk)
        reference = batched_forward(trunk, x)
        features = fused(x)
        assert features.shape == reference.shape
        assert features.dtype == np.float32
        assert np.allclose(reference, features, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("batch", [1, 3, 7])
    def test_odd_batches_and_chunking(self, batch):
        trunk = WRNTrunk(10, 1.0, 0.25, rng=np.random.default_rng(2)).eval()
        _randomize_bn_stats(trunk)
        fused = FusedTrunk(trunk)
        x = _probe(trunk, n=batch, size=8)
        reference = batched_forward(trunk, x)
        # batch_size=2 forces the multi-chunk concatenate path
        assert np.allclose(reference, fused(x, batch_size=2), rtol=1e-4, atol=1e-5)

    def test_rejects_non_nchw_input(self):
        trunk = WRNTrunk(10, 1.0, 0.25, rng=np.random.default_rng(2)).eval()
        with pytest.raises(ValueError, match="NCHW"):
            FusedTrunk(trunk)(np.zeros((3, 6, 6), dtype=np.float32))


class TestBatchNormFolding:
    def test_non_default_eps(self):
        """BN fold must use each module's own eps, not assume the default."""
        trunk = WRNTrunk(10, 1.5, 0.25, rng=np.random.default_rng(4)).eval()
        _randomize_bn_stats(trunk)
        for module in trunk.modules():
            if hasattr(module, "running_var"):
                module.eps = 1e-2  # large enough that the wrong eps diverges
        fused = FusedTrunk(trunk)
        x = _probe(trunk, size=8)
        assert np.allclose(
            batched_forward(trunk, x), fused(x), rtol=1e-4, atol=1e-5
        )

    def test_stats_updated_with_non_default_momentum(self):
        """Fold the stats a non-default momentum actually produced."""
        from repro.tensor import Tensor

        trunk = WRNTrunk(10, 1.0, 0.25, rng=np.random.default_rng(5))
        for module in trunk.modules():
            if hasattr(module, "running_var"):
                module.momentum = 0.7
        trunk.train()
        trunk(Tensor(_probe(trunk, n=6, size=8, seed=11)))  # updates running stats
        trunk.eval()
        fused = FusedTrunk(trunk)
        x = _probe(trunk, size=8, seed=12)
        assert np.allclose(
            batched_forward(trunk, x), fused(x), rtol=1e-4, atol=1e-5
        )


class TestMemoizationAndInvalidation:
    def test_memoized_per_trunk_object(self):
        trunk = WRNTrunk(10, 1.0, 0.25, rng=np.random.default_rng(6)).eval()
        assert fused_trunk_for(trunk) is fused_trunk_for(trunk)

    def test_invalidate_recompiles_after_inplace_mutation(self):
        trunk = WRNTrunk(10, 1.0, 0.25, rng=np.random.default_rng(6)).eval()
        _randomize_bn_stats(trunk)
        fused = fused_trunk_for(trunk)
        x = _probe(trunk, size=8)
        before = fused(x)
        # in-place weight mutation (load_state_dict-style) goes stale ...
        trunk.conv1.weight.data[:] *= 2.0
        with pytest.raises(ValueError, match="diverged"):
            fused.verify(trunk, x)
        # ... until the memoized compile is dropped
        invalidate_fused_trunk(trunk)
        recompiled = fused_trunk_for(trunk)
        assert recompiled is not fused
        after = recompiled(x)
        assert not np.allclose(before, after, rtol=1e-4, atol=1e-5)
        assert np.allclose(
            batched_forward(trunk, x), after, rtol=1e-4, atol=1e-5
        )

    def test_library_reextraction_compiles_fresh_program(self, tiny_hierarchy):
        """LIBRARY_TASK bump installs a new trunk object -> new compile."""
        from tests.conftest import build_micro_pool

        pool, data, _ = build_micro_pool(tiny_hierarchy, seed=9, train_per_class=15)
        old_trunk = pool.library
        old_program = fused_trunk_for(old_trunk)
        pool.extract_library(data.train.images)
        assert pool.library is not old_trunk
        new_program = fused_trunk_for(pool.library)
        assert new_program is not old_program
        x = data.test.images[:10]
        assert np.allclose(
            batched_forward(pool.library, x),
            new_program(x),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_shortcut_weights_aliased_not_copied(self):
        """1x1 projection weights are views of the live parameters."""
        trunk = WRNTrunk(10, 1.5, 0.25, rng=np.random.default_rng(8)).eval()
        fused = FusedTrunk(trunk)
        shortcuts = [
            block.shortcut
            for group in trunk.groups
            for block in group.blocks
            if block.needs_projection
        ]
        assert shortcuts, "expected at least one projection block"
        fused_shortcuts = [b.shortcut for b in fused._blocks if b.shortcut is not None]
        assert len(fused_shortcuts) == len(shortcuts)
        for module, bank in zip(shortcuts, fused_shortcuts):
            assert np.shares_memory(bank.weight, module.weight.data)


class TestCompileFailureMemoization:
    def test_failed_compile_memoized_and_reraised(self):
        """An unwalkable trunk fails once; later calls re-raise, not recompile."""

        class NotATrunk:
            pass

        broken = NotATrunk()
        with pytest.raises(AttributeError) as first:
            fused_trunk_for(broken)
        with pytest.raises(AttributeError) as second:
            fused_trunk_for(broken)
        assert second.value is first.value  # the memoized exception, verbatim
        invalidate_fused_trunk(broken)
        with pytest.raises(AttributeError) as third:
            fused_trunk_for(broken)
        assert third.value is not first.value  # invalidation allows a retry

    def test_fallback_helper_stays_correct_after_failure(self):
        """fused_trunk_features falls back to autograd for unwalkable modules."""
        from repro.core.features import fused_trunk_features
        from repro.nn import Linear, Module

        class FlatModel(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(4, 3, rng=np.random.default_rng(0))

            def forward(self, x):
                return self.fc(x.reshape(x.shape[0], -1))

        model = FlatModel().eval()
        x = np.random.default_rng(1).standard_normal((5, 1, 2, 2)).astype(np.float32)
        out1, used1 = fused_trunk_features(model, x)
        out2, used2 = fused_trunk_features(model, x)  # memoized failure path
        assert not used1 and not used2
        assert np.array_equal(out1, out2)
