"""The per-op profiling arena: keys, accounting, and off-by-default cost."""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro.obs import ARENA, ProfilingArena


@pytest.fixture(autouse=True)
def clean_global_arena():
    ARENA.disable()
    ARENA.reset()
    yield
    ARENA.disable()
    ARENA.reset()


class TestArena:
    def test_disabled_contexts_are_shared_noops(self):
        arena = ProfilingArena()
        assert arena.op("x") is arena.op("y")
        assert arena.scope("a") is arena.scope("b")
        with arena.scope("s"):
            with arena.op("x"):
                pass
        assert arena.snapshot() == {}

    def test_ops_key_under_ambient_scope(self):
        arena = ProfilingArena()
        arena.enable()
        with arena.scope("trunk"):
            with arena.op("conv_gemm"):
                pass
            with arena.op("conv_gemm"):
                pass
        with arena.op("affine"):  # no scope -> bare key
            pass
        snap = arena.snapshot()
        assert snap["trunk/conv_gemm"]["count"] == 2
        assert snap["affine"]["count"] == 1
        assert snap["trunk/conv_gemm"]["total"] >= 0.0
        assert snap["trunk/conv_gemm"]["mean"] == pytest.approx(
            snap["trunk/conv_gemm"]["total"] / 2
        )

    def test_render_sorts_by_total(self):
        arena = ProfilingArena()
        arena.enable()
        arena.record("slow", 1.0)
        arena.record("fast", 0.001)
        text = arena.render()
        assert text.index("slow") < text.index("fast")
        assert ProfilingArena().render() == "profiling arena: no ops recorded"

    def test_reset_clears_records(self):
        arena = ProfilingArena()
        arena.enable()
        arena.record("x", 0.1)
        arena.reset()
        assert arena.snapshot() == {}


class TestFusedIntegration:
    def test_fused_trunk_records_scoped_ops(self):
        from repro.models.wrn import WRNTrunk
        from repro.nn.fused import FusedTrunk

        trunk = WRNTrunk(10, 1.0, 0.25, rng=np.random.default_rng(1)).eval()
        fused = FusedTrunk(trunk)  # compile (and its probe) before enabling
        x = np.random.default_rng(0).normal(
            size=(2, trunk.conv1.in_channels, 12, 12)
        ).astype(np.float32)
        ARENA.enable()
        fused(x)
        snap = ARENA.snapshot()
        trunk_keys = [k for k in snap if k.startswith("trunk/")]
        assert trunk_keys, f"no trunk-scoped ops recorded: {sorted(snap)}"
        assert any(k.endswith("im2col") or k.endswith("conv_gemm") for k in trunk_keys)

    def test_off_overhead_is_negligible(self):
        """Disabled arena adds no measurable cost to a tight op loop.

        Smoke bound, not a benchmark: the noop path (one boolean + one
        shared context manager) must stay within a small constant factor
        of the bare loop even on noisy CI runners.
        """
        arena = ProfilingArena()
        n = 20_000

        def bare():
            t0 = perf_counter()
            for _ in range(n):
                pass
            return perf_counter() - t0

        def gated():
            t0 = perf_counter()
            for _ in range(n):
                with arena.op("x"):
                    pass
            return perf_counter() - t0

        bare_s = min(bare() for _ in range(3))
        gated_s = min(gated() for _ in range(3))
        # a context-manager protocol call per iteration: allow generous
        # headroom, just prove it is not doing locks/allocations per op
        assert gated_s < max(bare_s * 50, 0.05)
        assert arena.snapshot() == {}
