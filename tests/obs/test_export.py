"""Exporters: JSONL trace log, slow-query log, Prometheus text exposition."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import (
    JsonlTraceWriter,
    RotatingJsonlWriter,
    SlowQueryLog,
    Tracer,
    build_trace_tree,
    format_trace,
    load_jsonl_spans,
    parse_prometheus,
    render_prometheus,
    select_traces,
)


def _span(name, trace_id="t1", span_id=None, parent_id=None, start=0.0, duration=0.01):
    return {
        "trace_id": trace_id,
        "span_id": span_id or name,
        "parent_id": parent_id,
        "name": name,
        "service": "test",
        "start": start,
        "duration": duration,
        "tags": {},
    }


class TestJsonlWriter:
    def test_write_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTraceWriter(path) as writer:
            writer.write(_span("a"))
            writer.write(_span("b"))
        spans = load_jsonl_spans(path)
        assert [s["name"] for s in spans] == ["a", "b"]

    def test_rotation_keeps_both_files_readable(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTraceWriter(path, max_bytes=200) as writer:
            for i in range(10):
                writer.write(_span(f"s{i}"))
        assert os.path.exists(path + ".1")
        spans = load_jsonl_spans(path)
        assert len(spans) < 10  # some rotated out of <path>.1's window
        assert all("name" in s for s in spans)

    def test_tracer_writes_through(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        tracer.enable(writer=JsonlTraceWriter(path))
        with tracer.span("root"):
            pass
        [record] = load_jsonl_spans(path)
        assert record["name"] == "root"


class TestSlowQueryLog:
    def test_threshold_filters(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path, threshold_s=0.005)
        fast = _span("fast", duration=0.001)
        slow = _span("slow", duration=0.010)
        assert log.maybe_record(fast, [fast]) is False
        assert log.maybe_record(slow, [slow, _span("child")]) is True
        assert log.count == 1
        [entry] = [json.loads(l) for l in open(path)]
        assert entry["root"] == "slow"
        assert len(entry["spans"]) == 2

    def test_tracer_records_slow_local_roots_with_full_tree(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        tracer = Tracer()
        tracer.enable(slow_log=SlowQueryLog(path, threshold_s=0.0))
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert tracer._slow_log.count == 1
        [entry] = [json.loads(l) for l in open(path)]
        assert {s["name"] for s in entry["spans"]} == {"root", "child"}

    def test_slow_query_emits_journal_event(self, tmp_path):
        from repro.obs import JOURNAL

        JOURNAL.reset()
        JOURNAL.enable()
        try:
            log = SlowQueryLog(str(tmp_path / "slow.jsonl"), threshold_s=0.005)
            log.maybe_record(_span("fast", duration=0.001), [])
            assert len(JOURNAL) == 0  # fast queries stay quiet
            slow = _span("slow", duration=0.010)
            log.maybe_record(slow, [slow])
            [event] = JOURNAL.events()
            assert event["kind"] == "slow_query"
            assert event["root"] == "slow"
            assert event["trace_id"] == slow["trace_id"]
            assert event["duration"] == pytest.approx(0.010)
        finally:
            JOURNAL.reset()


# the trace writer, the slow-query log, and the journal file all rotate
# through the same RotatingJsonlWriter base: one shared contract test
def _rotating_writers(path):
    return {
        "base": (RotatingJsonlWriter(path, max_bytes=200), lambda w, i: w.write(_span(f"s{i}"))),
        "trace": (JsonlTraceWriter(path, max_bytes=200), lambda w, i: w.write(_span(f"s{i}"))),
        "slow": (
            SlowQueryLog(path, threshold_s=0.0, max_bytes=200),
            lambda w, i: w.maybe_record(_span(f"s{i}"), [_span(f"s{i}")]),
        ),
    }


class TestSharedRotation:
    @pytest.mark.parametrize("which", ["base", "trace", "slow"])
    def test_every_jsonl_sink_rotates_on_size(self, tmp_path, which):
        path = str(tmp_path / "sink.jsonl")
        writer, write_one = _rotating_writers(path)[which]
        for i in range(30):
            write_one(writer, i)
        writer.close()
        assert os.path.exists(path + ".1"), "rotation must produce <path>.1"
        assert os.path.getsize(path + ".1") <= 200 + 512  # one record of slack
        # every line in both generations stays parseable; the rotated
        # generation is never empty (the live file may be, right after a
        # boundary rotation)
        assert [json.loads(line) for line in open(path + ".1")]
        for line in open(path):
            json.loads(line)

    def test_no_rotation_below_the_budget(self, tmp_path):
        path = str(tmp_path / "sink.jsonl")
        with RotatingJsonlWriter(path) as writer:  # default 16 MiB budget
            writer.write(_span("only"))
        assert not os.path.exists(path + ".1")


class TestSelectTraces:
    TREES = {
        "t1": [_span("a", trace_id="t1")],
        "t2": [_span("b", trace_id="t2")],
        "t3": [_span("c", trace_id="t3")],
    }

    def test_default_keeps_everything_in_order(self):
        selected = select_traces(self.TREES)
        assert [tid for tid, _ in selected] == ["t1", "t2", "t3"]

    def test_trace_id_filter(self):
        [(tid, spans)] = select_traces(self.TREES, trace_id="t2")
        assert tid == "t2" and spans[0]["name"] == "b"
        assert select_traces(self.TREES, trace_id="nope") == []

    def test_limit_truncates(self):
        assert [t for t, _ in select_traces(self.TREES, limit=2)] == ["t1", "t2"]
        assert len(select_traces(self.TREES, limit=0)) == 3  # 0 = unlimited


class TestPrometheus:
    SNAPSHOT = {
        "schema": 1,
        "kind": "cluster",
        "stages": {
            "total": {"count": 4, "mean": 0.002, "p50": 0.002, "p95": 0.003, "p99": 0.003, "max": 0.004}
        },
        "counters": {"requests": 4, "cross_shard": 1},
        "fanout": {1: 3, 2: 1},
        "shard_requests": {0: 2, 1: 3},
    }

    def test_render_parse_round_trip(self):
        text = render_prometheus(self.SNAPSHOT)
        samples = parse_prometheus(text)
        assert samples[("repro_snapshot_info", (("kind", "cluster"), ("schema", "1")))] == 1
        assert samples[("repro_counter_total", (("name", "requests"),))] == 4
        assert samples[("repro_stage_latency_seconds_count", (("stage", "total"),))] == 4
        assert samples[("repro_fanout_requests_total", (("shards", "2"),))] == 1
        assert samples[("repro_shard_requests_total", (("shard", "1"),))] == 3
        quantiles = {
            labels
            for (metric, labels) in samples
            if metric == "repro_stage_latency_seconds"
        }
        assert len(quantiles) == 3  # p50/p95/p99

    def test_sum_is_mean_times_count(self):
        samples = parse_prometheus(render_prometheus(self.SNAPSHOT))
        assert samples[
            ("repro_stage_latency_seconds_sum", (("stage", "total"),))
        ] == pytest.approx(0.008)

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("metric{unterminated 1")
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("metric not-a-number")

    def test_empty_snapshot_renders_only_info(self):
        text = render_prometheus({"schema": 1, "kind": "serving", "stages": {}, "counters": {}})
        samples = parse_prometheus(text)
        assert list(samples) == [
            ("repro_snapshot_info", (("kind", "serving"), ("schema", "1")))
        ]


class TestTraceTree:
    def test_parent_before_child_depth_first(self):
        spans = [
            _span("child", span_id="c", parent_id="r", start=2.0),
            _span("root", span_id="r", start=1.0),
            _span("sibling", span_id="s", parent_id="r", start=3.0),
            _span("grandchild", span_id="g", parent_id="c", start=2.5),
        ]
        [ordered] = build_trace_tree(spans).values()
        assert [s["name"] for s in ordered] == ["root", "child", "grandchild", "sibling"]
        assert [s["depth"] for s in ordered] == [0, 1, 2, 1]

    def test_missing_parent_becomes_root(self):
        spans = [_span("orphan", span_id="o", parent_id="gone")]
        [ordered] = build_trace_tree(spans).values()
        assert ordered[0]["depth"] == 0

    def test_format_trace_mentions_names_and_durations(self):
        spans = [_span("root", span_id="r"), _span("leaf", span_id="l", parent_id="r")]
        [ordered] = build_trace_tree(spans).values()
        text = format_trace(ordered)
        assert "root" in text and "leaf" in text and "ms" in text
        assert format_trace([]) == "(empty trace)"
