"""Dashboard rendering: sparklines and the `repro top` frame."""

from __future__ import annotations

from repro.obs import (
    EventJournal,
    HealthPolicy,
    HealthScorer,
    TimelineStore,
    render_dashboard,
    sparkline,
)
from repro.obs.dashboard import _BLOCKS


class TestSparkline:
    def test_fixed_width_right_aligned(self):
        assert len(sparkline([1.0, 2.0], width=10)) == 10
        assert sparkline([], width=6) == " " * 6
        assert sparkline([1.0], width=0) == ""

    def test_ramp_uses_full_block_range(self):
        line = sparkline([float(i) for i in range(8)], width=8)
        assert line[0] == _BLOCKS[0] and line[-1] == _BLOCKS[-1]

    def test_flat_series_renders_visible_bar(self):
        line = sparkline([5.0, 5.0, 5.0], width=3)
        assert line == _BLOCKS[1] * 3  # flat-but-nonzero: low bar, not blank
        assert sparkline([0.0, 0.0], width=2) == _BLOCKS[0] * 2

    def test_window_shows_only_the_tail(self):
        line = sparkline([100.0] + [1.0, 2.0, 3.0], width=3)
        assert _BLOCKS[-1] in line  # 3.0 is the max of the visible slice


def _populated():
    store = TimelineStore()
    for t in range(1, 6):
        store.record("shard0.up", float(t), 1.0)
        store.record("shard0.qps", float(t), 10.0 + t)
        store.record("shard0.stage.total.p50", float(t), 0.001)
        store.record("shard0.stage.total.p95", float(t), 0.002)
        store.record("shard0.stage.total.p99", float(t), 0.003)
        store.record("shard0.rate.errors", float(t), 0.0)
        store.record("shard0.cache.model.hit_rate", float(t), 0.75)
    store.record("shard1.up", 5.0, 0.0)
    store.record("cluster.rate.net_bytes_rx", 5.0, 2048.0)
    store.record("cluster.rate.net_bytes_tx", 5.0, 512.0)
    store.record("cluster.fanout.mean", 5.0, 1.25)
    journal = EventJournal()
    journal.enable(service="cli")
    journal.emit("rebalance", moved=2)
    journal.ingest([{"seq": 1, "service": "shard0", "kind": "worker_start", "pid": 42}])
    scorer = HealthScorer(store, journal, HealthPolicy(latency_slo_s=0.25))
    return store, scorer, journal


class TestRenderDashboard:
    def test_frame_shows_health_rates_and_events(self):
        store, scorer, journal = _populated()
        frame = render_dashboard(store, scorer, journal)
        assert "repro top" in frame and "SLO p95 total < 250ms" in frame
        assert "shard0" in frame and "OK" in frame
        assert "shard1" in frame and "DWN" in frame
        assert "last poll failed" in frame  # reason line for the down shard
        assert "75%" in frame  # cache hit rate column
        assert "net rx 2.0KiB/s tx 512.0B/s" in frame
        assert "fan-out 1.25" in frame
        assert "rebalance" in frame and "worker_start" in frame
        assert "[ shard0]" in frame  # event provenance
        assert any(ch in frame for ch in _BLOCKS)  # sparklines rendered

    def test_explicit_source_list_limits_rows(self):
        store, scorer, journal = _populated()
        frame = render_dashboard(store, scorer, journal, sources=["shard0"])
        assert "shard0" in frame and "shard1" not in frame.split("events")[0]

    def test_empty_state_renders_cleanly(self):
        store = TimelineStore()
        journal = EventJournal()
        scorer = HealthScorer(store, journal)
        frame = render_dashboard(store, scorer, journal)
        assert "0 sources" in frame
        assert "events: (none)" in frame

    def test_event_lines_clip_to_width(self):
        store, scorer, journal = _populated()
        journal.emit("slow_query", detail="x" * 500)
        frame = render_dashboard(store, scorer, journal, width=80)
        assert all(len(line) <= 80 for line in frame.splitlines() if "slow_query" in line)
