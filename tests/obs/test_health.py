"""Health scoring: breach-fraction estimation, burn rate, state machine."""

from __future__ import annotations

import pytest

from repro.obs import (
    EventJournal,
    HealthPolicy,
    HealthScorer,
    TimelineStore,
    estimate_breach_fraction,
)

QUANTILES = {"p50": 0.010, "p95": 0.100, "p99": 0.500}


class TestBreachFraction:
    def test_no_data_means_no_breach(self):
        assert estimate_breach_fraction({}, 0.25) == 0.0
        assert estimate_breach_fraction({"p95": 0.0}, 0.25) == 0.0

    def test_slo_beyond_p99_is_clean(self):
        assert estimate_breach_fraction(QUANTILES, 1.0) == 0.0
        # exactly at p99: the tracked tail fraction
        assert estimate_breach_fraction(QUANTILES, 0.500) == pytest.approx(0.01)

    def test_interpolates_between_quantile_points(self):
        # halfway between p95 (5%) and p99 (1%) latencies -> 3%
        assert estimate_breach_fraction(QUANTILES, 0.300) == pytest.approx(0.03)
        # at p95 exactly
        assert estimate_breach_fraction(QUANTILES, 0.100) == pytest.approx(0.05)
        # at p50 exactly
        assert estimate_breach_fraction(QUANTILES, 0.010) == pytest.approx(0.5)

    def test_saturates_toward_one_below_p50(self):
        half = estimate_breach_fraction(QUANTILES, 0.005)
        assert 0.5 < half < 1.0
        nearly_all = estimate_breach_fraction(QUANTILES, 1e-6)
        assert nearly_all == pytest.approx(1.0, abs=1e-3)

    def test_monotone_in_the_objective(self):
        slos = [1e-4, 1e-3, 5e-3, 0.010, 0.050, 0.100, 0.300, 0.500, 1.0]
        fracs = [estimate_breach_fraction(QUANTILES, s) for s in slos]
        assert fracs == sorted(fracs, reverse=True)

    def test_partial_quantiles_still_estimate(self):
        assert estimate_breach_fraction({"p95": 0.1}, 0.2) == 0.0
        assert estimate_breach_fraction({"p95": 0.1}, 0.1) == pytest.approx(0.05)


class TestHealthPolicy:
    def test_error_budget_follows_quantile(self):
        assert HealthPolicy().error_budget == pytest.approx(0.05)
        assert HealthPolicy(objective_quantile=0.99).error_budget == pytest.approx(0.01)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            HealthPolicy(latency_slo_s=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(objective_quantile=1.0)


def _store_with(source, up=1.0, p50=0.001, p95=0.002, p99=0.003, qps=10.0, errors=0.0):
    store = TimelineStore()
    for t in (1.0, 2.0):
        store.record(f"{source}.up", t, up)
        store.record(f"{source}.stage.total.p50", t, p50)
        store.record(f"{source}.stage.total.p95", t, p95)
        store.record(f"{source}.stage.total.p99", t, p99)
        store.record(f"{source}.qps", t, qps)
        store.record(f"{source}.rate.errors", t, errors)
    return store


class TestHealthScorer:
    def _scorer(self, store, **policy):
        return HealthScorer(store, EventJournal(), HealthPolicy(**policy))

    def test_never_polled_is_unreachable(self):
        scorer = self._scorer(TimelineStore())
        verdict = scorer.score("shard0")
        assert verdict["state"] == "unreachable"
        assert "never polled" in verdict["reasons"]

    def test_failed_poll_is_unreachable(self):
        store = _store_with("shard0", up=0.0)
        verdict = self._scorer(store).score("shard0")
        assert verdict["state"] == "unreachable"
        assert "last poll failed" in verdict["reasons"]

    def test_fast_shard_is_healthy(self):
        store = _store_with("shard0")
        verdict = self._scorer(store, latency_slo_s=0.25).score("shard0")
        assert verdict["state"] == "healthy"
        assert verdict["reasons"] == []
        assert verdict["burn_rate"] == 0.0
        assert verdict["qps"] == pytest.approx(10.0)

    def test_slow_shard_burns_and_degrades(self):
        # p95 at 4x the objective: well over half of traffic breaches
        store = _store_with("shard0", p50=0.5, p95=1.0, p99=2.0)
        scorer = self._scorer(store, latency_slo_s=0.25)
        assert scorer.burn_rate("shard0") > 1.0
        verdict = scorer.score("shard0")
        assert verdict["state"] == "degraded"
        assert any("SLO burn" in r for r in verdict["reasons"])

    def test_error_share_degrades(self):
        store = _store_with("shard0", errors=2.0, qps=10.0)  # 20% errors
        verdict = self._scorer(store, latency_slo_s=0.25).score("shard0")
        assert verdict["state"] == "degraded"
        assert any("error rate" in r for r in verdict["reasons"])
        assert verdict["error_rate"] == pytest.approx(0.2)

    def test_no_traffic_has_zero_error_rate(self):
        store = _store_with("shard0", qps=0.0, errors=0.0)
        assert self._scorer(store).error_rate("shard0") == 0.0

    def test_score_all_discovers_sources_from_up_series(self):
        store = _store_with("shard0")
        store.record("shard1.up", 1.0, 0.0)
        verdicts = self._scorer(store).score_all()
        assert set(verdicts) == {"shard0", "shard1"}
        assert verdicts["shard0"]["state"] == "healthy"
        assert verdicts["shard1"]["state"] == "unreachable"

    def test_verdicts_are_json_safe(self):
        import json

        store = _store_with("shard0", p95=1.0)
        verdicts = self._scorer(store, latency_slo_s=0.01).score_all()
        assert json.loads(json.dumps(verdicts)) == verdicts
