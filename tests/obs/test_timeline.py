"""Timeline: series rings, snapshot diffing, and the telemetry poller."""

from __future__ import annotations

import pytest

from repro.obs import (
    EventJournal,
    SeriesWindow,
    TelemetryPoller,
    TimelineStore,
    snapshot_rates,
)


def _snap(counters=None, stages=None, cache_stats=None, fanout=None, journal=None):
    snap = {
        "schema": 2,
        "kind": "serving",
        "counters": counters or {},
        "stages": stages or {},
    }
    if cache_stats is not None:
        snap["cache_stats"] = cache_stats
    if fanout is not None:
        snap["fanout"] = fanout
    if journal is not None:
        snap["journal"] = journal
    return snap


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestSeriesWindow:
    def test_capacity_evicts_oldest(self):
        window = SeriesWindow(capacity=3)
        for i in range(5):
            window.append(float(i), float(i * 10))
        assert window.values() == [20.0, 30.0, 40.0]
        assert window.last() == 40.0
        assert len(window) == 3

    def test_mean_and_span(self):
        window = SeriesWindow()
        assert window.mean() == 0.0 and window.span_s() == 0.0
        window.append(10.0, 2.0)
        assert window.span_s() == 0.0  # one point covers no time
        window.append(13.0, 4.0)
        assert window.mean() == pytest.approx(3.0)
        assert window.span_s() == pytest.approx(3.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SeriesWindow(capacity=0)


class TestTimelineStore:
    def test_record_and_read_back(self):
        store = TimelineStore()
        store.record("shard0.qps", 1.0, 5.0)
        store.record_many(2.0, {"shard0.qps": 7.0, "shard1.qps": 3.0})
        assert store.values("shard0.qps") == [5.0, 7.0]
        assert store.last("shard1.qps") == 3.0
        assert store.last("absent") is None
        assert store.values("absent") == []
        assert len(store) == 2

    def test_names_filter_by_prefix(self):
        store = TimelineStore()
        store.record("shard0.qps", 0.0, 1.0)
        store.record("shard0.up", 0.0, 1.0)
        store.record("cluster.qps", 0.0, 1.0)
        assert store.names("shard0.") == ["shard0.qps", "shard0.up"]
        assert store.names() == ["cluster.qps", "shard0.qps", "shard0.up"]


class TestSnapshotRates:
    def test_counter_rates_and_qps(self):
        prev = _snap(counters={"requests": 10, "predictions": 4})
        curr = _snap(counters={"requests": 30, "predictions": 8, "errors": 2})
        rates = snapshot_rates(prev, curr, dt=2.0)
        assert rates["rate.requests"] == pytest.approx(10.0)
        assert rates["rate.predictions"] == pytest.approx(2.0)
        assert rates["rate.errors"] == pytest.approx(1.0)  # new counter: prev=0
        assert rates["qps"] == pytest.approx(12.0)

    def test_counter_regression_clamps_to_zero(self):
        # a restarted worker's counters legitimately go backwards
        prev = _snap(counters={"requests": 100})
        curr = _snap(counters={"requests": 5})
        assert snapshot_rates(prev, curr, dt=1.0)["rate.requests"] == 0.0

    def test_stage_gauges_track_key_stages_only(self):
        summary = {"count": 3, "mean": 0.002, "p50": 0.001, "p95": 0.004, "p99": 0.005, "max": 0.006}
        curr = _snap(stages={"total": summary, "serialize": summary})
        rates = snapshot_rates(_snap(), curr, dt=1.0)
        assert rates["stage.total.p95"] == pytest.approx(0.004)
        assert rates["stage.total.p99"] == pytest.approx(0.005)
        assert "stage.serialize.p95" not in rates

    def test_cache_hit_rate_from_deltas(self):
        prev = _snap(cache_stats={"model": {"hits": 10, "misses": 10}})
        curr = _snap(
            cache_stats={
                "model": {"hits": 19, "misses": 11},  # 9 hits / 10 lookups
                "result": {"hits": 0, "misses": 0},  # idle tier: no series
            }
        )
        rates = snapshot_rates(prev, curr, dt=1.0)
        assert rates["cache.model.hit_rate"] == pytest.approx(0.9)
        assert "cache.result.hit_rate" not in rates

    def test_fanout_mean_weights_interval_deltas(self):
        # 3 new single-shard requests + 1 new two-shard request
        prev = _snap(fanout={"1": 10, "2": 5})
        curr = _snap(fanout={"1": 13, "2": 6})
        rates = snapshot_rates(prev, curr, dt=1.0)
        assert rates["fanout.mean"] == pytest.approx((1 * 3 + 2 * 1) / 4)

    def test_nonpositive_dt_rejected(self):
        with pytest.raises(ValueError):
            snapshot_rates(_snap(), _snap(), dt=0.0)

    def test_controller_counters_always_get_a_series(self):
        # the self-tuning gauges are KEY_COUNTERS: a zero-rate series still
        # appears, so dashboards show "0/s" rather than a missing line
        rates = snapshot_rates(_snap(), _snap(), dt=1.0)
        for name in ("prefetch_builds", "prefetch_hits", "autotune_replications"):
            assert rates[f"rate.{name}"] == 0.0

    def test_score_evictions_series_only_after_hook_fires(self):
        prev = _snap(cache_stats={"payload": {"hits": 0, "misses": 0, "score_evictions": 0}})
        curr = _snap(cache_stats={"payload": {"hits": 0, "misses": 0, "score_evictions": 0}})
        rates = snapshot_rates(prev, curr, dt=1.0)
        assert "cache.payload.score_evictions" not in rates  # plain-LRU tier

        curr = _snap(cache_stats={"payload": {"hits": 0, "misses": 0, "score_evictions": 6}})
        rates = snapshot_rates(prev, curr, dt=2.0)
        assert rates["cache.payload.score_evictions"] == pytest.approx(3.0)

    def test_score_evictions_reset_clamps_to_zero(self):
        # a restarted shard's counter going backwards must not yield a
        # negative rate
        prev = _snap(cache_stats={"payload": {"hits": 0, "misses": 0, "score_evictions": 10}})
        curr = _snap(cache_stats={"payload": {"hits": 0, "misses": 0, "score_evictions": 2}})
        rates = snapshot_rates(prev, curr, dt=1.0)
        assert rates["cache.payload.score_evictions"] == 0.0


class TestTelemetryPoller:
    def test_first_poll_seeds_then_diffs(self):
        clock = FakeClock()
        counters = {"requests": 0}
        journal = EventJournal()
        journal.enable()
        poller = TelemetryPoller(
            {"serving": lambda: _snap(counters=dict(counters))},
            journal=journal,
            clock=clock,
        )
        assert poller.poll_once() == {}  # baseline only
        counters["requests"] = 6
        clock.advance(2.0)
        produced = poller.poll_once()
        assert produced["serving"]["rate.requests"] == pytest.approx(3.0)
        assert poller.store.values("serving.up") == [1.0, 1.0]
        assert poller.store.last("serving.qps") == pytest.approx(3.0)
        assert poller.polls == 2

    def test_failing_source_marks_down_and_journals(self):
        clock = FakeClock()
        journal = EventJournal()
        journal.enable()
        healthy = True

        def source():
            if not healthy:
                raise ConnectionRefusedError("gone")
            return _snap(counters={"requests": 1})

        poller = TelemetryPoller({"shard0": source}, journal=journal, clock=clock)
        poller.poll_once()
        healthy = False
        clock.advance(1.0)
        poller.poll_once()
        assert poller.store.values("shard0.up") == [1.0, 0.0]
        assert poller.poll_errors == 1
        [event] = journal.events()
        assert event["kind"] == "poll_error" and event["source"] == "shard0"
        assert "ConnectionRefusedError" in event["error"]
        # recovery re-seeds the baseline instead of diffing across the gap
        healthy = True
        clock.advance(1.0)
        assert poller.poll_once() == {}

    def test_remote_journal_ships_each_event_once(self):
        clock = FakeClock()
        journal = EventJournal()
        journal.enable()
        remote = [
            {"seq": 1, "service": "shard1", "kind": "worker_start"},
            {"seq": 2, "service": "shard1", "kind": "cache_evict"},
        ]
        poller = TelemetryPoller(
            {"shard1": lambda: _snap(journal=list(remote))},
            journal=journal,
            clock=clock,
        )
        poller.poll_once()
        clock.advance(1.0)
        poller.poll_once()  # same STATS payload again: cursor filters it
        assert len(journal) == 2
        remote.append({"seq": 3, "service": "shard1", "kind": "worker_drain"})
        clock.advance(1.0)
        poller.poll_once()
        assert [e["kind"] for e in journal.events()] == [
            "worker_start",
            "cache_evict",
            "worker_drain",
        ]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetryPoller({}, interval_s=0.0)

    def test_zero_elapsed_poll_is_a_safe_noop(self):
        # two sweeps inside one clock tick: dt == 0 must neither divide by
        # zero nor fabricate rates — the baseline just refreshes
        clock = FakeClock()
        journal = EventJournal()
        journal.enable()
        counters = {"requests": 0}
        poller = TelemetryPoller(
            {"serving": lambda: _snap(counters=dict(counters))},
            journal=journal,
            clock=clock,
        )
        poller.poll_once()
        counters["requests"] = 100
        assert poller.poll_once() == {}  # same instant: no diff window
        assert poller.poll_errors == 0
        assert poller.store.values("serving.up") == [1.0, 1.0]
        # once time moves, the refreshed baseline diffs normally
        counters["requests"] = 150
        clock.advance(1.0)
        produced = poller.poll_once()
        assert produced["serving"]["rate.requests"] == pytest.approx(50.0)

    def test_background_thread_polls_and_stops(self):
        import time

        polled = []
        poller = TelemetryPoller(
            {"serving": lambda: (polled.append(1), _snap())[1]},
            interval_s=0.01,
            journal=EventJournal(),
        )
        with poller:
            deadline = time.monotonic() + 5.0
            while not polled and time.monotonic() < deadline:
                time.sleep(0.01)
        assert polled
        assert poller._thread is None


class TestForGateway:
    def test_cluster_with_remote_and_local_shards(self):
        class RemoteShard:
            shard_id = 1
            is_remote = True

            def stats(self):
                return _snap(counters={"requests": 1})

        class LocalMetrics:
            def snapshot(self, include_histograms=False):
                return _snap(counters={"requests": 2})

        class LocalGateway:
            metrics = LocalMetrics()

        class LocalShard:
            shard_id = 0
            is_remote = False
            gateway = LocalGateway()

            def cache_stats(self):
                return {"model": {"hits": 1, "misses": 0}}

        class Cluster:
            shards = [LocalShard(), RemoteShard()]

            def unified_snapshot(self):
                return _snap(counters={"requests": 3})

        poller = TelemetryPoller.for_gateway(Cluster(), journal=EventJournal())
        assert sorted(poller.sources) == ["cluster", "shard0", "shard1"]
        poller.poll_once()
        assert poller.store.last("shard0.up") == 1.0
        assert poller.store.last("shard1.up") == 1.0
        assert poller.store.last("cluster.up") == 1.0

    def test_bare_serving_gateway_becomes_one_source(self):
        class Metrics:
            def snapshot(self, include_histograms=False):
                return _snap(counters={"requests": 1})

        class Gateway:
            metrics = Metrics()

            def cache_stats(self):
                return {"result": {"hits": 3, "misses": 1}}

        poller = TelemetryPoller.for_gateway(Gateway(), journal=EventJournal())
        assert list(poller.sources) == ["serving"]
        snap = poller.sources["serving"]()
        assert snap["cache_stats"]["result"]["hits"] == 3

    def test_unrecognized_object_rejected(self):
        with pytest.raises(TypeError, match="telemetry sources"):
            TelemetryPoller.for_gateway(object())
