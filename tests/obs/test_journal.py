"""Event journal: ring semantics, seq cursoring, remote ingest, persistence."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import EventJournal, RotatingJsonlWriter
from repro.obs.journal import EVENT_KINDS


class TestLifecycle:
    def test_disabled_emit_is_a_noop(self):
        journal = EventJournal()
        assert journal.emit("cache_evict", tier="model") is None
        assert len(journal) == 0
        assert journal.events() == []

    def test_enable_stamps_seq_ts_service(self):
        journal = EventJournal()
        journal.enable(service="shard3")
        first = journal.emit("worker_start", pid=123)
        second = journal.emit("worker_drain")
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["service"] == "shard3"
        assert first["ts"] > 0
        assert first["pid"] == 123

    def test_disable_stops_recording(self):
        journal = EventJournal()
        journal.enable()
        journal.emit("rebalance")
        journal.disable()
        assert journal.emit("rebalance") is None
        assert len(journal) == 1

    def test_reset_forgets_everything(self):
        journal = EventJournal()
        journal.enable(service="cli")
        journal.emit("rebalance")
        journal.reset()
        assert not journal.enabled
        assert len(journal) == 0
        assert journal.service == "main"
        journal.enable()
        assert journal.emit("rebalance")["seq"] == 1  # seq restarts

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)

    def test_documented_kinds_are_distinct(self):
        assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)
        assert "cache_evict" in EVENT_KINDS and "worker_death" in EVENT_KINDS


class TestRing:
    def test_oldest_dropped_and_counted(self):
        journal = EventJournal(capacity=3)
        journal.enable()
        for i in range(5):
            journal.emit("slow_query", i=i)
        assert len(journal) == 3
        assert journal.dropped == 2
        assert [e["i"] for e in journal.events()] == [2, 3, 4]

    def test_events_limit(self):
        journal = EventJournal()
        journal.enable()
        for i in range(4):
            journal.emit("slow_query", i=i)
        assert [e["i"] for e in journal.events(limit=2)] == [2, 3]
        assert journal.events(limit=0) == []


class TestCursor:
    def test_since_is_strictly_greater(self):
        journal = EventJournal()
        journal.enable()
        for _ in range(3):
            journal.emit("expert_update")
        assert [e["seq"] for e in journal.since(0)] == [1, 2, 3]
        assert [e["seq"] for e in journal.since(2)] == [3]
        assert journal.since(3) == []

    def test_since_respects_ring_eviction(self):
        journal = EventJournal(capacity=2)
        journal.enable()
        for _ in range(4):
            journal.emit("expert_update")
        # seq 1-2 fell out of the ring; a stale cursor only sees survivors
        assert [e["seq"] for e in journal.since(0)] == [3, 4]


class TestIngest:
    def test_remote_events_are_resequenced_keeping_provenance(self):
        journal = EventJournal()
        journal.enable(service="main")
        journal.emit("rebalance")
        remote = [
            {"seq": 7, "ts": 1.0, "service": "shard1", "kind": "worker_start"},
            {"seq": 8, "ts": 2.0, "service": "shard1", "kind": "cache_evict"},
        ]
        assert journal.ingest(remote) == 2
        events = journal.events()
        assert [e["seq"] for e in events] == [1, 2, 3]  # local numbering
        assert events[1]["service"] == "shard1"  # provenance kept
        assert events[1]["ts"] == 1.0
        assert remote[0]["seq"] == 7  # caller's dicts untouched

    def test_ingest_noop_when_disabled_or_empty(self):
        journal = EventJournal()
        assert journal.ingest([{"seq": 1, "kind": "worker_start"}]) == 0
        journal.enable()
        assert journal.ingest([]) == 0


class TestPersistence:
    def test_writer_streams_events_to_jsonl(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = EventJournal()
        journal.enable(writer=RotatingJsonlWriter(path), service="cli")
        journal.emit("rebalance", moved=3)
        journal.emit("cache_evict", tier="model")
        journal.disable()  # closes the writer
        records = [json.loads(line) for line in open(path)]
        assert [r["kind"] for r in records] == ["rebalance", "cache_evict"]
        assert records[0]["moved"] == 3 and records[0]["service"] == "cli"

    def test_journal_file_rotates_on_size(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = EventJournal()
        journal.enable(writer=RotatingJsonlWriter(path, max_bytes=200))
        for i in range(20):
            journal.emit("slow_query", trace=f"trace-{i:04d}")
        journal.disable()
        assert os.path.exists(path + ".1")
        for p in (path, path + ".1"):
            for line in open(p):
                assert json.loads(line)["kind"] == "slow_query"
