"""Span lifecycle, the bounded collector, and cross-process stitching."""

from __future__ import annotations

import threading

import pytest

from repro.obs import TRACER, Span, SpanCollector, Tracer, new_id


@pytest.fixture(autouse=True)
def clean_global_tracer():
    """Tests that touch the module-level TRACER must leave it pristine."""
    TRACER.reset()
    yield
    TRACER.reset()


class TestIds:
    def test_ids_are_64_bit_hex(self):
        a, b = new_id(), new_id()
        assert len(a) == 16
        int(a, 16)
        assert a != b


class TestSpanLifecycle:
    def test_disabled_tracer_is_noop(self):
        tracer = Tracer()
        with tracer.span("anything") as span:
            span.tag("ignored", 1)
        assert len(tracer.collector) == 0
        assert tracer.inject() is None

    def test_root_span_records(self):
        tracer = Tracer(service="t")
        tracer.enable()
        with tracer.span("root", {"k": "v"}) as span:
            assert tracer.current() is span
        assert tracer.current() is None
        [record] = tracer.collector.spans()
        assert record["name"] == "root"
        assert record["parent_id"] is None
        assert record["service"] == "t"
        assert record["tags"] == {"k": "v"}
        assert record["duration"] >= 0.0

    def test_nested_spans_share_trace_and_link_parent(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_exception_tags_error_and_propagates(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        [record] = tracer.collector.spans()
        assert record["tags"]["error"] == "RuntimeError"

    def test_sibling_threads_get_separate_roots(self):
        tracer = Tracer()
        tracer.enable()
        seen = []

        def work():
            with tracer.span("thread-root") as span:
                seen.append(span.trace_id)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 4

    def test_record_stage_needs_an_ambient_parent(self):
        tracer = Tracer()
        tracer.enable()
        tracer.record_stage("orphan", 0.001)
        assert len(tracer.collector) == 0
        with tracer.span("root") as root:
            tracer.record_stage("leaf", 0.002)
        leaf = [s for s in tracer.collector.spans() if s["name"] == "leaf"][0]
        assert leaf["parent_id"] == root.span_id
        assert leaf["duration"] == pytest.approx(0.002)


class TestCollector:
    def test_ring_drops_oldest_and_counts(self):
        collector = SpanCollector(capacity=2)
        for i in range(3):
            collector.add({"span_id": f"s{i}", "trace_id": "t"})
        assert len(collector) == 2
        assert collector.dropped == 1
        assert [s["span_id"] for s in collector.spans()] == ["s1", "s2"]

    def test_add_dedups_by_span_id(self):
        collector = SpanCollector()
        assert collector.add({"span_id": "a", "trace_id": "t"}) is True
        assert collector.add({"span_id": "a", "trace_id": "t"}) is False
        assert len(collector) == 1

    def test_take_trace_extracts_only_that_trace(self):
        collector = SpanCollector()
        collector.add({"span_id": "a", "trace_id": "t1"})
        collector.add({"span_id": "b", "trace_id": "t2"})
        collector.add({"span_id": "c", "trace_id": "t1"})
        taken = collector.take_trace("t1")
        assert [s["span_id"] for s in taken] == ["a", "c"]
        assert [s["span_id"] for s in collector.spans()] == ["b"]
        # a taken id may be re-added (it left the dedup set)
        assert collector.add({"span_id": "a", "trace_id": "t1"}) is True

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanCollector(capacity=0)


class TestStitching:
    def test_inject_continue_attach_round_trip(self):
        """Client tracer -> wire ctx -> server tracer -> spans -> client."""
        client, server = Tracer(service="client"), Tracer(service="server")
        client.enable()
        with client.span("net.call") as net_span:
            ctx = client.inject()
            assert ctx == {
                "trace_id": net_span.trace_id,
                "parent_id": net_span.span_id,
            }
            # --- server side (separate tracer = separate process) ---
            with server.continue_from(ctx, "shard.serve", {"shard_id": 1}) as remote:
                assert remote.trace_id == net_span.trace_id
                assert remote.parent_id == net_span.span_id
            shipped = server.collector.take_trace(net_span.trace_id)
            assert len(shipped) == 1
            # --- back on the client ---
            assert client.attach(shipped) == 1
        trace = client.collector.trace(net_span.trace_id)
        assert {s["name"] for s in trace} == {"net.call", "shard.serve"}
        # re-attaching the same spans is a no-op (loopback dedup)
        assert client.attach(shipped) == 0

    def test_continue_from_lights_up_a_cold_tracer(self):
        server = Tracer()
        assert not server.enabled
        with server.continue_from({"trace_id": "t" * 16, "parent_id": None}, "work"):
            pass
        assert server.enabled
        assert len(server.collector) == 1
