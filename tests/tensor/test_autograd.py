"""Backward-pass mechanics: accumulation, graph traversal, grad modes."""

import numpy as np
import pytest

from repro.tensor import Tensor, enable_grad, is_grad_enabled, no_grad


class TestBackwardBasics:
    def test_scalar_backward_default_grad(self):
        x = Tensor(np.array(3.0), requires_grad=True)
        y = x * x
        y.backward()
        assert np.isclose(x.grad, 6.0)

    def test_backward_requires_grad_flag(self):
        x = Tensor(np.array(3.0))
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_nonscalar_needs_explicit_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_explicit_grad_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(x.grad, [2.0, 4.0, 6.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        (x * 3).backward()
        (x * 3).backward()
        assert np.isclose(x.grad, 6.0)

    def test_zero_grad(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        (x * 3).backward()
        x.zero_grad()
        assert x.grad is None


class TestFanoutAndReuse:
    def test_diamond_graph(self):
        # y = (x*2) + (x*3) -> dy/dx = 5
        x = Tensor(np.array(1.0), requires_grad=True)
        y = x * 2 + x * 3
        y.backward()
        assert np.isclose(x.grad, 5.0)

    def test_reused_tensor_in_product(self):
        # y = x * x * x -> 3x^2
        x = Tensor(np.array(2.0), requires_grad=True)
        (x * x * x).backward()
        assert np.isclose(x.grad, 12.0)

    def test_deep_chain(self):
        x = Tensor(np.array(1.0), requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.backward()
        assert np.isclose(x.grad, 1.1**50, rtol=1e-4)

    def test_broadcast_grad_shape(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        ((x + b).sum()).backward()
        assert x.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)  # summed over the broadcast rows

    def test_scalar_broadcast_grad(self):
        s = Tensor(np.array(2.0), requires_grad=True)
        x = Tensor(np.ones((2, 5)))
        ((x * s).sum()).backward()
        assert np.isclose(s.grad, 10.0)


class TestGradModes:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._parents == ()

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_ops_on_non_grad_tensors_record_nothing(self):
        x = Tensor(np.ones(3))
        y = x * 2 + 1
        assert y._parents == ()
        assert y._backward is None


class TestGradientFlowThroughViews:
    def test_getitem_scatter(self):
        x = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
        y = x[0]
        y.sum().backward()
        assert np.allclose(x.grad, [[1, 1, 1], [0, 0, 0]])

    def test_fancy_index_repeats_accumulate(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        assert np.allclose(x.grad, [2.0, 0.0, 1.0])

    def test_concat_splits_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        (out * Tensor(np.arange(10, dtype=np.float64).reshape(2, 5))).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)
        assert np.allclose(a.grad, [[0, 1], [5, 6]])
        assert np.allclose(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.ones((2, 6)), requires_grad=True)
        x.reshape(3, 4).sum().backward()
        assert np.allclose(x.grad, np.ones((2, 6)))

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        Tensor.stack([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)


class TestMixedRequiresGrad:
    def test_constant_branch_gets_no_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        c = Tensor(np.full(3, 5.0))
        (x * c).sum().backward()
        assert np.allclose(x.grad, 5.0)
        assert c.grad is None

    def test_detached_branch_blocks_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).detach() * x
        y.sum().backward()
        # d/dx of (const * x) = const = 2
        assert np.allclose(x.grad, 2.0)
