"""Convolution and pooling: shape math, reference values, gradients."""

import numpy as np
import pytest
from scipy import signal

from repro.tensor import (
    Tensor,
    avg_pool2d,
    conv2d,
    conv_output_size,
    global_avg_pool2d,
    gradcheck,
    max_pool2d,
)


class TestOutputSize:
    @pytest.mark.parametrize(
        "size,k,s,p,expected",
        [
            (8, 3, 1, 1, 8),
            (8, 3, 2, 1, 4),
            (8, 1, 1, 0, 8),
            (8, 1, 2, 0, 4),
            (7, 3, 2, 1, 4),
            (32, 3, 1, 1, 32),
        ],
    )
    def test_formula(self, size, k, s, p, expected):
        assert conv_output_size(size, k, s, p) == expected


class TestConvForward:
    def test_matches_scipy_correlate(self, rng):
        x = rng.standard_normal((1, 1, 6, 6))
        w = rng.standard_normal((1, 1, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), stride=1, padding=0).numpy()
        ref = signal.correlate2d(x[0, 0], w[0, 0], mode="valid")
        assert np.allclose(out[0, 0], ref, atol=1e-4)

    def test_multi_channel_sums_inputs(self, rng):
        x = rng.standard_normal((1, 3, 5, 5))
        w = rng.standard_normal((2, 3, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), padding=0).numpy()
        ref = np.zeros((2, 3, 3))
        for o in range(2):
            for c in range(3):
                ref[o] += signal.correlate2d(x[0, c], w[o, c], mode="valid")
        assert np.allclose(out[0], ref, atol=1e-4)

    def test_bias_added_per_channel(self, rng):
        x = rng.standard_normal((2, 1, 4, 4))
        w = np.zeros((3, 1, 1, 1))
        b = np.array([1.0, 2.0, 3.0])
        out = conv2d(Tensor(x), Tensor(w), Tensor(b)).numpy()
        assert np.allclose(out[:, 0], 1.0)
        assert np.allclose(out[:, 2], 3.0)

    def test_stride_two_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        w = rng.standard_normal((4, 3, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), stride=2, padding=1)
        assert out.shape == (2, 4, 4, 4)

    def test_identity_kernel(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = conv2d(Tensor(x), Tensor(w), padding=1).numpy()
        assert np.allclose(out, x, atol=1e-6)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 4, 4)))
        w = Tensor(rng.standard_normal((2, 4, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w)


class TestConvBackward:
    def test_gradcheck_basic(self, rng):
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)
        gradcheck(lambda x_, w_, b_: conv2d(x_, w_, b_, padding=1), [x, w, b])

    def test_gradcheck_strided(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((2, 2, 3, 3))
        gradcheck(lambda x_, w_: conv2d(x_, w_, stride=2, padding=1), [x, w])

    def test_gradcheck_1x1(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        w = rng.standard_normal((5, 3, 1, 1))
        gradcheck(lambda x_, w_: conv2d(x_, w_, stride=2), [x, w])

    def test_no_grad_to_frozen_input(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 4, 4)).astype(np.float32))
        w = Tensor(rng.standard_normal((1, 1, 3, 3)).astype(np.float32), requires_grad=True)
        conv2d(x, w, padding=1).sum().backward()
        assert x.grad is None
        assert w.grad is not None


class TestPooling:
    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2).numpy()
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2).numpy()
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_gradcheck(self, rng):
        gradcheck(lambda x: avg_pool2d(x, 2), [rng.standard_normal((1, 2, 4, 4))])

    def test_max_pool_gradcheck(self, rng):
        x = rng.permutation(32).reshape(1, 2, 4, 4).astype(np.float64)
        gradcheck(lambda x_: max_pool2d(x_, 2), [x])

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((3, 4, 5, 5))
        out = global_avg_pool2d(Tensor(x))
        assert out.shape == (3, 4)
        assert np.allclose(out.numpy(), x.mean(axis=(2, 3)), atol=1e-6)

    def test_global_avg_pool_gradcheck(self, rng):
        gradcheck(lambda x: global_avg_pool2d(x), [rng.standard_normal((2, 3, 3, 3))])
