"""Functional ops and loss semantics (softmax, KD losses, CE)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor
from repro.tensor import functional as F

LOGITS = hnp.arrays(np.float64, (4, 6), elements=st.floats(-8, 8))


class TestSoftmax:
    @given(LOGITS)
    def test_softmax_sums_to_one(self, a):
        probs = F.softmax(Tensor(a)).numpy()
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)
        assert (probs >= 0).all()

    @given(LOGITS)
    def test_log_softmax_consistent(self, a):
        assert np.allclose(
            F.log_softmax(Tensor(a)).numpy(),
            np.log(F.softmax(Tensor(a)).numpy() + 1e-12),
            atol=1e-4,
        )

    @given(LOGITS)
    def test_softmax_shift_invariant(self, a):
        p1 = F.softmax(Tensor(a)).numpy()
        p2 = F.softmax(Tensor(a + 100.0)).numpy()
        assert np.allclose(p1, p2, atol=1e-5)

    def test_temperature_flattens(self):
        logits = Tensor(np.array([[4.0, 0.0, -4.0]]))
        sharp = F.softmax(logits).numpy()
        soft = F.softmax(logits * (1 / 8.0)).numpy()
        assert soft.max() < sharp.max()
        assert soft.min() > sharp.min()


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2])).item()
        assert loss < 1e-3

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((5, 4))
        loss = F.cross_entropy(Tensor(logits), np.zeros(5, dtype=int)).item()
        assert np.isclose(loss, np.log(4), atol=1e-5)

    def test_matches_manual_nll(self, rng):
        logits = rng.standard_normal((6, 5))
        labels = rng.integers(0, 5, 6)
        expected = -np.mean(
            [
                logits[i, labels[i]] - np.log(np.exp(logits[i]).sum())
                for i in range(6)
            ]
        )
        assert np.isclose(F.cross_entropy(Tensor(logits), labels).item(), expected, atol=1e-5)

    def test_one_hot(self):
        oh = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(oh, [[1, 0, 0], [0, 0, 1]])


class TestKLDivergence:
    @given(LOGITS)
    def test_self_kl_zero(self, a):
        loss = F.kl_div_from_logits(Tensor(a), Tensor(a), temperature=3.0).item()
        assert abs(loss) < 1e-4

    @given(LOGITS, LOGITS)
    def test_kl_nonnegative(self, t, s):
        loss = F.kl_div_from_logits(Tensor(t), Tensor(s), temperature=2.0).item()
        assert loss > -1e-5

    def test_teacher_detached(self, rng):
        t = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        s = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        F.kl_div_from_logits(t, s, temperature=2.0).backward()
        assert t.grad is None
        assert s.grad is not None

    def test_t_squared_scaling(self, rng):
        """Gradient magnitude stays O(1) in T (Hinton's T^2 convention)."""
        t = rng.standard_normal((8, 5))
        grads = {}
        for temp in (1.0, 8.0):
            s = Tensor(np.zeros((8, 5)), requires_grad=True)
            F.kl_div_from_logits(Tensor(t), s, temperature=temp).backward()
            grads[temp] = np.abs(s.grad).mean()
        ratio = grads[1.0] / grads[8.0]
        assert 0.05 < ratio < 20.0  # same order of magnitude

    def test_kd_loss_alias(self, rng):
        t, s = rng.standard_normal((2, 3)), rng.standard_normal((2, 3))
        a = F.kd_loss(Tensor(t), Tensor(s), temperature=4.0).item()
        b = F.kl_div_from_logits(Tensor(t), Tensor(s), temperature=4.0).item()
        assert np.isclose(a, b)


class TestRegressionLosses:
    def test_l1_value(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        target = Tensor(np.array([[0.0, 4.0]]))
        assert np.isclose(F.l1_loss(pred, target).item(), 1.5)

    def test_mse_value(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        target = Tensor(np.array([[0.0, 4.0]]))
        assert np.isclose(F.mse_loss(pred, target).item(), 2.5)

    def test_l1_target_detached(self, rng):
        t = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        s = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        F.l1_loss(s, t).backward()
        assert t.grad is None

    def test_l1_robustness_vs_l2(self):
        """The paper's reason for L1 in L_scale: outliers dominate L2."""
        target = Tensor(np.zeros((1, 4)))
        small = Tensor(np.array([[0.5, 0.5, 0.5, 0.5]]))
        outlier = Tensor(np.array([[2.0, 0.0, 0.0, 0.0]]))
        # equal L1, very different L2
        assert np.isclose(F.l1_loss(small, target).item(), F.l1_loss(outlier, target).item())
        assert F.mse_loss(outlier, target).item() > 3 * F.mse_loss(small, target).item()


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        out = F.dropout(x, 0.5, training=False)
        assert np.allclose(out.numpy(), x.numpy())

    def test_zero_p_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        assert np.allclose(F.dropout(x, 0.0, training=True).numpy(), x.numpy())

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, rng=np.random.default_rng(0), training=True)
        assert abs(out.numpy().mean() - 1.0) < 0.05
